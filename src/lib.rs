//! Umbrella crate for the FasTrak reproduction workspace.
//!
//! Re-exports every member crate so the root-level integration tests
//! (`tests/`) and examples (`examples/`) can reach the whole system, and so
//! `cargo doc` renders one entry point. See the README for the tour.

pub use fastrak;
pub use fastrak_bench;
pub use fastrak_host;
pub use fastrak_net;
pub use fastrak_sim;
pub use fastrak_switch;
pub use fastrak_transport;
pub use fastrak_workload;
