//! The paper's headline scenario (§6.2 / Table 4), as a runnable demo:
//! memcached competing with disk-bound file transfers, first with all
//! traffic through the hypervisor, then with FasTrak automatically carving
//! an express lane for the latency-sensitive application.
//!
//! ```text
//! cargo run --release --example memcached_expresslane
//! ```

use fastrak::{attach, DeConfig, FasTrakConfig, Timing};
use fastrak_host::vm::VmSpec;
use fastrak_net::addr::{Ip, TenantId};
use fastrak_sim::time::{SimDuration, SimTime};
use fastrak_workload::{
    memcached_server, Composite, FileTransfer, MemslapClient, MemslapConfig, StreamSink, Testbed,
    TestbedConfig, VmRef,
};

const TENANT: TenantId = TenantId(1);
const REQUESTS: u64 = 120_000;

fn build() -> (Testbed, Vec<VmRef>) {
    let mut bed = Testbed::build(TestbedConfig {
        n_servers: 3,
        ..TestbedConfig::default()
    });
    // Two memcached VMs on the test server, each also pushing a disk-bound
    // file transfer (the background load the paper uses).
    let mut clients = Vec::new();
    for i in 0..2u16 {
        let mc_ip = Ip::tenant_vm(1 + i);
        let sink_ip = Ip::tenant_vm(40 + i);
        let mut ft = FileTransfer::paper_default(sink_ip, 22, 50_000 + i);
        ft.total_bytes = 256 << 20;
        bed.add_vm(
            0,
            VmSpec::large(format!("mc{i}"), TENANT, mc_ip),
            Box::new(Composite::new(vec![
                Box::new(memcached_server()),
                Box::new(ft),
            ])),
        );
        bed.add_vm(
            1 + (i as usize),
            VmSpec::medium(format!("sink{i}"), TENANT, sink_ip),
            Box::new(StreamSink::new(22)),
        );
    }
    for c in 0..2u16 {
        let ip = Ip::tenant_vm(10 + c);
        let mut cfg =
            MemslapConfig::paper(vec![Ip::tenant_vm(1), Ip::tenant_vm(2)], Some(REQUESTS));
        cfg.src_port_base = 43_000 + c * 64;
        clients.push(bed.add_vm(
            1 + (c as usize),
            VmSpec::large(format!("slap{c}"), TENANT, ip),
            Box::new(MemslapClient::new(cfg)),
        ));
    }
    (bed, clients)
}

fn run(with_fastrak: bool) -> (f64, f64) {
    let (mut bed, clients) = build();
    let ft = with_fastrak.then(|| {
        let ft = attach(
            &mut bed,
            FasTrakConfig {
                timing: Timing::fine(),
                de: DeConfig {
                    max_offloaded: Some(4),
                    ..DeConfig::paper()
                },
                ..Default::default()
            },
        );
        ft.start(&mut bed);
        ft
    });
    bed.start();
    // Run until the clients finish.
    loop {
        let now = bed.now();
        bed.run_until(now + SimDuration::from_millis(500));
        if clients
            .iter()
            .all(|&c| bed.app::<MemslapClient>(c).finished_at.is_some())
            || bed.now() > SimTime::from_secs(120)
        {
            break;
        }
    }
    let mut finish = 0.0;
    let mut lat = 0.0;
    for &c in &clients {
        let app = bed.app::<MemslapClient>(c);
        finish += app.finish_time().expect("clients finish").as_secs_f64();
        lat += app.latency.mean() / 1e3;
    }
    if let Some(ft) = ft {
        println!(
            "  (FasTrak offloaded {} aggregates: {:?})",
            ft.offloaded(&bed).len(),
            ft.offloaded(&bed)
        );
    }
    (finish / clients.len() as f64, lat / clients.len() as f64)
}

fn main() {
    println!("running VIF-only baseline ...");
    let (fin_vif, lat_vif) = run(false);
    println!("  finish {fin_vif:.2}s, mean latency {lat_vif:.0}us\n");

    println!("running with FasTrak express lanes ...");
    let (fin_ft, lat_ft) = run(true);
    println!("  finish {fin_ft:.2}s, mean latency {lat_ft:.0}us\n");

    println!(
        "improvement: finish {:.2}x faster, latency {:.2}x lower",
        fin_vif / fin_ft,
        lat_vif / lat_ft
    );
    assert!(fin_ft < fin_vif, "FasTrak must improve finish time");
}
