//! Emit a Perfetto-loadable timeline of the Fig. 12 flow migration.
//!
//! Runs the §6.2.2 scenario — a single bulk TCP flow offloaded from the
//! VIF to the SR-IOV path one second in — with flow-lifecycle span tracing
//! enabled, and writes the Chrome trace-event JSON next to the binary:
//!
//! ```text
//! cargo run --release --example fig12_timeline
//! ```
//!
//! Load `fig12_timeline.trace.json` in <https://ui.perfetto.dev> (or
//! `chrome://tracing`): each component is a track, and the sender VM's
//! track shows the "vif" slice handing off to the "sriov" slice at t=1 s.

fn main() {
    eprintln!("running the Fig. 12 migration scenario with span tracing ...");
    let trace = fastrak_bench::experiments::fig12::chrome_trace_json(false);
    let path = "fig12_timeline.trace.json";
    std::fs::write(path, &trace).expect("write trace file");
    println!("wrote {path} ({} bytes)", trace.len());
    println!("open https://ui.perfetto.dev and drag the file in to view the timeline");
}
