//! Rule migration mechanics, up close: what the FasTrak rule manager
//! installs where when a flow aggregate moves to hardware, what happens to
//! a live TCP connection mid-shift (Fig. 12), and how VM migration pulls
//! rules back (§4.1.2).
//!
//! ```text
//! cargo run --release --example rule_migration
//! ```

use fastrak::{attach, FasTrakConfig, Timing};
use fastrak_host::vm::VmSpec;
use fastrak_net::addr::{Ip, TenantId};
use fastrak_sim::time::{SimDuration, SimTime};
use fastrak_workload::{memcached_server, MemslapClient, MemslapConfig, Testbed, TestbedConfig};

const TENANT: TenantId = TenantId(7);

fn main() {
    let mc_ip = Ip::tenant_vm(1);
    let cli_ip = Ip::tenant_vm(2);
    let mut bed = Testbed::build(TestbedConfig {
        n_servers: 2,
        ..TestbedConfig::default()
    });
    let mc = bed.add_vm(
        0,
        VmSpec::large("memcached", TENANT, mc_ip),
        Box::new(memcached_server()),
    );
    let cli = bed.add_vm(
        1,
        VmSpec::large("memslap", TENANT, cli_ip),
        Box::new(MemslapClient::new(MemslapConfig::paper(vec![mc_ip], None))),
    );
    let ft = attach(
        &mut bed,
        FasTrakConfig {
            timing: Timing::fine(),
            ..Default::default()
        },
    );
    ft.start(&mut bed);
    bed.start();

    let snapshot = |bed: &Testbed, label: &str| {
        let tor = bed.tor();
        let srv = bed.server(mc.server);
        println!(
            "{label:<28} tor rules={:2} (fast-path {:4} free)  placer rules(mc)={}  hw frames={:8}  acl drops={}",
            tor.fastpath_used(),
            tor.fastpath_free(),
            srv.vm(mc.vm).placer.n_rules(),
            srv.stats.tx_hw_frames,
            tor.stats.acl_drops,
        );
    };

    snapshot(&bed, "t=0 (nothing offloaded)");
    bed.run_until(SimTime::from_secs(3));
    snapshot(&bed, "t=3s (offloaded)");
    println!("offloaded aggregates:");
    let mut aggs: Vec<String> = ft
        .offloaded(&bed)
        .iter()
        .map(|a| format!("  {a:?}"))
        .collect();
    aggs.sort();
    aggs.iter().for_each(|a| println!("{a}"));

    // Simulate an impending VM migration: FasTrak pulls the rules back.
    println!("\npreparing migration of the memcached VM ...");
    let now = bed.now();
    ft.prepare_migration(&mut bed, TENANT, mc_ip, now);
    bed.run_until(now + SimDuration::from_millis(200));
    snapshot(&bed, "after prepare_migration");
    assert!(
        ft.offloaded(&bed)
            .iter()
            .all(|a| !format!("{a:?}").contains("10.0.0.1")),
        "no aggregate of the migrating VM may stay in hardware"
    );

    // Traffic continues over the VIF; the controller is free to re-offload
    // in later intervals (this is the post-migration re-adoption).
    let before = bed.app::<MemslapClient>(cli).completed();
    bed.run_until(bed.now() + SimDuration::from_secs(2));
    let after = bed.app::<MemslapClient>(cli).completed();
    println!(
        "\ntraffic continued through the migration window: {} -> {} transactions",
        before, after
    );
    snapshot(&bed, "t+2s (re-offloaded)");
    assert!(after > before);
}
