//! Quickstart: build a two-server rack, run a memcached workload over the
//! software path, then deploy FasTrak and watch it move the hot flows onto
//! the hardware express lane.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fastrak::{attach, FasTrakConfig};
use fastrak_host::vm::VmSpec;
use fastrak_net::addr::{Ip, TenantId};
use fastrak_sim::time::SimTime;
use fastrak_workload::{memcached_server, MemslapClient, MemslapConfig, Testbed, TestbedConfig};

fn main() {
    let tenant = TenantId(1);
    let mc_ip = Ip::tenant_vm(1);
    let client_ip = Ip::tenant_vm(2);

    // 1. A rack with two servers on one ToR (each server has a vswitch link
    //    and an SR-IOV link, like the paper's testbed).
    let mut bed = Testbed::build(TestbedConfig {
        n_servers: 2,
        ..TestbedConfig::default()
    });

    // 2. A memcached server VM and a memslap client VM.
    let mc = bed.add_vm(
        0,
        VmSpec::large("memcached", tenant, mc_ip),
        Box::new(memcached_server()),
    );
    let client = bed.add_vm(
        1,
        VmSpec::large("memslap", tenant, client_ip),
        Box::new(MemslapClient::new(MemslapConfig::paper(vec![mc_ip], None))),
    );

    // 3. Deploy the FasTrak controllers (one local controller per server +
    //    the TOR controller) and start everything.
    let ft = attach(&mut bed, FasTrakConfig::default());
    ft.start(&mut bed);
    bed.start();

    // 4. Watch the system evolve: within a couple of control intervals the
    //    controller measures memcached's packets-per-second and offloads
    //    its aggregates onto the SR-IOV path.
    for second in 1..=5u64 {
        bed.run_until(SimTime::from_secs(second));
        let app = bed.app::<MemslapClient>(client);
        let offloaded = ft.offloaded(&bed).len();
        let srv = bed.server(mc.server);
        println!(
            "t={second}s  transactions={:7}  mean latency={:6.1}us  offloaded aggregates={}  hw frames={}",
            app.completed(),
            app.latency.mean() / 1e3,
            offloaded,
            srv.stats.tx_hw_frames,
        );
    }

    let app = bed.app::<MemslapClient>(client);
    println!(
        "\nfinal: {} transactions, p99 latency {:.1}us, {} aggregates in hardware",
        app.completed(),
        app.latency.quantile(0.99) as f64 / 1e3,
        ft.offloaded(&bed).len()
    );
    assert!(
        !ft.offloaded(&bed).is_empty(),
        "FasTrak should have offloaded the memcached aggregates"
    );
}
