//! Tenant isolation on the express lane (§1 objective 2 and §4.1.3-4.1.4):
//!
//! * overlapping tenant IP spaces stay isolated (the GRE key / VLAN tag
//!   carries the tenant ID end to end);
//! * a malicious VM that bypasses its flow placer and pushes disallowed
//!   traffic through its SR-IOV VF hits the ToR's default-deny rule;
//! * per-VM aggregate rate limits hold even when flows are split across
//!   both paths (FPS).
//!
//! ```text
//! cargo run --release --example tenant_isolation
//! ```

use fastrak::{attach, DeConfig, FasTrakConfig, Timing, VmLimit};
use fastrak_host::vm::VmSpec;
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::flow::FlowSpec;
use fastrak_net::packet::PathTag;
use fastrak_sim::time::SimTime;
use fastrak_workload::{
    memcached_server, MemslapClient, MemslapConfig, StreamConfig, StreamSender, StreamSink,
    Testbed, TestbedConfig,
};

fn main() {
    let t1 = TenantId(1);
    let t2 = TenantId(2);
    // Both tenants use the SAME RFC1918 addresses — requirement C1.
    let shared_a = Ip::tenant_vm(1);
    let shared_b = Ip::tenant_vm(2);

    let mut bed = Testbed::build(TestbedConfig {
        n_servers: 2,
        ..TestbedConfig::default()
    });
    // Tenant 1: memcached pair with a 1 Gbps egress limit on the server.
    let mc = bed.add_vm(
        0,
        VmSpec::large("t1-mc", t1, shared_a),
        Box::new(memcached_server()),
    );
    let cli = bed.add_vm(
        1,
        VmSpec::large("t1-slap", t1, shared_b),
        Box::new(MemslapClient::new(MemslapConfig::paper(
            vec![shared_a],
            None,
        ))),
    );
    // Tenant 2: same IPs, a bulk stream in the other direction.
    let sink2 = bed.add_vm(
        0,
        VmSpec::large("t2-sink", t2, shared_a),
        Box::new(StreamSink::new(5001)),
    );
    bed.add_vm(
        1,
        VmSpec::large("t2-src", t2, shared_b),
        Box::new(StreamSender::new(StreamConfig::netperf(
            shared_a, 5001, 32_000,
        ))),
    );

    let ft = attach(
        &mut bed,
        FasTrakConfig {
            timing: Timing::fine(),
            // Tenant 1 paid for priority (the paper's `c` multiplier);
            // tenant 2's bulk traffic stays in software, so its VF is not
            // authorized at the ToR — the bypass test below depends on it.
            de: DeConfig {
                tenant_priority: [(t1, 10.0), (t2, 0.0)].into_iter().collect(),
                min_median_pps: 1.0,
                ..DeConfig::paper()
            },
            limits: vec![
                VmLimit {
                    tenant: t1,
                    vm_ip: shared_a,
                    egress_bps: Some(1_000_000_000),
                    ingress_bps: None,
                },
                // I3: no single tenant may monopolize the network — cap the
                // bulk tenant so it cannot starve tenant 1's transactions.
                VmLimit {
                    tenant: t2,
                    vm_ip: shared_b,
                    egress_bps: Some(4_000_000_000),
                    ingress_bps: None,
                },
            ],
            ..Default::default()
        },
    );
    ft.start(&mut bed);
    bed.start();
    bed.run_until(SimTime::from_secs(4));

    // 1. Overlapping IPs, disjoint delivery.
    let t1_done = bed.app::<MemslapClient>(cli).completed();
    let now = bed.now();
    let t2_bps = bed.app::<StreamSink>(sink2).goodput_bps(now);
    println!("tenant1 memcached transactions: {t1_done}");
    println!("tenant2 bulk goodput:           {:.2} Gbps", t2_bps / 1e9);
    assert!(
        t1_done > 2_000 && t2_bps > 1e8,
        "both tenants make progress"
    );

    // 2. Malicious bypass: force tenant 2's stream onto the SR-IOV path
    //    WITHOUT any ToR authorization for tenant 2. Default-deny drops it.
    let acl_drops_before = bed.tor().stats.acl_drops;
    {
        let v = bed.vms()[3]; // t2-src
        let srv = bed.server_mut(v.server);
        srv.vm_mut(v.vm)
            .placer
            .install_rule(FlowSpec::ANY, 99, PathTag::SrIov);
    }
    bed.run_until(bed.now() + fastrak_sim::time::SimDuration::from_secs(1));
    let acl_drops = bed.tor().stats.acl_drops - acl_drops_before;
    println!("\nmalicious VF bypass: {acl_drops} frames dropped by the ToR's default-deny ACL");
    assert!(acl_drops > 0, "the ToR must drop unauthorized VF traffic");

    // 3. The tenant-1 rate limit held across both paths (FPS split).
    let lc = bed
        .kernel
        .node::<fastrak::LocalController>(ft.locals[mc.server]);
    if let Some((sw, hw)) = lc.split_of(shared_a, fastrak_net::ctrl::Dir::Egress) {
        println!(
            "\nFPS split of the 1 Gbps limit: software {:.0} Mbps + hardware {:.0} Mbps (≤ L+2O)",
            sw as f64 / 1e6,
            hw as f64 / 1e6
        );
        assert!(sw + hw <= 1_120_000_000);
    }
    println!("\ntenant isolation holds.");
}
