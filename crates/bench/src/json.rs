//! Minimal JSON emission.
//!
//! The harness writes machine-readable artifacts (`--json`) and the
//! perf-trajectory file `BENCH_baseline.json`. The shapes involved are flat
//! and known at compile time, so a tiny escape-and-format helper replaces
//! the serde/serde_json dependency.

/// Escape a string for inclusion in a JSON document (adds the quotes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/Infinity — map to null).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        // Keep integers clean: 5.0 -> "5.0" is fine for JSON, but avoid
        // exponent noise for common counter values.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Format an optional number (`None` → null).
pub fn opt_num(v: Option<f64>) -> String {
    match v {
        Some(v) => num(v),
        None => "null".to_string(),
    }
}

/// Join pre-rendered JSON values into an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, it) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&it);
    }
    out.push(']');
    out
}

/// Join pre-rendered `(key, value)` pairs into an object.
pub fn object<'a, I: IntoIterator<Item = (&'a str, String)>>(fields: I) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&quote(k));
        out.push(':');
        out.push_str(&v);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(quote("plain"), "\"plain\"");
    }

    #[test]
    fn numbers_and_nulls() {
        assert_eq!(num(2.5), "2.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(opt_num(None), "null");
    }

    #[test]
    fn composes_objects_and_arrays() {
        let o = object([("x", num(1.0)), ("s", quote("hi"))]);
        assert_eq!(o, "{\"x\":1,\"s\":\"hi\"}");
        assert_eq!(array([num(1.0), num(2.0)]), "[1,2]");
    }
}
