//! Minimal JSON emission and parsing.
//!
//! The harness writes machine-readable artifacts (`--json`) and the
//! perf-trajectory file `BENCH_baseline.json`. The shapes involved are flat
//! and known at compile time, so a tiny escape-and-format helper replaces
//! the serde/serde_json dependency. The parser half exists for the
//! `perf_gate` binary, which reads those same artifacts back to compare a
//! fresh bench run against the committed baseline.

/// Escape a string for inclusion in a JSON document (adds the quotes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/Infinity — map to null).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        // Keep integers clean: 5.0 -> "5.0" is fine for JSON, but avoid
        // exponent noise for common counter values.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Format an optional number (`None` → null).
pub fn opt_num(v: Option<f64>) -> String {
    match v {
        Some(v) => num(v),
        None => "null".to_string(),
    }
}

/// Join pre-rendered JSON values into an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, it) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&it);
    }
    out.push(']');
    out
}

/// Join pre-rendered `(key, value)` pairs into an object.
pub fn object<'a, I: IntoIterator<Item = (&'a str, String)>>(fields: I) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&quote(k));
        out.push(':');
        out.push_str(&v);
    }
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A parsed JSON value. Only what the bench artifacts need — numbers are
/// always `f64`, object keys keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors carry a byte offset and message.
pub fn parse(input: &str) -> Result<Value, String> {
    let b = input.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key is not a string at byte {pos}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs don't occur in our artifacts;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always a valid boundary-to-boundary slice).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("valid utf8 input"));
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(quote("plain"), "\"plain\"");
    }

    #[test]
    fn numbers_and_nulls() {
        assert_eq!(num(2.5), "2.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(opt_num(None), "null");
    }

    #[test]
    fn composes_objects_and_arrays() {
        let o = object([("x", num(1.0)), ("s", quote("hi"))]);
        assert_eq!(o, "{\"x\":1,\"s\":\"hi\"}");
        assert_eq!(array([num(1.0), num(2.0)]), "[1,2]");
    }

    #[test]
    fn parses_what_it_emits() {
        let doc = object([
            ("suite", quote("scheduler")),
            ("bench", quote("timer \"churn\"\n")),
            ("ns_per_iter", num(33.82)),
            ("skipped", "null".to_string()),
            ("nested", array([num(1.0), quote("x")])),
        ]);
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("suite").unwrap().as_str(), Some("scheduler"));
        assert_eq!(v.get("bench").unwrap().as_str(), Some("timer \"churn\"\n"));
        assert_eq!(v.get("ns_per_iter").unwrap().as_num(), Some(33.82));
        assert_eq!(v.get("skipped"), Some(&Value::Null));
        let nested = v.get("nested").unwrap().as_array().unwrap();
        assert_eq!(nested[0].as_num(), Some(1.0));
        assert_eq!(nested[1].as_str(), Some("x"));
    }

    #[test]
    fn parses_nested_documents_and_unicode_escapes() {
        let v = parse(r#"{"a": {"b": [true, false, null, 1e3]}, "u": "état"}"#).unwrap();
        let inner = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(inner[0], Value::Bool(true));
        assert_eq!(inner[3].as_num(), Some(1000.0));
        assert_eq!(v.get("u").unwrap().as_str(), Some("état"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
