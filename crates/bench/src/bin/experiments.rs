//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments all            # every artifact, quick mode
//! experiments fig3 table4    # specific artifacts
//! experiments all --full     # paper-duration runs (slow)
//! experiments fig12 --csv    # also dump the Fig.12 seq trace as CSV
//! experiments all --json out.json
//! ```

use std::io::Write;

use fastrak_bench::experiments;
use fastrak_bench::report::Artifact;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && Some(a.as_str()) != json_path.as_deref())
        .cloned()
        .collect();
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::all_ids().iter().map(|s| s.to_string()).collect();
    }

    let mut artifacts: Vec<Artifact> = Vec::new();
    for id in &ids {
        eprintln!("running {id}{} ...", if full { " (full)" } else { "" });
        let t0 = std::time::Instant::now();
        match experiments::run(id, full) {
            Some(arts) => {
                eprintln!("  {id} done in {:.1}s", t0.elapsed().as_secs_f64());
                for a in &arts {
                    print!("{}", a.render());
                }
                artifacts.extend(arts);
            }
            None => {
                eprintln!("unknown experiment '{id}'; known: {:?}", experiments::all_ids());
                std::process::exit(2);
            }
        }
        if id == "fig12" && csv {
            let (_, points) = experiments::fig12::run_with_trace(full);
            println!("\n# fig12 trace (seconds,seq)");
            for (t, s) in points {
                println!("{t:.6},{s}");
            }
        }
    }

    if let Some(path) = json_path {
        let f = std::fs::File::create(&path).expect("create json output");
        let mut w = std::io::BufWriter::new(f);
        serde_json::to_writer_pretty(&mut w, &artifacts).expect("serialize artifacts");
        w.flush().unwrap();
        eprintln!("wrote {path}");
    }
}
