//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments all            # every artifact, quick mode, parallel
//! experiments fig3 table4    # specific artifacts
//! experiments all --full     # paper-duration runs (slow)
//! experiments fig12 --csv    # also dump the Fig.12 seq trace as CSV
//! experiments all --json out.json
//! experiments all --serial   # disable the thread fan-out
//! experiments all --threads 4  # explicit fan-out width
//! experiments all --telemetry out/  # also export metrics/trace artifacts
//! ```
//!
//! `--telemetry <dir>` drops observability artifacts next to the report:
//! `fault_matrix.metrics.jsonl` + `fault_matrix.prom` (registry snapshots)
//! and `fig12.trace.json` (Chrome trace-event JSON; load in Perfetto).
//! Telemetry is pull-model and never perturbs the event stream, so report
//! numbers are bit-identical with and without the flag.
//!
//! Each experiment is an independent single-threaded DES world, so the
//! suite fans out across cores with `std::thread::scope`. Results are
//! printed in request order regardless of completion order, and the summary
//! reports per-experiment wall-clock plus the fan-out speedup (sum of
//! per-experiment times vs. elapsed wall time).

use std::io::Write;
use std::time::Instant;

use fastrak_bench::experiments;
use fastrak_bench::json;
use fastrak_bench::report::Artifact;

struct Done {
    id: String,
    artifacts: Vec<Artifact>,
    secs: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let serial = args.iter().any(|a| a == "--serial");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let json_path = flag_value("--json");
    let threads_override: Option<usize> = flag_value("--threads").and_then(|v| v.parse().ok());
    let telemetry_dir = flag_value("--telemetry").map(std::path::PathBuf::from);
    // Ids are the positional args: skip flags and the values they consume.
    let mut skip_next = false;
    let mut ids: Vec<String> = Vec::new();
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--json" || a == "--threads" || a == "--telemetry" {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            ids.push(a.clone());
        }
    }
    if let Some(dir) = &telemetry_dir {
        std::fs::create_dir_all(dir).expect("create telemetry output dir");
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::all_ids()
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    for id in &ids {
        if !experiments::all_ids().contains(&id.as_str()) {
            eprintln!(
                "unknown experiment '{id}'; known: {:?}",
                experiments::all_ids()
            );
            std::process::exit(2);
        }
    }

    let threads = if serial {
        1
    } else {
        threads_override
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, ids.len().max(1))
    };
    eprintln!(
        "running {} experiment(s){} on {threads} thread(s) ...",
        ids.len(),
        if full { " (full)" } else { "" },
    );

    let suite_start = Instant::now();
    // Fan out: a shared atomic index hands experiments to worker threads;
    // results land in their request-order slot so output stays stable.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<Done>> = Vec::new();
    slots.resize_with(ids.len(), || None);
    let slot_refs: Vec<std::sync::Mutex<&mut Option<Done>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(id) = ids.get(i) else { break };
                let t0 = Instant::now();
                let artifacts = match &telemetry_dir {
                    Some(dir) => experiments::run_with_telemetry(id, full, dir),
                    None => experiments::run(id, full),
                }
                .expect("id validated above");
                let secs = t0.elapsed().as_secs_f64();
                eprintln!("  {id} done in {secs:.1}s");
                **slot_refs[i].lock().expect("slot lock") = Some(Done {
                    id: id.clone(),
                    artifacts,
                    secs,
                });
            });
        }
    });
    let wall = suite_start.elapsed().as_secs_f64();
    let done: Vec<Done> = slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect();

    let mut artifacts: Vec<Artifact> = Vec::new();
    for d in &done {
        for a in &d.artifacts {
            print!("{}", a.render());
        }
        if d.id == "fig12" && csv {
            let (_, points) = experiments::fig12::run_with_trace(full);
            println!("\n# fig12 trace (seconds,seq)");
            for (t, s) in points {
                println!("{t:.6},{s}");
            }
        }
        artifacts.extend(d.artifacts.iter().cloned());
    }

    // Timing summary: the fan-out win is (sum of per-experiment time) / wall.
    let cpu_sum: f64 = done.iter().map(|d| d.secs).sum();
    println!("\n== timing ==");
    for d in &done {
        println!("{:10}  {:>8.2}s", d.id, d.secs);
    }
    println!(
        "{:10}  {:>8.2}s  (sum of experiment times)",
        "total", cpu_sum
    );
    println!(
        "{:10}  {:>8.2}s  ({} thread(s), {:.2}x speedup)",
        "wall",
        wall,
        threads,
        cpu_sum / wall.max(1e-9)
    );

    if let Some(path) = json_path {
        let doc = json::object([
            (
                "artifacts",
                json::array(artifacts.iter().map(Artifact::to_json)),
            ),
            (
                "timing",
                json::object([
                    ("threads", json::num(threads as f64)),
                    ("wall_seconds", json::num(wall)),
                    ("experiment_seconds_sum", json::num(cpu_sum)),
                    (
                        "per_experiment",
                        json::object(
                            done.iter()
                                .map(|d| (d.id.as_str(), json::num(d.secs)))
                                .collect::<Vec<_>>(),
                        ),
                    ),
                ]),
            ),
        ]);
        let f = std::fs::File::create(&path).expect("create json output");
        let mut w = std::io::BufWriter::new(f);
        w.write_all(doc.as_bytes()).expect("write artifacts json");
        w.flush().unwrap();
        eprintln!("wrote {path}");
    }
}
