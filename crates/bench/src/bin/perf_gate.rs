//! Perf-regression gate for CI.
//!
//! Compares a fresh bench run (the JSON-lines file written via
//! `FASTRAK_BENCH_JSON`) against the committed `BENCH_baseline.json` and
//! fails (exit 1) only when a benchmark regressed by more than the allowed
//! ratio — loose by design (default 2x): CI runners are noisy shared
//! machines, and the gate exists to catch order-of-magnitude hot-path
//! regressions, not percent-level drift. Benches present on only one side
//! (new or retired) are reported but never fail the gate.
//!
//! Absolute ceilings (repeatable `--ceiling suite/bench=ns`) complement the
//! ratio gate: they pin a hard budget on headline benches regardless of what
//! the baseline drifts to, and fail if the bench was not run at all.
//!
//! Usage:
//!   perf_gate --baseline BENCH_baseline.json --current bench.json \
//!             [--max-ratio 2.0] [--ceiling suite/bench=ns]...

use std::collections::BTreeMap;
use std::process::ExitCode;

use fastrak_bench::json::{self, Value};

/// `(suite, bench) -> ns_per_iter`.
type Results = BTreeMap<(String, String), f64>;

fn record(map: &mut Results, v: &Value) {
    if let (Some(suite), Some(bench), Some(ns)) = (
        v.get("suite").and_then(Value::as_str),
        v.get("bench").and_then(Value::as_str),
        v.get("ns_per_iter").and_then(Value::as_num),
    ) {
        // Keep the latest entry when a bench appears twice (append-mode
        // files accumulate across runs).
        map.insert((suite.to_string(), bench.to_string()), ns);
    }
}

/// Baseline format: one JSON document with a `benches` array.
fn load_baseline(path: &str) -> Result<Results, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let mut out = Results::new();
    for entry in doc
        .get("benches")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: no `benches` array"))?
    {
        record(&mut out, entry);
    }
    Ok(out)
}

/// Current-run format: JSON lines, one flat object per line.
fn load_current(path: &str) -> Result<Results, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut out = Results::new();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("parse {path}:{}: {e}", n + 1))?;
        record(&mut out, &v);
    }
    Ok(out)
}

fn main() -> ExitCode {
    let mut baseline_path = "BENCH_baseline.json".to_string();
    let mut current_path = String::new();
    let mut max_ratio = 2.0f64;
    let mut ceilings: Vec<((String, String), f64)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--baseline" => baseline_path = grab("--baseline"),
            "--current" => current_path = grab("--current"),
            "--max-ratio" => max_ratio = grab("--max-ratio").parse().expect("numeric --max-ratio"),
            "--ceiling" => {
                let spec = grab("--ceiling");
                let (name, ns) = spec
                    .rsplit_once('=')
                    .expect("--ceiling expects suite/bench=ns");
                let (suite, bench) = name
                    .split_once('/')
                    .expect("--ceiling expects suite/bench=ns");
                ceilings.push((
                    (suite.to_string(), bench.to_string()),
                    ns.parse().expect("numeric ceiling ns"),
                ));
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if current_path.is_empty() {
        eprintln!("perf_gate: --current <bench.json> is required");
        return ExitCode::FAILURE;
    }

    let (baseline, current) = match (load_baseline(&baseline_path), load_current(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("perf_gate: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut regressed = 0usize;
    println!(
        "{:<44} {:>12} {:>12} {:>7}",
        "bench", "baseline", "current", "ratio"
    );
    for ((suite, bench), &cur) in &current {
        let name = format!("{suite}/{bench}");
        match baseline.get(&(suite.clone(), bench.clone())) {
            Some(&base) if base > 0.0 => {
                let ratio = cur / base;
                let verdict = if ratio > max_ratio {
                    regressed += 1;
                    "REGRESSED"
                } else {
                    ""
                };
                println!("{name:<44} {base:>10.1}ns {cur:>10.1}ns {ratio:>6.2}x {verdict}");
            }
            _ => println!("{name:<44} {:>12} {cur:>10.1}ns      - (new)", "-"),
        }
    }
    for key in baseline.keys() {
        if !current.contains_key(key) {
            println!("{:<44} (not run this time)", format!("{}/{}", key.0, key.1));
        }
    }

    for ((suite, bench), ceil) in &ceilings {
        let name = format!("{suite}/{bench}");
        match current.get(&(suite.clone(), bench.clone())) {
            Some(&cur) if cur <= *ceil => {
                println!("ceiling  {name:<35} {cur:>10.1}ns <= {ceil:.0}ns OK");
            }
            Some(&cur) => {
                regressed += 1;
                println!("ceiling  {name:<35} {cur:>10.1}ns > {ceil:.0}ns EXCEEDED");
            }
            None => {
                regressed += 1;
                println!("ceiling  {name:<35} NOT RUN (required)");
            }
        }
    }

    if regressed > 0 {
        eprintln!("perf_gate: {regressed} benchmark(s) regressed beyond {max_ratio}x");
        ExitCode::FAILURE
    } else {
        println!("perf_gate: OK (threshold {max_ratio}x)");
        ExitCode::SUCCESS
    }
}
