//! Comparison-row machinery: each experiment emits [`Row`]s pairing the
//! paper's published value with the value measured on the simulated
//! testbed, grouped into an [`Artifact`] (one table or figure).

use std::fmt::Write as _;

/// One reported value.
#[derive(Debug, Clone)]
pub struct Row {
    /// Metric name (e.g. "throughput").
    pub metric: String,
    /// Configuration label (e.g. "OVS+Tunneling @ 1448B").
    pub config: String,
    /// The paper's published value, if the text/figure gives one.
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: f64,
    /// Unit label.
    pub unit: &'static str,
}

impl Row {
    /// Build a row.
    pub fn new(
        metric: impl Into<String>,
        config: impl Into<String>,
        paper: Option<f64>,
        measured: f64,
        unit: &'static str,
    ) -> Row {
        Row {
            metric: metric.into(),
            config: config.into(),
            paper,
            measured,
            unit,
        }
    }

    /// Serialize to a JSON object (see [`crate::json`]).
    pub fn to_json(&self) -> String {
        crate::json::object([
            ("metric", crate::json::quote(&self.metric)),
            ("config", crate::json::quote(&self.config)),
            ("paper", crate::json::opt_num(self.paper)),
            ("measured", crate::json::num(self.measured)),
            ("unit", crate::json::quote(self.unit)),
        ])
    }
}

/// One regenerated table/figure.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Identifier, e.g. "fig3d" or "table2".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Qualitative shape statement being tested, from the paper's text.
    pub shape: String,
    /// The rows.
    pub rows: Vec<Row>,
    /// Free-form notes (scaling, substitutions).
    pub notes: Vec<String>,
}

impl Artifact {
    /// New empty artifact.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        shape: impl Into<String>,
    ) -> Artifact {
        Artifact {
            id: id.into(),
            title: title.into(),
            shape: shape.into(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Add a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Serialize to a JSON object (see [`crate::json`]).
    pub fn to_json(&self) -> String {
        crate::json::object([
            ("id", crate::json::quote(&self.id)),
            ("title", crate::json::quote(&self.title)),
            ("shape", crate::json::quote(&self.shape)),
            (
                "rows",
                crate::json::array(self.rows.iter().map(Row::to_json)),
            ),
            (
                "notes",
                crate::json::array(self.notes.iter().map(|n| crate::json::quote(n))),
            ),
        ])
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} — {} ===", self.id, self.title);
        let _ = writeln!(out, "shape target: {}", self.shape);
        let w_metric = self
            .rows
            .iter()
            .map(|r| r.metric.len())
            .chain(["metric".len()])
            .max()
            .unwrap_or(6);
        let w_config = self
            .rows
            .iter()
            .map(|r| r.config.len())
            .chain(["config".len()])
            .max()
            .unwrap_or(6);
        let _ = writeln!(
            out,
            "{:w_metric$}  {:w_config$}  {:>12}  {:>12}  unit",
            "metric", "config", "paper", "measured"
        );
        for r in &self.rows {
            let paper = match r.paper {
                Some(v) => format_val(v),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:w_metric$}  {:w_config$}  {:>12}  {:>12}  {}",
                r.metric,
                r.config,
                paper,
                format_val(r.measured),
                r.unit
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }
}

fn format_val(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v.abs() >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v.abs() >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else if v.abs() < 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut a = Artifact::new("t1", "Test", "x beats y");
        a.push(Row::new("tps", "VIF", Some(106_574.0), 95_000.0, "tps"));
        a.push(Row::new("latency", "SR-IOV", None, 190.5, "us"));
        a.note("scaled run");
        let s = a.render();
        assert!(s.contains("t1"));
        assert!(s.contains("106.6k"));
        assert!(s.contains("190.5"));
        assert!(s.contains("scaled run"));
        assert!(s.contains('-'), "missing paper values render as '-'");
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_val(9.4e9), "9.40G");
        assert_eq!(format_val(34_000.0), "34.0k");
        assert_eq!(format_val(2.5), "2.50");
        assert_eq!(format_val(331.0), "331.0");
    }
}
