//! Table 3 — memcached finish times with background file transfers
//! (§6.1.2).
//!
//! The Table-2 rack, but each memcached VM additionally runs a disk-bound
//! 4 GB file transfer **over the VIF**. Memcached traffic goes entirely via
//! the VIF or entirely via the SR-IOV VF.
//!
//! Paper: VIF 118.4 s / 16,896 tps / 456 µs / 7.6 CPUs vs SR-IOV 69 s /
//! 29,335 tps / 249 µs / 6.3 CPUs — "finish times almost double when the
//! memcached traffic uses the VIF, and latency reduces by half [with
//! SR-IOV]".

use fastrak_host::vm::VmSpec;
use fastrak_net::addr::Ip;
use fastrak_sim::time::SimTime;
use fastrak_workload::{
    memcached_server, Composite, FileTransfer, MemslapClient, MemslapConfig, StreamSink, Testbed,
    VmRef,
};

use crate::experiments::table2::{mc_ips, offload_servers};
use crate::report::{Artifact, Row};
use crate::scenarios::{rack, TENANT};

/// Build the Table-3 rack: memcached VMs also run a file transfer to sinks
/// on the client servers.
pub fn build(
    requests_per_client: u64,
    transfer_bytes: u64,
    seed: u64,
) -> (Testbed, Vec<VmRef>, Vec<VmRef>) {
    let mut bed = rack(seed);
    let mut servers = Vec::new();
    for (i, ip) in mc_ips().into_iter().enumerate() {
        let sink_ip = Ip::tenant_vm(40 + i as u16);
        let mut ft = FileTransfer::paper_default(sink_ip, 22, 50_000 + i as u16);
        ft.total_bytes = transfer_bytes;
        let spec = if i < 2 {
            VmSpec::large(format!("mc{i}"), TENANT, ip)
        } else {
            VmSpec::medium(format!("mc{i}"), TENANT, ip)
        };
        servers.push(bed.add_vm(
            0,
            spec,
            Box::new(Composite::new(vec![
                Box::new(memcached_server()),
                Box::new(ft),
            ])),
        ));
        // The transfer sink lives on client server i+1.
        bed.add_vm(
            (i % 5) + 1,
            VmSpec::medium(format!("ftsink{i}"), TENANT, sink_ip),
            Box::new(StreamSink::new(22)),
        );
    }
    let mut clients = Vec::new();
    for c in 0..5u16 {
        let ip = Ip::tenant_vm(10 + c);
        let mut cfg = MemslapConfig::paper(mc_ips().to_vec(), Some(requests_per_client));
        cfg.src_port_base = 43_000 + c * 64;
        clients.push(bed.add_vm(
            (c % 5) as usize + 1,
            VmSpec::large(format!("slap{c}"), TENANT, ip),
            Box::new(MemslapClient::new(cfg)),
        ));
    }
    (bed, servers, clients)
}

/// Run one configuration to completion; returns (finish s, TPS, latency µs,
/// CPUs).
pub fn measure_with(bed: &mut Testbed, clients: &[VmRef], horizon_s: u64) -> (f64, f64, f64, f64) {
    bed.begin_cpu_windows();
    if bed.now() == SimTime::ZERO {
        bed.start();
    }
    let horizon = SimTime::from_secs(horizon_s);
    let step = fastrak_sim::time::SimDuration::from_millis(500);
    loop {
        let now = bed.now();
        if now >= horizon {
            break;
        }
        bed.run_until(now + step);
        let all_done = clients
            .iter()
            .all(|&c| bed.app::<MemslapClient>(c).finished_at.is_some());
        if all_done {
            break;
        }
    }
    let now = bed.now();
    let mut finish = 0.0;
    let mut tps = 0.0;
    let mut lat = 0.0;
    for &c in clients {
        let app = bed.app::<MemslapClient>(c);
        let ft = app
            .finish_time()
            .unwrap_or_else(|| now.since(app.started_at().unwrap_or(SimTime::ZERO)));
        finish += ft.as_secs_f64();
        tps += app.completed() as f64 / ft.as_secs_f64().max(1e-9);
        lat += app.latency.mean() / 1e3;
    }
    let n = clients.len() as f64;
    let cpus = bed.server(0).cpus_used(now);
    (finish / n, tps / n, lat / n, cpus)
}

/// Regenerate Table 3.
pub fn run(full: bool) -> Vec<Artifact> {
    let requests = if full { 2_000_000 } else { 150_000 };
    let transfer = if full { 4u64 << 30 } else { 400 << 20 };
    let horizon = if full { 400 } else { 90 };
    let scale = requests as f64 / 2_000_000.0;
    let mut t = Artifact::new(
        "table3",
        "Memcached finish times with disk-bound background transfers",
        "with the background transfers on the VIF, moving memcached to SR-IOV roughly halves finish time and latency",
    );
    let paper = [
        ("VIF", 118.4, 16_896.2, 455.6, 7.6, 0usize),
        ("SR-IOV VF", 69.0, 29_334.6, 249.0, 6.3, 4usize),
    ];
    for (cfg, p_fin, p_tps, p_lat, p_cpu, n_fast) in paper {
        let (mut bed, servers, clients) = build(requests, transfer, 41);
        offload_servers(&mut bed, &servers, &clients, n_fast);
        let (fin, tps, lat, cpus) = measure_with(&mut bed, &clients, horizon);
        t.push(Row::new(
            "mean finish",
            cfg,
            Some(p_fin * scale),
            fin,
            "s (paper scaled)",
        ));
        t.push(Row::new("mean TPS/client", cfg, Some(p_tps), tps, "tps"));
        t.push(Row::new("mean latency", cfg, Some(p_lat), lat, "us"));
        t.push(Row::new("# CPUs", cfg, Some(p_cpu), cpus, "logical CPUs"));
    }
    if !full {
        t.note(format!(
            "quick mode: {requests} requests/client, {} MB transfers; paper finish times scaled by {scale:.3}",
            transfer >> 20
        ));
    }
    vec![t]
}
