//! Incast matrix — congestion control × path placement × fan-out grid
//! (extension beyond the paper's published evaluation; DESIGN.md transport
//! subsystem).
//!
//! An aggregator fans a synchronized request out to N workers and waits
//! for every response: the classic partition-aggregate incast that
//! overflows shallow buffers at the aggregator's downlink. Two long
//! pipelined flows keep standing queues occupied so short bursts contend
//! with backlog (the DCTCP evaluation's long/short mix). The grid reruns
//! the identical rack for each congestion-control variant (Reno, CUBIC,
//! DCTCP with RED-style ECN marking at the ToR and NICs), each path
//! placement (software VIF, SR-IOV hardware, and a Fig.-12-style mid-run
//! migration of the workers' response path onto SR-IOV), and two fan-out
//! widths, reporting:
//!
//! * round FCT p50/p99 — fan-out issue to last response byte;
//! * rounds completed — aggregate goodput of the closed loop;
//! * retransmitted segments and RTO timeouts — loss-recovery health;
//! * ECN CE marks and ECE echoes — the DCTCP feedback loop at work;
//! * the migration transient — retransmits after the mid-run path shift,
//!   comparable against the static-path cells' same-window count.
//!
//! Everything runs on the deterministic testbed: same seed → bit-identical
//! artifacts (pinned by this module's replay test).

use fastrak_host::vm::VmSpec;
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::flow::FlowSpec;
use fastrak_net::packet::PathTag;
use fastrak_sim::time::{SimDuration, SimTime};
use fastrak_transport::cc::CcAlgo;
use fastrak_transport::tcp::{TcpConfig, TcpStats};
use fastrak_workload::{incast_worker, IncastAggregator, IncastConfig, Testbed, TestbedConfig};

use crate::report::{Artifact, Row};

const TENANT: TenantId = TenantId(1);
/// Response size per worker per round (~11 MSS: enough to burst).
const RESP_SIZE: u64 = 16_000;
/// RED/DCTCP-style marking threshold (queueing delay at 10 Gbps; ~K=65
/// full-sized frames, the DCTCP paper's 10 Gbps recommendation).
const ECN_K: SimDuration = SimDuration::from_micros(60);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Path {
    /// Everything stays on the vswitch (VIF) path.
    Sw,
    /// Everything pinned to SR-IOV from the start.
    Hw,
    /// Workers' response path migrates VIF → SR-IOV mid-run (Fig. 12
    /// shape: the data direction shifts, ACKs keep returning via VIF).
    Migrate,
}

impl Path {
    fn name(self) -> &'static str {
        match self {
            Path::Sw => "sw",
            Path::Hw => "hw",
            Path::Migrate => "migrate",
        }
    }
}

fn cc_grid() -> [(&'static str, CcAlgo); 3] {
    [
        ("reno", CcAlgo::Reno),
        ("cubic", CcAlgo::Cubic),
        ("dctcp", CcAlgo::Dctcp),
    ]
}

/// One grid cell's observables.
struct Outcome {
    fct_p50_ns: u64,
    fct_p99_ns: u64,
    rounds: u64,
    rtx_segs: u64,
    timeouts: u64,
    /// CE marks applied by the fabric (ToR + NIC queues).
    ce_marks: u64,
    /// ECE echoes the senders saw (the feedback loop closing).
    ece_rx: u64,
    /// Retransmits in the second half of the run (after the migration
    /// instant — the transient for `migrate`, the baseline otherwise).
    rtx_after_shift: u64,
    /// Full end-of-run registry (`tcp.*` per server included).
    registry: fastrak_telemetry::Registry,
}

/// Sum transport counters over every VM in the rack.
fn sum_tcp(bed: &Testbed) -> TcpStats {
    let mut acc = TcpStats::default();
    for v in bed.vms().to_vec() {
        let stack = &bed.server(v.server).vm(v.vm).stack;
        for id in stack.conn_ids() {
            let s = &stack.conn(id).stats;
            acc.rtx_segs += s.rtx_segs;
            acc.timeouts += s.timeouts;
            acc.ecn_ece_rx += s.ecn_ece_rx;
        }
    }
    acc
}

fn run_one(cc: CcAlgo, path: Path, fanout: usize, horizon: SimTime) -> Outcome {
    let mut bed = Testbed::build(TestbedConfig {
        n_servers: 5,
        tunneling: false,
        ..TestbedConfig::default()
    });
    let tcp = TcpConfig {
        cc,
        ecn: cc == CcAlgo::Dctcp,
        sack: true,
        ..TcpConfig::default()
    };
    if cc == CcAlgo::Dctcp {
        bed.tor_mut().cfg.ecn_mark_threshold = Some(ECN_K);
        for i in 0..5 {
            bed.server_mut(i).cfg.ecn_mark_threshold = Some(ECN_K);
        }
    }

    // Workers round-robin over servers 1..=4; the aggregator alone on
    // server 0 so all responses converge on one downlink.
    let mut workers = Vec::new();
    let mut worker_refs = Vec::new();
    for i in 0..fanout {
        let ip = Ip::tenant_vm(i as u16 + 2);
        let v = bed.add_vm_tcp(
            1 + i % 4,
            VmSpec::medium(format!("w{i}"), TENANT, ip),
            Box::new(incast_worker(RESP_SIZE)),
            tcp,
        );
        worker_refs.push(v);
        workers.push(ip);
    }
    let agg = bed.add_vm_tcp(
        0,
        VmSpec::large("agg", TENANT, Ip::tenant_vm(1)),
        Box::new(IncastAggregator::new(IncastConfig {
            long_flows: 2,
            long_burst: 8,
            rounds: None,
            ..IncastConfig::fan_in(workers, RESP_SIZE, 0)
        })),
        tcp,
    );

    if path != Path::Sw {
        bed.authorize_hw_tenant(TENANT);
    }
    if path == Path::Hw {
        for &v in &worker_refs {
            bed.force_path(v, PathTag::SrIov);
        }
        bed.force_path(agg, PathTag::SrIov);
    }

    bed.start();
    let shift_at = SimTime(horizon.as_nanos() / 2);
    bed.run_until(shift_at);
    let pre = sum_tcp(&bed);
    if path == Path::Migrate {
        // Shift the workers' egress (the response direction) onto the
        // SR-IOV VF, as the FasTrak rule manager would; requests and ACKs
        // keep flowing via the VIF (asymmetric, as in Fig. 12).
        for &v in &worker_refs {
            let spec = FlowSpec {
                tenant: Some(TENANT),
                src_ip: Some(v.ip),
                ..FlowSpec::ANY
            };
            bed.server_mut(v.server)
                .vm_mut(v.vm)
                .placer
                .install_rule(spec, 10, PathTag::SrIov);
        }
    }
    bed.run_until(horizon);

    bed.publish_telemetry();
    let registry = std::mem::take(&mut bed.kernel.ctx.telemetry.registry);
    let end = sum_tcp(&bed);
    let ce_marks =
        bed.tor().stats.ecn_marked + (0..5).map(|i| bed.server(i).stats.ecn_marked).sum::<u64>();
    let app = bed.app::<IncastAggregator>(agg);
    Outcome {
        fct_p50_ns: app.fct.quantile(0.5),
        fct_p99_ns: app.fct.quantile(0.99),
        rounds: app.completed_rounds,
        rtx_segs: end.rtx_segs,
        timeouts: end.timeouts,
        ce_marks,
        ece_rx: end.ecn_ece_rx,
        rtx_after_shift: end.rtx_segs - pre.rtx_segs,
        registry,
    }
}

/// Regenerate the incast-matrix report.
pub fn run(full: bool) -> Vec<Artifact> {
    run_with_export(full).0
}

/// Regenerate the report and also return the most telling cell's registry
/// (DCTCP + migration + widest fan-out — every new `tcp.*` counter and the
/// fabric mark counters live), exported under `experiments --telemetry`.
pub fn run_with_export(full: bool) -> (Vec<Artifact>, fastrak_telemetry::Registry) {
    let horizon = if full {
        SimTime::from_millis(1_200)
    } else {
        SimTime::from_millis(500)
    };
    let fanouts: &[usize] = &[4, 12];
    let mut a = Artifact::new(
        "incast-matrix",
        "Incast fan-in: congestion control x path x fan-out grid",
        "partition-aggregate fan-in stresses the aggregator downlink; DCTCP's ECN feedback keeps queues short (marks instead of drops, lower FCT tails), SR-IOV placement cuts per-hop latency, and a mid-run response-path migration shows the Fig.-12 transient (retransmits, no collapse) under every variant",
    );
    let mut export: Option<fastrak_telemetry::Registry> = None;
    for (cc_name, cc) in cc_grid() {
        for path in [Path::Sw, Path::Hw, Path::Migrate] {
            for &fanout in fanouts {
                let got = run_one(cc, path, fanout, horizon);
                let cfg = format!("cc={cc_name}, path={}, fanout={fanout}", path.name());
                a.push(Row::new(
                    "round FCT p50",
                    cfg.clone(),
                    None,
                    got.fct_p50_ns as f64 / 1_000.0,
                    "us",
                ));
                a.push(Row::new(
                    "round FCT p99",
                    cfg.clone(),
                    None,
                    got.fct_p99_ns as f64 / 1_000.0,
                    "us",
                ));
                a.push(Row::new(
                    "rounds completed",
                    cfg.clone(),
                    None,
                    got.rounds as f64,
                    "count",
                ));
                a.push(Row::new(
                    "retransmitted segments",
                    cfg.clone(),
                    None,
                    got.rtx_segs as f64,
                    "segs",
                ));
                a.push(Row::new(
                    "RTO timeouts",
                    cfg.clone(),
                    None,
                    got.timeouts as f64,
                    "events",
                ));
                a.push(Row::new(
                    "ECN CE marks (fabric)",
                    cfg.clone(),
                    None,
                    got.ce_marks as f64,
                    "pkts",
                ));
                a.push(Row::new(
                    "ECE echoes received",
                    cfg.clone(),
                    None,
                    got.ece_rx as f64,
                    "acks",
                ));
                a.push(Row::new(
                    "rtx after path shift",
                    cfg,
                    None,
                    got.rtx_after_shift as f64,
                    "segs",
                ));
                if cc == CcAlgo::Dctcp && path == Path::Migrate && fanout == 12 {
                    export = Some(got.registry);
                }
            }
        }
    }
    a.note("no 'paper' column: the paper migrates one bulk flow (Fig. 12); the grid extends it with incast fan-in and the transport variants");
    a.note(format!(
        "resp={RESP_SIZE}B/worker/round, 2 long pipelined flows as background, ECN marking K={}us on ToR+NIC queues for the DCTCP cells; path shift at horizon/2",
        ECN_K.as_nanos() / 1_000
    ));
    (vec![a], export.expect("grid always runs the export cell"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_HORIZON: SimTime = SimTime::from_millis(500);

    /// The acceptance criterion: the DCTCP cells' ECN feedback loop must
    /// actually close (fabric CE marks, ECE echoes) while the classic-CC
    /// cells stay mark-free, and every cell must make progress through the
    /// migration without collapsing. Release-only (`--ignored`, run by CI).
    #[test]
    #[ignore = "slow: run with cargo test --release -p fastrak-bench -- --ignored"]
    fn dctcp_marks_and_every_cell_progresses() {
        for (cc_name, cc) in cc_grid() {
            let got = run_one(cc, Path::Migrate, 12, TEST_HORIZON);
            assert!(
                got.rounds > 50,
                "{cc_name}: incast must progress through the migration, got {} rounds",
                got.rounds
            );
            if cc == CcAlgo::Dctcp {
                assert!(got.ce_marks > 0, "dctcp: fabric must CE-mark");
                assert!(got.ece_rx > 0, "dctcp: senders must see ECE echoes");
            } else {
                assert_eq!(got.ce_marks, 0, "{cc_name}: no marking configured");
                assert_eq!(got.ece_rx, 0, "{cc_name}: no ECN negotiated");
            }
        }
    }

    /// Same seed → bit-identical artifacts (and registry export).
    #[test]
    #[ignore = "slow: run with cargo test --release -p fastrak-bench -- --ignored"]
    fn dctcp_migrate_cell_replays_bit_identically() {
        let run = || {
            let got = run_one(CcAlgo::Dctcp, Path::Migrate, 12, TEST_HORIZON);
            let mut lines: Vec<String> = got
                .registry
                .counters()
                .map(|(n, v)| format!("{n}={v}"))
                .chain(got.registry.gauges().map(|(n, v)| format!("{n}={v}")))
                .collect();
            lines.sort();
            (
                got.fct_p99_ns,
                got.rounds,
                got.rtx_segs,
                got.ce_marks,
                lines,
            )
        };
        assert_eq!(run(), run());
    }
}
