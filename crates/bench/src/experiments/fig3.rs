//! Figure 3 — Baseline network performance (§3.2).
//!
//! Four path configurations {Baseline OVS, OVS+Tunneling, OVS+Rate
//! limiting(10G), SR-IOV} × four application data sizes {64, 600, 1448,
//! 32000} bytes:
//!
//! * (a) `TCP_STREAM` throughput, 3 threads, `TCP_NODELAY`;
//! * (b,c) closed-loop `TCP_RR` average and 99th-percentile latency;
//! * (d,e) pipelined `TCP_RR` (3 threads × burst 32) transactions/sec and
//!   average latency.

use std::mem::discriminant;

use fastrak_sim::time::SimTime;
use fastrak_workload::{RrClient, RrClientConfig, StreamConfig, StreamSender, StreamSink};

use crate::report::{Artifact, Row};
use crate::scenarios::{micro_bed, PathSetup, SERVER_IP};

/// The paper's application data sizes (§3.1).
pub const SIZES: [u64; 4] = [64, 600, 1448, 32_000];

/// The Fig. 3 configurations.
pub fn configs() -> [PathSetup; 4] {
    [
        PathSetup::BaselineOvs,
        PathSetup::OvsTunnel,
        PathSetup::OvsRateLimit(10_000_000_000),
        PathSetup::Sriov,
    ]
}

/// Measured metrics for one (config, size) cell.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Stream throughput, bits/sec.
    pub throughput_bps: f64,
    /// Closed-loop mean RTT, µs.
    pub rr_mean_us: f64,
    /// Closed-loop 99th-percentile RTT, µs.
    pub rr_p99_us: f64,
    /// Pipelined transactions/sec.
    pub burst_tps: f64,
    /// Pipelined mean latency, µs.
    pub burst_mean_us: f64,
}

/// Run the three §3.1.1 tests for one cell.
pub fn measure_cell(setup: PathSetup, size: u64, quick: bool) -> Cell {
    let (warm, window) = if quick { (200, 400) } else { (300, 900) };

    // --- throughput ---
    let throughput_bps = {
        let mut mb = micro_bed(
            setup,
            Box::new(StreamSender::new(StreamConfig::netperf(
                SERVER_IP, 5001, size,
            ))),
            Box::new(StreamSink::new(5001)),
            11,
        );
        mb.bed.start();
        mb.bed.run_until(SimTime::from_millis(warm));
        let now = mb.bed.now();
        let sink_vm = mb.server;
        mb.bed
            .server_mut(sink_vm.server)
            .vm_mut(sink_vm.vm)
            .app_as_mut::<StreamSink>()
            .meter
            .begin_window(now);
        mb.bed.run_until(SimTime::from_millis(warm + window));
        let now = mb.bed.now();
        mb.bed.app::<StreamSink>(sink_vm).goodput_bps(now)
    };

    // --- closed-loop latency ---
    let (rr_mean_us, rr_p99_us) = {
        let mut mb = micro_bed(
            setup,
            Box::new(RrClient::new(RrClientConfig::closed_loop(
                SERVER_IP, 5002, size,
            ))),
            Box::new(fastrak_workload::RrServer::new(
                fastrak_workload::RrServerConfig {
                    port: 5002,
                    req_size: size,
                    resp_size: size,
                    service_cpu: fastrak_sim::time::SimDuration::ZERO,
                },
            )),
            13,
        );
        mb.bed.start();
        mb.bed.run_until(SimTime::from_millis(warm));
        let now = mb.bed.now();
        let cli = mb.client;
        mb.bed
            .server_mut(cli.server)
            .vm_mut(cli.vm)
            .app_as_mut::<RrClient>()
            .begin_window(now);
        mb.bed.run_until(SimTime::from_millis(warm + 2 * window));
        let app = mb.bed.app::<RrClient>(cli);
        (
            app.latency.mean() / 1e3,
            app.latency.quantile(0.99) as f64 / 1e3,
        )
    };

    // --- pipelined (burst) ---
    let (burst_tps, burst_mean_us) = {
        let mut mb = micro_bed(
            setup,
            Box::new(RrClient::new(RrClientConfig::pipelined(
                SERVER_IP, 5003, size,
            ))),
            Box::new(fastrak_workload::RrServer::new(
                fastrak_workload::RrServerConfig {
                    port: 5003,
                    req_size: size,
                    resp_size: size,
                    service_cpu: fastrak_sim::time::SimDuration::ZERO,
                },
            )),
            17,
        );
        mb.bed.start();
        mb.bed.run_until(SimTime::from_millis(warm));
        let now = mb.bed.now();
        let cli = mb.client;
        mb.bed
            .server_mut(cli.server)
            .vm_mut(cli.vm)
            .app_as_mut::<RrClient>()
            .begin_window(now);
        mb.bed.run_until(SimTime::from_millis(warm + window));
        let now = mb.bed.now();
        let app = mb.bed.app::<RrClient>(cli);
        (app.tps(now), app.latency.mean() / 1e3)
    };

    Cell {
        throughput_bps,
        rr_mean_us,
        rr_p99_us,
        burst_tps,
        burst_mean_us,
    }
}

/// Regenerate Fig. 3(a-e).
pub fn run(full: bool) -> Vec<Artifact> {
    let mut a = Artifact::new("fig3a", "Throughput (TCP_STREAM, 3 threads)",
        "SR-IOV ≥ every OVS config at every size; OVS+Tunneling capped ≈2 Gbps; small sizes are CPU-bound, large sizes near line rate");
    let mut b = Artifact::new(
        "fig3b",
        "Closed-loop TCP_RR average latency",
        "SR-IOV delivers significantly lower average latency than every software path",
    );
    let mut c = Artifact::new(
        "fig3c",
        "Closed-loop TCP_RR 99th-percentile latency",
        "software paths have a heavier tail than SR-IOV",
    );
    let mut d = Artifact::new("fig3d", "Pipelined (burst) transactions per second",
        "avg TPS over 64-1448B: SR-IOV ≈60k, baseline ≈34k, +tunneling ≈25k, +rate limiting ≈30k (SR-IOV up to 2× baseline; RL at 85-88% of baseline)");
    let mut e = Artifact::new("fig3e", "Pipelined (burst) average latency",
        "latency improvement of SR-IOV over baseline grows as data size shrinks: 30% @32000B → 49% @64B (32%→56% vs rate limiting)");

    let mut cells: Vec<(PathSetup, u64, Cell)> = Vec::new();
    for setup in configs() {
        for &size in &SIZES {
            let cell = measure_cell(setup, size, !full);
            let cfg = format!("{} @{}B", setup.label(), size);
            a.push(Row::new(
                "throughput",
                &cfg,
                None,
                cell.throughput_bps,
                "bps",
            ));
            b.push(Row::new("rr avg", &cfg, None, cell.rr_mean_us, "us"));
            c.push(Row::new("rr p99", &cfg, None, cell.rr_p99_us, "us"));
            d.push(Row::new("burst tps", &cfg, None, cell.burst_tps, "tps"));
            e.push(Row::new("burst avg", &cfg, None, cell.burst_mean_us, "us"));
            cells.push((setup, size, cell));
        }
    }

    // The quantitative anchors the paper's text states (§3.2.4, Fig. 3(d)):
    // average burst TPS over the 64-1448B sizes.
    let avg_small = |setup: PathSetup| -> f64 {
        let v: Vec<f64> = cells
            .iter()
            .filter(|(s, size, _)| discriminant(s) == discriminant(&setup) && *size <= 1448)
            .map(|(_, _, c)| c.burst_tps)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    d.push(Row::new(
        "burst tps avg(64-1448)",
        "SR-IOV",
        Some(60_000.0),
        avg_small(PathSetup::Sriov),
        "tps",
    ));
    d.push(Row::new(
        "burst tps avg(64-1448)",
        "Baseline OVS",
        Some(34_000.0),
        avg_small(PathSetup::BaselineOvs),
        "tps",
    ));
    d.push(Row::new(
        "burst tps avg(64-1448)",
        "OVS+Tunneling",
        Some(25_000.0),
        avg_small(PathSetup::OvsTunnel),
        "tps",
    ));
    d.push(Row::new(
        "burst tps avg(64-1448)",
        "OVS+Rate limiting",
        Some(30_000.0),
        avg_small(PathSetup::OvsRateLimit(0)),
        "tps",
    ));

    // Pipelined latency improvement of SR-IOV over baseline, small vs large.
    let lat = |setup: PathSetup, size: u64| -> f64 {
        cells
            .iter()
            .find(|(s, sz, _)| discriminant(s) == discriminant(&setup) && *sz == size)
            .map(|(_, _, c)| c.burst_mean_us)
            .unwrap()
    };
    let improvement = |base: PathSetup, size: u64| -> f64 {
        100.0 * (lat(base, size) - lat(PathSetup::Sriov, size)) / lat(base, size)
    };
    e.push(Row::new(
        "improvement vs baseline",
        "@64B",
        Some(49.0),
        improvement(PathSetup::BaselineOvs, 64),
        "%",
    ));
    e.push(Row::new(
        "improvement vs baseline",
        "@32000B",
        Some(30.0),
        improvement(PathSetup::BaselineOvs, 32_000),
        "%",
    ));
    e.push(Row::new(
        "improvement vs OVS+RL",
        "@64B",
        Some(56.0),
        improvement(PathSetup::OvsRateLimit(0), 64),
        "%",
    ));
    e.push(Row::new(
        "improvement vs OVS+RL",
        "@32000B",
        Some(32.0),
        improvement(PathSetup::OvsRateLimit(0), 32_000),
        "%",
    ));

    for art in [&mut a, &mut b, &mut c, &mut d, &mut e] {
        if !full {
            art.note("quick mode: shortened measurement windows (pass --full for longer ones)");
        }
        art.note("figure data points are not printed in the paper; the paper column holds only values the text states");
    }
    vec![a, b, c, d, e]
}
