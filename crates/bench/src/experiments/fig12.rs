//! Figure 12 — TCP progression across a flow migration (§6.2.2).
//!
//! A single bulk TCP flow (iperf stand-in) is offloaded from the VIF to the
//! SR-IOV path one second after it begins, while its ACKs keep returning
//! via the VIF. The paper's packet capture shows the connection progressing
//! normally: duplicate ACKs and ~30 fast retransmits during the shift, TCP
//! recovering twice from loss, and **no timeouts**.
//!
//! This harness captures the receiver-side sequence trace around the
//! migration instant and reports the transport counters.

use fastrak_net::flow::FlowSpec;
use fastrak_net::packet::PathTag;
use fastrak_sim::time::SimTime;
use fastrak_workload::{StreamConfig, StreamSender, StreamSink};

use crate::report::{Artifact, Row};
use crate::scenarios::{micro_bed, PathSetup, SERVER_IP, TENANT};

/// A receiver-side trace point: (seconds, sequence/delivered bytes).
pub type TracePoint = (f64, u64);

/// Run the migration experiment; returns (artifact, downsampled seq trace).
pub fn run_with_trace(full: bool) -> (Artifact, Vec<TracePoint>) {
    let (a, points, _) = run_inner(full, false);
    (a, points)
}

/// Run the migration experiment with flow-lifecycle span tracing enabled
/// and export the Chrome trace-event JSON (Perfetto-loadable): one track
/// per component, the sender VM's path residency ("vif" → "sriov") as
/// consecutive slices with the shift at the t=1 s migration instant.
pub fn chrome_trace_json(full: bool) -> String {
    run_inner(full, true).2.expect("telemetry was enabled")
}

/// One traced run returning both the report artifact and the Chrome trace
/// (so `--telemetry` doesn't pay for the simulation twice).
pub fn run_traced(full: bool) -> (Vec<Artifact>, String) {
    let (a, _, trace) = run_inner(full, true);
    (vec![a], trace.expect("telemetry was enabled"))
}

fn run_inner(_full: bool, telemetry: bool) -> (Artifact, Vec<TracePoint>, Option<String>) {
    let mut cfg = StreamConfig::netperf(SERVER_IP, 5201, 32_000);
    cfg.threads = 1; // a single iperf flow
    let mut mb = micro_bed(
        PathSetup::BaselineOvs,
        Box::new(StreamSender::new(cfg)),
        Box::new(StreamSink::new(5201)),
        47,
    );
    // Authorize the hardware path but leave the placer on the VIF.
    mb.bed.authorize_hw_tenant(TENANT);
    mb.bed.kernel.ctx.trace.set_enabled(true);
    if telemetry {
        mb.bed.kernel.ctx.telemetry.spans.set_enabled(true);
        mb.bed.kernel.ctx.telemetry.audit.set_enabled(true);
    }
    mb.bed.start();

    // Let the flow run for one second on the VIF.
    mb.bed.run_until(SimTime::from_secs(1));

    // Offload: redirect the sender's egress to the SR-IOV VF, as the
    // FasTrak rule manager would. ACKs keep coming back over the VIF.
    let client = mb.client;
    let spec = FlowSpec {
        tenant: Some(TENANT),
        src_ip: Some(client.ip),
        ..FlowSpec::ANY
    };
    mb.bed
        .server_mut(client.server)
        .vm_mut(client.vm)
        .placer
        .install_rule(spec, 10, PathTag::SrIov);

    // Run through the transition and a little beyond.
    mb.bed.run_until(SimTime::from_millis(2_000));

    // Transport counters at the sender.
    let sender = mb.bed.server(client.server);
    let conn_id = sender.vm(client.vm).stack.conn_ids().next().unwrap();
    let stats = sender.vm(client.vm).stack.conn(conn_id).stats;
    let hw_frames = sender.stats.tx_hw_frames;
    let sw_frames = sender.stats.tx_sw_frames;

    // Receiver-side delivered-byte progression from the trace.
    let serverref = mb.server;
    let receiver = mb.bed.server(serverref.server);
    let delivered = receiver.vm(serverref.vm).stack.conn_ids().next().map(|id| {
        receiver
            .vm(serverref.vm)
            .stack
            .conn(id)
            .stats
            .bytes_delivered
    });
    let mut points: Vec<TracePoint> = mb
        .bed
        .kernel
        .ctx
        .trace
        .records()
        .filter(|r| r.kind == "rx" && r.who.starts_with("s1"))
        .map(|r| (r.at.as_secs_f64(), r.vals[1]))
        .collect();
    // Downsample to ~200 points for the figure series.
    if points.len() > 200 {
        let stride = points.len() / 200;
        points = points.into_iter().step_by(stride).collect();
    }

    let mut a = Artifact::new(
        "fig12",
        "TCP sequence progression across flow migration",
        "the connection progresses normally through the shift: dup-ACKs and fast retransmits, recovery without a single RTO",
    );
    a.push(Row::new(
        "fast retransmits",
        "during run",
        Some(30.0),
        stats.fast_retransmits as f64,
        "events",
    ));
    a.push(Row::new(
        "RTO timeouts",
        "during run",
        Some(0.0),
        stats.timeouts as f64,
        "events",
    ));
    a.push(Row::new(
        "dup ACKs received",
        "during run",
        None,
        stats.dup_acks_rx as f64,
        "events",
    ));
    a.push(Row::new(
        "frames via VIF",
        "pre+post shift",
        None,
        sw_frames as f64,
        "frames",
    ));
    a.push(Row::new(
        "frames via SR-IOV",
        "post shift",
        None,
        hw_frames as f64,
        "frames",
    ));
    if let Some(d) = delivered {
        a.push(Row::new(
            "bytes delivered",
            "receiver",
            None,
            d as f64,
            "bytes",
        ));
    }
    // Monotone progression check across the migration window.
    let progressing = points.windows(2).all(|w| w[1].0 >= w[0].0);
    a.push(Row::new(
        "trace monotone in time",
        "receiver capture",
        None,
        progressing as u64 as f64,
        "bool",
    ));
    a.note(
        "sender egress shifts at t=1 s; ACK path stays on the VIF (asymmetric, as in the paper)",
    );
    a.note("seq-vs-time series available via `experiments fig12 --csv`");

    let trace_json = telemetry.then(|| {
        let now_ns = mb.bed.now().as_nanos();
        let telemetry = &mut mb.bed.kernel.ctx.telemetry;
        telemetry.spans.finish(now_ns);
        fastrak_telemetry::export::chrome_trace(&telemetry.spans, Some(&telemetry.audit))
    });
    (a, points, trace_json)
}

/// Regenerate Fig. 12.
pub fn run(full: bool) -> Vec<Artifact> {
    vec![run_with_trace(full).0]
}
