//! Component-failure chaos matrix (DESIGN.md §5 "Component failure
//! semantics") — an extension beyond the paper's published evaluation.
//!
//! The paper's evaluation assumes every component stays up; this experiment
//! scripts component-level failures through the deterministic chaos plane
//! ([`fastrak_sim::chaos`]) and measures how gracefully the express lane
//! degrades and recovers:
//!
//! * **ToR reboot** — rule table and flow counters wiped, ports dark for a
//!   window; the controller must detect the boot-generation bump, demote
//!   everything the hardware lost, and re-converge with zero bookkeeping
//!   drift.
//! * **SR-IOV VF failure** — one server's hardware path goes dark; its
//!   local controller reports the transition and the TOR controller
//!   force-demotes that server's offloaded aggregates onto the software
//!   path (no flow is lost forever).
//! * **Link flap** — drop windows on the host↔ToR link; blackhole
//!   detection (hardware counters idle under live demand) demotes the
//!   affected aggregates until the link settles.
//! * **Controller crash/restart** — a state-free new incarnation rebuilds
//!   its offloaded set, transactions, and policy occupancy from the ToR's
//!   rule dump; differentially compared against a never-crashed run.
//!
//! Every scenario runs under both fast-path fairness policies in `--full`
//! mode (quick mode covers the unrestricted baseline policy) to show the
//! recovery machinery is policy-independent.

use fastrak::{attach, CtrlPlaneConfig, DeConfig, FasTrakConfig, FastPathPolicy, TorController};
use fastrak_host::vm::VmSpec;
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::event::ctl_fault_layer;
use fastrak_sim::chaos::ChaosConfig;
use fastrak_sim::fault::FaultConfig;
use fastrak_sim::kernel::NodeId;
use fastrak_sim::time::{SimDuration, SimTime};
use fastrak_workload::{
    memcached_server, FileTransfer, MemslapClient, MemslapConfig, StreamSink, Testbed,
    TestbedConfig, VmRef,
};

use crate::report::{Artifact, Row};

const T: TenantId = TenantId(1);

/// Failure scenarios scripted through the chaos plane. All faults open at
/// [`fault_start`], after the controller has converged on the memcached
/// aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// No chaos — the convergence target every other scenario must return to.
    Baseline,
    /// ToR dark + state wiped for 2.5 s – 2.9 s.
    TorReboot,
    /// Server 0's SR-IOV path dark for 2.5 s – 4.0 s.
    VfFailure,
    /// Two drop windows on the server-0↔ToR link.
    LinkFlap,
    /// TOR controller crashes and restarts at 2.5 s.
    CtrlRestart,
}

impl Scenario {
    fn label(self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::TorReboot => "tor_reboot",
            Scenario::VfFailure => "vf_failure",
            Scenario::LinkFlap => "link_flap",
            Scenario::CtrlRestart => "ctrl_restart",
        }
    }
}

fn fault_start() -> SimTime {
    SimTime::from_millis(2_500)
}

/// The same rack as `fault_matrix`: memcached + scp on server 0, their
/// peers on server 1. Returns the memslap VM for latency readout.
fn rack() -> (Testbed, VmRef) {
    let mut bed = Testbed::build(TestbedConfig {
        n_servers: 2,
        tunneling: false,
        ..TestbedConfig::default()
    });
    bed.add_vm(
        0,
        VmSpec::large("memcached", T, Ip::tenant_vm(1)),
        Box::new(memcached_server()),
    );
    let mut ft = FileTransfer::paper_default(Ip::tenant_vm(4), 22, 50_000);
    ft.total_bytes = 1 << 30;
    bed.add_vm(
        0,
        VmSpec::large("scp-src", T, Ip::tenant_vm(2)),
        Box::new(ft),
    );
    let memslap = bed.add_vm(
        1,
        VmSpec::large("memslap", T, Ip::tenant_vm(3)),
        Box::new(MemslapClient::new(MemslapConfig::paper(
            vec![Ip::tenant_vm(1)],
            None,
        ))),
    );
    bed.add_vm(
        1,
        VmSpec::large("scp-sink", T, Ip::tenant_vm(4)),
        Box::new(StreamSink::new(22)),
    );
    (bed, memslap)
}

fn chaos_for(scenario: Scenario, tor: NodeId, server0: NodeId, tor_ctrl: NodeId) -> ChaosConfig {
    let t0 = fault_start();
    match scenario {
        Scenario::Baseline => ChaosConfig::default(),
        Scenario::TorReboot => ChaosConfig {
            tor_outages: vec![(tor, t0, SimTime::from_millis(2_900))],
            ..ChaosConfig::default()
        },
        Scenario::VfFailure => ChaosConfig {
            vf_outages: vec![(server0, t0, SimTime::from_millis(4_000))],
            ..ChaosConfig::default()
        },
        Scenario::LinkFlap => ChaosConfig {
            link_flaps: vec![
                (server0, tor, t0, SimTime::from_millis(2_700)),
                (
                    server0,
                    tor,
                    SimTime::from_millis(3_000),
                    SimTime::from_millis(3_200),
                ),
            ],
            ..ChaosConfig::default()
        },
        Scenario::CtrlRestart => ChaosConfig {
            controller_restarts: vec![(tor_ctrl, t0)],
            ..ChaosConfig::default()
        },
    }
}

/// End-of-run observables for one (scenario, policy) cell.
struct Outcome {
    /// Sorted debug strings of the offloaded aggregates.
    offloaded: Vec<String>,
    /// `entries_used` minus the ToR's actual installed rule count — the
    /// bookkeeping-drift invariant, which must be zero after recovery.
    drift: i64,
    /// Victim (memslap) p99 transaction latency over the whole run.
    p99_ns: u64,
    /// First checkpoint (ms after the fault opens) where the offloaded set
    /// shrank below its pre-fault size; -1 if it never did.
    time_to_fallback_ms: f64,
    /// First checkpoint after fallback where the set was back to its
    /// pre-fault size; -1 if it never recovered (or never fell back).
    time_to_reoffload_ms: f64,
    reboots_seen: u64,
    restarts: u64,
    blackhole_demotes: u64,
    hw_down_demotes: u64,
    frames_blocked: u64,
    hw_path_drops: u64,
    /// Full end-of-run telemetry snapshot, for the `--telemetry` exporters.
    registry: fastrak_telemetry::Registry,
}

fn run_one(scenario: Scenario, policy: FastPathPolicy, horizon: SimTime) -> Outcome {
    let (mut bed, memslap) = rack();
    // Same offload cap as fault_matrix: the two memcached aggregates
    // dominate by orders of magnitude, so "same offloaded set" tests the
    // recovery machinery rather than DE tie-breaking.
    let ft = attach(
        &mut bed,
        FasTrakConfig {
            de: DeConfig {
                max_offloaded: Some(2),
                policy,
                ..DeConfig::paper()
            },
            // Chaos scenarios need the detection machinery on: liveness
            // probes every 100 ms and two-epoch blackhole confirmation.
            // Enabled for the baseline too so the differential comparisons
            // see identical control-plane behaviour.
            ctrl: CtrlPlaneConfig {
                probe_interval: SimDuration::from_millis(100),
                blackhole_epochs: 2,
                ..CtrlPlaneConfig::default()
            },
            ..Default::default()
        },
    );
    // Flight-recorder on: failure transitions are recorded there, and the
    // chaos acceptance tests scan it.
    bed.kernel.ctx.telemetry.flight.set_enabled(true);
    let chaos = chaos_for(scenario, bed.tor, bed.servers[0], ft.tor_ctrl);
    bed.kernel.set_fault_layer(ctl_fault_layer(FaultConfig {
        seed: 0xC4A05,
        chaos,
        ..FaultConfig::default()
    }));
    ft.start(&mut bed);
    bed.start();

    // Run to the fault, snapshot the converged set size, then step in 50 ms
    // checkpoints to timestamp fallback and re-offload (checkpoints only
    // observe — they schedule nothing, so determinism is untouched).
    bed.run_until(fault_start());
    let pre_fault = bed
        .kernel
        .node::<TorController>(ft.tor_ctrl)
        .offloaded()
        .len();
    let mut fell_at = None;
    let mut recovered_at = None;
    let mut t = fault_start();
    while t < horizon {
        t += SimDuration::from_millis(50);
        bed.run_until(t);
        let n = bed
            .kernel
            .node::<TorController>(ft.tor_ctrl)
            .offloaded()
            .len();
        if fell_at.is_none() && n < pre_fault {
            fell_at = Some(t);
        }
        if fell_at.is_some() && recovered_at.is_none() && n >= pre_fault {
            recovered_at = Some(t);
        }
    }

    let mut offloaded: Vec<String> = ft
        .offloaded(&bed)
        .iter()
        .map(|a| format!("{a:?}"))
        .collect();
    offloaded.sort();
    let p99_ns = bed.app::<MemslapClient>(memslap).latency.quantile(0.99);
    let hw_path_drops = bed.server(0).stats.hw_path_drops + bed.server(1).stats.hw_path_drops;
    bed.publish_telemetry();
    ft.publish_telemetry(&mut bed);
    let tc = bed.kernel.node::<TorController>(ft.tor_ctrl);
    let drift = tc.entries_used as i64 - bed.tor().acl_rules() as i64;
    let reg = std::mem::take(&mut bed.kernel.ctx.telemetry.registry);
    let ctr = |name: &str| reg.counter_by_name(name).unwrap_or(0);
    let since_fault =
        |t: Option<SimTime>| t.map_or(-1.0, |t| (t - fault_start()).as_nanos() as f64 / 1e6);
    Outcome {
        offloaded,
        drift,
        p99_ns,
        time_to_fallback_ms: since_fault(fell_at),
        time_to_reoffload_ms: since_fault(recovered_at),
        reboots_seen: ctr("ctrl.chaos.tor_reboots_seen"),
        restarts: ctr("ctrl.chaos.ctrl_restarts"),
        blackhole_demotes: ctr("ctrl.chaos.blackhole_demotes"),
        hw_down_demotes: ctr("ctrl.chaos.hw_path_down_demotes"),
        frames_blocked: ctr("sim.chaos.frames_blocked"),
        hw_path_drops,
        registry: reg,
    }
}

fn policy_label(p: &FastPathPolicy) -> &'static str {
    if p.is_unrestricted() {
        "unrestricted"
    } else {
        "weighted"
    }
}

/// Regenerate the chaos-matrix report.
pub fn run(full: bool) -> Vec<Artifact> {
    run_with_export(full).0
}

/// Regenerate the report and also return the ToR-reboot run's telemetry
/// registry (the richest snapshot: chaos counters, probe/reconcile
/// machinery, and blocked-frame accounting all non-trivial), exported
/// under `experiments --telemetry`.
pub fn run_with_export(full: bool) -> (Vec<Artifact>, fastrak_telemetry::Registry) {
    let horizon = if full {
        SimTime::from_millis(8_300)
    } else {
        SimTime::from_millis(6_300)
    };
    let policies: Vec<FastPathPolicy> = if full {
        vec![
            FastPathPolicy::Unrestricted,
            FastPathPolicy::WeightedScore {
                weights: Default::default(),
            },
        ]
    } else {
        vec![FastPathPolicy::Unrestricted]
    };
    let scenarios = [
        Scenario::TorReboot,
        Scenario::VfFailure,
        Scenario::LinkFlap,
        Scenario::CtrlRestart,
    ];

    let mut a = Artifact::new(
        "chaos-matrix",
        "Express-lane degradation and recovery under component failures",
        "scripted ToR reboots, SR-IOV VF death, link flaps, and controller restarts: offloaded flows fall back to the software path (nothing is lost), bookkeeping drift stays zero, and the offloaded set re-converges to the fault-free one after recovery",
    );
    let mut export_reg = None;
    for policy in &policies {
        let base = run_one(Scenario::Baseline, policy.clone(), horizon);
        a.push(Row::new(
            "offloaded aggregates",
            format!("baseline/{}", policy_label(policy)),
            None,
            base.offloaded.len() as f64,
            "rules",
        ));
        for &scenario in &scenarios {
            let got = run_one(scenario, policy.clone(), horizon);
            let cfg = format!("{}/{}", scenario.label(), policy_label(policy));
            a.push(Row::new(
                "matches fault-free offloaded set",
                cfg.clone(),
                Some(1.0),
                if got.offloaded == base.offloaded {
                    1.0
                } else {
                    0.0
                },
                "bool",
            ));
            a.push(Row::new(
                "entries_used - installed ToR rules",
                cfg.clone(),
                Some(0.0),
                got.drift as f64,
                "rules",
            ));
            a.push(Row::new(
                "time to software fallback",
                cfg.clone(),
                None,
                got.time_to_fallback_ms,
                "ms",
            ));
            a.push(Row::new(
                "time to re-offload",
                cfg.clone(),
                None,
                got.time_to_reoffload_ms,
                "ms",
            ));
            a.push(Row::new(
                "victim p99 latency",
                cfg.clone(),
                None,
                got.p99_ns as f64 / 1_000.0,
                "us",
            ));
            let (name, v) = match scenario {
                Scenario::Baseline => unreachable!("not in the scenario grid"),
                Scenario::TorReboot => ("tor reboots detected", got.reboots_seen),
                Scenario::VfFailure => ("hw-path-down demotes", got.hw_down_demotes),
                Scenario::LinkFlap => ("blackhole demotes", got.blackhole_demotes),
                Scenario::CtrlRestart => ("controller restarts survived", got.restarts),
            };
            a.push(Row::new(name, cfg.clone(), None, v as f64, "count"));
            if scenario == Scenario::VfFailure {
                a.push(Row::new(
                    "frames eaten by dead VF",
                    cfg.clone(),
                    None,
                    got.hw_path_drops as f64,
                    "frames",
                ));
            }
            if scenario == Scenario::TorReboot {
                a.push(Row::new(
                    "frames blackholed by dark ToR",
                    cfg,
                    None,
                    got.frames_blocked as f64,
                    "frames",
                ));
                if policy.is_unrestricted() {
                    export_reg = Some(got.registry);
                }
            }
        }
    }
    a.note("'paper' column is the recovery target (1 = same offloaded set as the fault-free run, 0 bookkeeping drift), not a published number — the paper's evaluation assumes every component stays up");
    (
        vec![a],
        export_reg.expect("tor_reboot/unrestricted always runs"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_HORIZON: SimTime = SimTime::from_millis(6_300);

    /// Acceptance (a): a dead VF migrates its flows onto the software path
    /// — transactions keep completing, the hardware path's loss is bounded
    /// to the in-flight frames, and once the VF returns the express lane
    /// re-forms identically with zero bookkeeping drift. Release-only
    /// (`--ignored`, run by CI): each cell simulates >6 s of rack time.
    #[test]
    #[ignore = "slow: run with cargo test --release -p fastrak-bench -- --ignored"]
    fn vf_failure_migrates_to_software_and_recovers() {
        let base = run_one(
            Scenario::Baseline,
            FastPathPolicy::Unrestricted,
            TEST_HORIZON,
        );
        let got = run_one(
            Scenario::VfFailure,
            FastPathPolicy::Unrestricted,
            TEST_HORIZON,
        );
        assert!(got.hw_down_demotes >= 1, "hw-path-down report must demote");
        assert!(
            got.hw_path_drops > 0,
            "the dead VF must eat in-flight frames"
        );
        assert!(
            got.time_to_fallback_ms >= 0.0,
            "fallback must be observed: {}",
            got.time_to_fallback_ms
        );
        assert!(
            got.time_to_reoffload_ms > got.time_to_fallback_ms,
            "re-offload ({}) must follow fallback ({})",
            got.time_to_reoffload_ms,
            got.time_to_fallback_ms
        );
        assert_eq!(got.offloaded, base.offloaded, "must re-form the same lane");
        assert_eq!(got.drift, 0, "zero bookkeeping drift after recovery");
        assert!(
            got.p99_ns < base.p99_ns * 10,
            "victim p99 must recover: {} vs baseline {}",
            got.p99_ns,
            base.p99_ns
        );
    }

    /// Acceptance (b): a ToR reboot wipes the rule table; the controller
    /// detects the boot-generation bump, re-baselines, and re-converges to
    /// the fault-free offloaded set with `entries_used` drift exactly zero.
    #[test]
    #[ignore = "slow: run with cargo test --release -p fastrak-bench -- --ignored"]
    fn tor_reboot_reconverges_with_zero_drift() {
        let base = run_one(
            Scenario::Baseline,
            FastPathPolicy::Unrestricted,
            TEST_HORIZON,
        );
        let got = run_one(
            Scenario::TorReboot,
            FastPathPolicy::Unrestricted,
            TEST_HORIZON,
        );
        assert!(got.reboots_seen >= 1, "generation bump must be detected");
        assert!(got.frames_blocked > 0, "dark ports must blackhole frames");
        assert_eq!(got.offloaded, base.offloaded, "must re-converge");
        assert_eq!(got.drift, 0, "zero bookkeeping drift after re-baseline");
    }

    /// Acceptance (c): the controller-restart differential — a crashed-and-
    /// rebuilt controller must end in the same state as one that never
    /// crashed (offloaded set, bookkeeping, and policy walk all rebuilt
    /// from the hardware rule dump).
    #[test]
    #[ignore = "slow: run with cargo test --release -p fastrak-bench -- --ignored"]
    fn controller_restart_differential_matches_never_crashed_run() {
        let base = run_one(
            Scenario::Baseline,
            FastPathPolicy::Unrestricted,
            TEST_HORIZON,
        );
        let got = run_one(
            Scenario::CtrlRestart,
            FastPathPolicy::Unrestricted,
            TEST_HORIZON,
        );
        assert_eq!(got.restarts, 1, "exactly one scripted restart");
        assert_eq!(
            got.offloaded, base.offloaded,
            "rebuilt state must match the never-crashed controller"
        );
        assert_eq!(got.drift, 0, "rebuilt bookkeeping must match hardware");
    }

    /// Same chaos script → bit-identical run, down to the full telemetry
    /// registry (the richest scenario: reboot detection, probes, and frame
    /// blackholing all active).
    #[test]
    #[ignore = "slow: run with cargo test --release -p fastrak-bench -- --ignored"]
    fn tor_reboot_cell_replays_bit_identically() {
        let run = || {
            let got = run_one(
                Scenario::TorReboot,
                FastPathPolicy::Unrestricted,
                TEST_HORIZON,
            );
            let mut lines: Vec<String> = got
                .registry
                .counters()
                .map(|(n, v)| format!("{n}={v}"))
                .chain(got.registry.gauges().map(|(n, v)| format!("{n}={v}")))
                // ctrl.de.epoch_ns is the DE's self-measured wall-clock
                // compute time — the one host-time metric in the registry.
                .filter(|l| !l.starts_with("ctrl.de.epoch_ns"))
                .collect();
            lines.sort();
            (
                got.offloaded,
                got.drift,
                got.p99_ns,
                got.time_to_fallback_ms.to_bits(),
                got.time_to_reoffload_ms.to_bits(),
                lines,
            )
        };
        assert_eq!(run(), run());
    }
}
