//! Table 1 — memcached transaction throughput (§6.1.1).
//!
//! Two memcached server VMs on the test server, five client servers running
//! memslap for the measurement window; traffic routed via the VIF or via
//! the SR-IOV VF. Variant (b) adds a third VM on the test server running
//! the IOzone filesystem benchmark as background load.
//!
//! Paper values — (a): VIF 106,574 tps / 373 µs / 3.3 CPUs vs SR-IOV
//! 215,288 tps / 192 µs / 3.2 CPUs; (b): VIF 96,093 / 414 / 4.1 vs SR-IOV
//! 177,559 / 231 / 4.1.

use fastrak_host::vm::VmSpec;
use fastrak_net::addr::Ip;
use fastrak_net::packet::PathTag;
use fastrak_sim::time::SimTime;
use fastrak_workload::{memcached_server, IoZone, MemslapClient, MemslapConfig, VmRef};

use crate::report::{Artifact, Row};
use crate::scenarios::{rack, TENANT};

/// Measured cell: (aggregate TPS, mean latency µs, test-server CPUs).
pub fn measure(sriov: bool, background: bool, quick: bool) -> (f64, f64, f64) {
    let mut bed = rack(31);
    // Paper §6.1.1: "three VMs pinned to four CPUs" on the test server —
    // guest work and hypervisor packet processing share those cores.
    bed.server_mut(0).set_pinned_cpus(Some(4));
    let mc_ips = [Ip::tenant_vm(1), Ip::tenant_vm(2)];
    let mut vms: Vec<VmRef> = Vec::new();
    for (i, &ip) in mc_ips.iter().enumerate() {
        vms.push(bed.add_vm(
            0,
            VmSpec::large(format!("mc{i}"), TENANT, ip),
            Box::new(memcached_server()),
        ));
    }
    if background {
        bed.add_vm(
            0,
            VmSpec::large("iozone", TENANT, Ip::tenant_vm(3)),
            Box::new(IoZone::paper_default()),
        );
    }
    let mut clients: Vec<VmRef> = Vec::new();
    for c in 0..5u16 {
        let ip = Ip::tenant_vm(10 + c);
        let mut cfg = MemslapConfig::paper(mc_ips.to_vec(), None);
        // "Maximum transaction load" without driving the pinned CPUs to
        // saturation (the paper measures 3.3 of the 4 pinned CPUs busy):
        // the run is latency-bound, like Table 2.
        cfg.conns_per_target = 2;
        cfg.burst = 2;
        cfg.src_port_base = 43_000 + c * 64;
        let v = bed.add_vm(
            (c % 5) as usize + 1,
            VmSpec::large(format!("slap{c}"), TENANT, ip),
            Box::new(MemslapClient::new(cfg)),
        );
        clients.push(v);
        vms.push(v);
    }
    if sriov {
        bed.authorize_hw_tenant(TENANT);
        for &v in &vms {
            bed.force_path(v, PathTag::SrIov);
        }
    }
    bed.start();
    let (warm_ms, window_ms) = if quick { (500, 4_000) } else { (1_000, 10_000) };
    bed.run_until(SimTime::from_millis(warm_ms));
    bed.begin_cpu_windows();
    for &c in &clients {
        let now = bed.now();
        bed.server_mut(c.server)
            .vm_mut(c.vm)
            .app_as_mut::<MemslapClient>()
            .begin_window(now);
    }
    bed.run_until(SimTime::from_millis(warm_ms + window_ms));
    let now = bed.now();
    let mut tps = 0.0;
    let mut lat_weighted = 0.0;
    let mut n = 0.0;
    for &c in &clients {
        let app = bed.app::<MemslapClient>(c);
        let t = app.tps(now);
        tps += t;
        lat_weighted += app.latency.mean() / 1e3 * t;
        n += t;
    }
    let mean_lat = if n > 0.0 { lat_weighted / n } else { 0.0 };
    let cpus = bed.server(0).cpus_used(now);
    (tps, mean_lat, cpus)
}

/// Regenerate Table 1(a) and 1(b).
pub fn run(full: bool) -> Vec<Artifact> {
    let mut a = Artifact::new(
        "table1a",
        "Memcached TPS, no background",
        "the same two memcached servers serve ≈2× the requests at ≈½ the latency over SR-IOV, at comparable CPU",
    );
    let mut b = Artifact::new(
        "table1b",
        "Memcached TPS, with IOzone background",
        "background load does not change the SR-IOV advantage",
    );
    for (art, background, paper) in [
        (
            &mut a,
            false,
            [(106_574.0, 373.0, 3.3), (215_288.0, 192.0, 3.2)],
        ),
        (
            &mut b,
            true,
            [(96_093.0, 414.0, 4.1), (177_559.0, 231.0, 4.1)],
        ),
    ] {
        for (sriov, (p_tps, p_lat, p_cpu)) in [(false, paper[0]), (true, paper[1])] {
            let (tps, lat, cpus) = measure(sriov, background, !full);
            let cfg = if sriov { "SR-IOV VF" } else { "VIF" };
            art.push(Row::new("TPS", cfg, Some(p_tps), tps, "tps"));
            art.push(Row::new("mean latency", cfg, Some(p_lat), lat, "us"));
            art.push(Row::new(
                "# CPUs (test server)",
                cfg,
                Some(p_cpu),
                cpus,
                "logical CPUs",
            ));
        }
        art.note("paper runs memslap for 90 s; this harness uses a shorter stationary window (rates are unaffected)");
    }
    vec![a, b]
}
