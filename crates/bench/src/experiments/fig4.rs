//! Figure 4 — CPU overheads (§3.1.2, §3.2).
//!
//! (a) Baseline CPU test: four VMs on one server, each running a
//! single-threaded `TCP_STREAM` with `TCP_NODELAY` to a sink VM on the
//! other server; the metric is the number of logical CPUs busy on the
//! sending server. Configurations: Baseline OVS, OVS+Tunneling,
//! OVS+Rate limiting (5 Gbps per VM — oversubscribing the 10 G port 1.5×
//! with three limited VMs in the paper; we limit all four), SR-IOV.
//!
//! (b) Combined CPU test: OVS+Tunneling+Rate limiting (1 Gbps) vs SR-IOV
//! with the 1 Gbps limit enforced in hardware; the paper reports the
//! software path at 1.6-3× the SR-IOV CPU.

use fastrak_host::vm::VmSpec;
use fastrak_net::addr::Ip;
use fastrak_net::ctrl::Dir;
use fastrak_net::packet::PathTag;
use fastrak_sim::time::SimTime;
use fastrak_workload::{StreamConfig, StreamSender, StreamSink, Testbed, TestbedConfig};

use crate::report::{Artifact, Row};
use crate::scenarios::{PathSetup, TENANT};

/// CPUs used on the sending server for 4 concurrent 1-thread streams.
pub fn measure_cpu(setup: PathSetup, size: u64, quick: bool) -> (f64, f64) {
    let mut bed = Testbed::build(TestbedConfig {
        n_servers: 2,
        tunneling: setup.tunneling(),
        seed: 23,
        ..TestbedConfig::default()
    });
    let mut vms = Vec::new();
    for i in 0..4u16 {
        let src_ip = Ip::tenant_vm(10 + i);
        let dst_ip = Ip::tenant_vm(20 + i);
        let mut cfg = StreamConfig::netperf(dst_ip, 5001, size);
        cfg.threads = 1;
        cfg.src_port_base = 42_000 + i * 16;
        let v = bed.add_vm(
            0,
            VmSpec::large(format!("src{i}"), TENANT, src_ip),
            Box::new(StreamSender::new(cfg)),
        );
        let s = bed.add_vm(
            1,
            VmSpec::large(format!("dst{i}"), TENANT, dst_ip),
            Box::new(StreamSink::new(5001)),
        );
        vms.push(v);
        vms.push(s);
    }
    match setup {
        PathSetup::OvsRateLimit(bps) | PathSetup::OvsTunnelRateLimit(bps) => {
            for &v in &vms {
                bed.set_vif_rate(v, Dir::Egress, bps);
                bed.set_vif_rate(v, Dir::Ingress, bps);
            }
        }
        PathSetup::SriovHwLimit(bps) => {
            for &v in &vms {
                bed.set_hw_rate(v, Dir::Egress, bps);
                bed.set_hw_rate(v, Dir::Ingress, bps);
            }
        }
        _ => {}
    }
    if setup.is_sriov() {
        bed.authorize_hw_tenant(TENANT);
        for &v in &vms {
            bed.force_path(v, PathTag::SrIov);
        }
    }
    bed.start();
    let (warm, window) = if quick { (200, 400) } else { (300, 1000) };
    bed.run_until(SimTime::from_millis(warm));
    bed.begin_cpu_windows();
    // Aggregate goodput window too.
    for i in 0..4 {
        let now = bed.now();
        let sink = bed.vms()[2 * i + 1];
        bed.server_mut(sink.server)
            .vm_mut(sink.vm)
            .app_as_mut::<StreamSink>()
            .meter
            .begin_window(now);
    }
    bed.run_until(SimTime::from_millis(warm + window));
    let now = bed.now();
    let cpus = bed.server(0).cpus_used(now);
    let vms_list: Vec<_> = bed.vms().to_vec();
    let goodput: f64 = (0..4)
        .map(|i| bed.app::<StreamSink>(vms_list[2 * i + 1]).goodput_bps(now))
        .sum();
    (cpus, goodput)
}

/// Regenerate Fig. 4(a) and 4(b).
pub fn run(full: bool) -> Vec<Artifact> {
    let mut a = Artifact::new(
        "fig4a",
        "Baseline CPU overhead (4 VMs × 1-thread TCP_STREAM)",
        "CPU to sustain a given throughput grows as app data size shrinks; SR-IOV uses 0.4-0.7× the CPU of baseline OVS; rate limiting cannot reach line rate yet burns as much CPU as baseline",
    );
    let sizes = [64u64, 600, 1448, 32_000];
    let mut base_cpu = std::collections::HashMap::new();
    for setup in [
        PathSetup::BaselineOvs,
        PathSetup::OvsTunnel,
        PathSetup::OvsRateLimit(5_000_000_000),
        PathSetup::Sriov,
    ] {
        for &size in &sizes {
            let (cpus, goodput) = measure_cpu(setup, size, !full);
            let cfg = format!("{} @{}B", setup.label(), size);
            a.push(Row::new("cpus", &cfg, None, cpus, "logical CPUs"));
            a.push(Row::new("goodput", &cfg, None, goodput, "bps"));
            if matches!(setup, PathSetup::BaselineOvs) {
                base_cpu.insert(size, cpus);
            }
            if matches!(setup, PathSetup::Sriov) {
                let ratio = cpus / base_cpu[&size];
                a.push(Row::new(
                    "sriov/baseline cpu ratio",
                    format!("@{size}B"),
                    None,
                    ratio,
                    "x (paper: 0.4-0.7)",
                ));
            }
        }
    }

    let mut b = Artifact::new(
        "fig4b",
        "Combined CPU overhead (tunnel+rate limit @1G vs SR-IOV hw-limited)",
        "the combined software path consumes 1.6-3× the CPU of SR-IOV",
    );
    for &size in &sizes {
        let (sw_cpu, sw_good) =
            measure_cpu(PathSetup::OvsTunnelRateLimit(1_000_000_000), size, !full);
        let (hw_cpu, hw_good) = measure_cpu(PathSetup::SriovHwLimit(1_000_000_000), size, !full);
        b.push(Row::new(
            "cpus",
            format!("OVS+Tun+RL @{size}B"),
            None,
            sw_cpu,
            "logical CPUs",
        ));
        b.push(Row::new(
            "cpus",
            format!("SR-IOV(hw RL) @{size}B"),
            None,
            hw_cpu,
            "logical CPUs",
        ));
        b.push(Row::new(
            "goodput sw/hw",
            format!("@{size}B"),
            None,
            sw_good / hw_good.max(1.0),
            "x",
        ));
        b.push(Row::new(
            "sw/hw cpu ratio",
            format!("@{size}B"),
            None,
            sw_cpu / hw_cpu.max(1e-9),
            "x (paper: 1.6-3)",
        ));
    }
    if !full {
        a.note("quick mode: shortened windows");
        b.note("quick mode: shortened windows");
    }
    vec![a, b]
}
