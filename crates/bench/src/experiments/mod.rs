//! One module per regenerated table/figure of the paper's evaluation.
//! See DESIGN.md's experiment index for the mapping.

pub mod ablations;
pub mod chaos_matrix;
pub mod fault_matrix;
pub mod fig12;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod incast_matrix;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod tenant_matrix;

use crate::report::Artifact;

/// Every experiment by id, in paper order.
pub fn all_ids() -> &'static [&'static str] {
    &[
        "fig3",
        "fig4",
        "fig5",
        "table1",
        "table2",
        "table3",
        "table4",
        "fig12",
        "ablations",
        "fault_matrix",
        "tenant_matrix",
        "chaos_matrix",
        "incast_matrix",
    ]
}

/// Run one experiment by id.
pub fn run(id: &str, full: bool) -> Option<Vec<Artifact>> {
    match id {
        "fig3" => Some(fig3::run(full)),
        "fig4" => Some(fig4::run(full)),
        "fig5" => Some(fig5::run(full)),
        "table1" => Some(table1::run(full)),
        "table2" => Some(table2::run(full)),
        "table3" => Some(table3::run(full)),
        "table4" => Some(table4::run(full)),
        "fig12" => Some(fig12::run(full)),
        "ablations" => Some(ablations::run(full)),
        "fault_matrix" => Some(fault_matrix::run(full)),
        "tenant_matrix" => Some(tenant_matrix::run(full)),
        "chaos_matrix" => Some(chaos_matrix::run(full)),
        "incast_matrix" => Some(incast_matrix::run(full)),
        _ => None,
    }
}

/// Run one experiment by id and drop its telemetry artifacts into `dir`
/// (`experiments --telemetry <dir>`). Exports per experiment:
///
/// * `fault_matrix` — `fault_matrix.metrics.jsonl` + `fault_matrix.prom`,
///   the forced-failure run's full registry snapshot;
/// * `tenant_matrix` — `tenant_matrix.metrics.jsonl` + `tenant_matrix.prom`,
///   the unrestricted-policy + churner cell's registry (per-tenant
///   `ctrl.tenant.*` metrics included);
/// * `chaos_matrix` — `chaos_matrix.metrics.jsonl` + `chaos_matrix.prom`,
///   the ToR-reboot scenario's registry (`ctrl.chaos.*` detection and
///   `sim.chaos.*` injection counters included);
/// * `incast_matrix` — `incast_matrix.metrics.jsonl` + `incast_matrix.prom`,
///   the DCTCP + migration + widest-fan-out cell's registry (per-server
///   `tcp.*` transport counters and fabric ECN mark counters included);
/// * `fig12` — `fig12.trace.json`, a Chrome trace-event file of the flow
///   migration (load in Perfetto / `chrome://tracing`);
/// * everything else runs unchanged (telemetry stays zero-config).
pub fn run_with_telemetry(id: &str, full: bool, dir: &std::path::Path) -> Option<Vec<Artifact>> {
    let write = |name: &str, content: String| {
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("  wrote {}", path.display());
    };
    match id {
        "fault_matrix" => {
            let (arts, reg) = fault_matrix::run_with_export(full);
            write(
                "fault_matrix.metrics.jsonl",
                fastrak_telemetry::export::metrics_jsonl(&reg),
            );
            write(
                "fault_matrix.prom",
                fastrak_telemetry::export::prometheus_text(&reg),
            );
            Some(arts)
        }
        "tenant_matrix" => {
            let (arts, reg) = tenant_matrix::run_with_export(full);
            write(
                "tenant_matrix.metrics.jsonl",
                fastrak_telemetry::export::metrics_jsonl(&reg),
            );
            write(
                "tenant_matrix.prom",
                fastrak_telemetry::export::prometheus_text(&reg),
            );
            Some(arts)
        }
        "chaos_matrix" => {
            let (arts, reg) = chaos_matrix::run_with_export(full);
            write(
                "chaos_matrix.metrics.jsonl",
                fastrak_telemetry::export::metrics_jsonl(&reg),
            );
            write(
                "chaos_matrix.prom",
                fastrak_telemetry::export::prometheus_text(&reg),
            );
            Some(arts)
        }
        "incast_matrix" => {
            let (arts, reg) = incast_matrix::run_with_export(full);
            write(
                "incast_matrix.metrics.jsonl",
                fastrak_telemetry::export::metrics_jsonl(&reg),
            );
            write(
                "incast_matrix.prom",
                fastrak_telemetry::export::prometheus_text(&reg),
            );
            Some(arts)
        }
        "fig12" => {
            let (arts, trace) = fig12::run_traced(full);
            write("fig12.trace.json", trace);
            Some(arts)
        }
        _ => run(id, full),
    }
}
