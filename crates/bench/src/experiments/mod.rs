//! One module per regenerated table/figure of the paper's evaluation.
//! See DESIGN.md's experiment index for the mapping.

pub mod ablations;
pub mod fault_matrix;
pub mod fig12;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

use crate::report::Artifact;

/// Every experiment by id, in paper order.
pub fn all_ids() -> &'static [&'static str] {
    &[
        "fig3",
        "fig4",
        "fig5",
        "table1",
        "table2",
        "table3",
        "table4",
        "fig12",
        "ablations",
        "fault_matrix",
    ]
}

/// Run one experiment by id.
pub fn run(id: &str, full: bool) -> Option<Vec<Artifact>> {
    match id {
        "fig3" => Some(fig3::run(full)),
        "fig4" => Some(fig4::run(full)),
        "fig5" => Some(fig5::run(full)),
        "table1" => Some(table1::run(full)),
        "table2" => Some(table2::run(full)),
        "table3" => Some(table3::run(full)),
        "table4" => Some(table4::run(full)),
        "fig12" => Some(fig12::run(full)),
        "ablations" => Some(ablations::run(full)),
        "fault_matrix" => Some(fault_matrix::run(full)),
        _ => None,
    }
}
