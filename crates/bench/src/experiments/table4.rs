//! Table 4 — flow migration with FasTrak (§6.2.1).
//!
//! The Table-3 workload, but instead of statically pinning paths, the
//! FasTrak controllers monitor traffic and decide. Everything starts on the
//! VIF; within one control interval the local controllers report the
//! memcached aggregates at thousands of pps vs the file transfers at ~100
//! pps, the TOR controller offloads memcached (the experiment restricts
//! FasTrak to one application, as the paper does), and finish times roughly
//! halve.
//!
//! Paper: VIF only 110.9 s / 18,044 tps / 440 µs / 7.6 CPUs vs
//! VIF(10 s)+SR-IOV(rest) 57.34 s / 35,340 tps / 226 µs / 6.0 CPUs.

use fastrak::{attach, DeConfig, FasTrakConfig, Timing};

use crate::experiments::table3::{build, measure_with};
use crate::report::{Artifact, Row};

/// Regenerate Table 4.
pub fn run(full: bool) -> Vec<Artifact> {
    let requests = if full { 2_000_000 } else { 150_000 };
    let transfer = if full { 4u64 << 30 } else { 400 << 20 };
    let horizon = if full { 400 } else { 90 };
    let scale = requests as f64 / 2_000_000.0;
    let mut t = Artifact::new(
        "table4",
        "Memcached finish times under FasTrak's automatic flow migration",
        "FasTrak detects memcached's high pps within one control interval and offloads it (never the ~100 pps scp flows); finish time and latency improve ≈2×, CPU drops ≈21%",
    );

    // Row 1: VIF only (no controller, nothing offloaded).
    {
        let (mut bed, _servers, clients) = build(requests, transfer, 43);
        let (fin, tps, lat, cpus) = measure_with(&mut bed, &clients, horizon);
        t.push(Row::new(
            "mean finish",
            "VIF only",
            Some(110.9 * scale),
            fin,
            "s (paper scaled)",
        ));
        t.push(Row::new(
            "mean TPS/client",
            "VIF only",
            Some(18_044.2),
            tps,
            "tps",
        ));
        t.push(Row::new("mean latency", "VIF only", Some(440.2), lat, "us"));
        t.push(Row::new(
            "# CPUs",
            "VIF only",
            Some(7.6),
            cpus,
            "logical CPUs",
        ));
    }

    // Row 2: FasTrak manages the rack. The paper modifies FasTrak to
    // offload only one application; memcached has 4 server VMs × 2
    // directions = 8 aggregates.
    let managed = {
        let (mut bed, _servers, clients) = build(requests, transfer, 43);
        let ft = attach(
            &mut bed,
            FasTrakConfig {
                timing: if full {
                    Timing::coarse()
                } else {
                    Timing::fine()
                },
                de: DeConfig {
                    max_offloaded: Some(8),
                    ..DeConfig::paper()
                },
                ..Default::default()
            },
        );
        ft.start(&mut bed);
        let r = measure_with(&mut bed, &clients, horizon);
        // Sanity: what got offloaded must be the memcached aggregates.
        let offloaded = ft.offloaded(&bed);
        let ports: Vec<u16> = offloaded
            .iter()
            .map(|a| match a {
                fastrak_net::flow::FlowAggregate::SrcApp { port, .. }
                | fastrak_net::flow::FlowAggregate::DstApp { port, .. } => *port,
                fastrak_net::flow::FlowAggregate::Exact(k) => k.dst_port,
            })
            .collect();
        let all_memcached =
            !ports.is_empty() && ports.iter().all(|&p| p == fastrak_workload::MEMCACHED_PORT);
        (r, offloaded.len(), all_memcached)
    };
    let ((fin, tps, lat, cpus), n_offloaded, all_mc) = managed;
    let label = "VIF(start)+SR-IOV(rest)";
    t.push(Row::new(
        "mean finish",
        label,
        Some(57.34 * scale),
        fin,
        "s (paper scaled)",
    ));
    t.push(Row::new(
        "mean TPS/client",
        label,
        Some(35_339.8),
        tps,
        "tps",
    ));
    t.push(Row::new("mean latency", label, Some(225.6), lat, "us"));
    t.push(Row::new("# CPUs", label, Some(6.0), cpus, "logical CPUs"));
    t.push(Row::new(
        "offloaded aggregates",
        "(all memcached?)",
        None,
        n_offloaded as f64,
        if all_mc {
            "aggregates (all :11211)"
        } else {
            "aggregates (UNEXPECTED non-memcached!)"
        },
    ));
    if !full {
        t.note(format!(
            "quick mode: {requests} requests/client; fine timing (T=0.5s) so the offload happens at the same fraction of the run as the paper's 10 s with T=5 s"
        ));
    }
    vec![t]
}
