//! Controller convergence under control-plane faults (DESIGN.md failure
//! semantics) — an extension beyond the paper's published evaluation.
//!
//! The paper's §5.2 controller assumes a reliable OpenFlow channel; this
//! experiment measures what the hardened control plane (xid-tracked install
//! transactions, timeout + bounded-backoff retry, periodic reconciliation)
//! buys when that assumption is violated. Two sweeps:
//!
//! * **Loss matrix**: 1/5/10% seeded control-message loss on every link —
//!   does the controller still converge to the fault-free offloaded set,
//!   and does its bookkeeping (`entries_used`) match the ToR's installed
//!   rule count at the end?
//! * **Forced install failures**: a scripted window in which every ToR
//!   rule install returns an Error — the controller must roll back, back
//!   off, and recover once the window lifts.

use fastrak::{attach, DeConfig, FasTrakConfig, TorController};
use fastrak_host::vm::VmSpec;
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::event::ctl_fault_layer;
use fastrak_sim::fault::{FaultConfig, LinkFaults};
use fastrak_sim::time::SimTime;
use fastrak_workload::{
    memcached_server, FileTransfer, MemslapClient, MemslapConfig, StreamSink, Testbed,
    TestbedConfig,
};

use crate::report::{Artifact, Row};

const T: TenantId = TenantId(1);

/// The §6.2 rack: memcached + scp on server 0, their peers on server 1.
/// High-pps memcached aggregates should offload; the scp flow should not.
fn rack() -> Testbed {
    let mut bed = Testbed::build(TestbedConfig {
        n_servers: 2,
        tunneling: false,
        ..TestbedConfig::default()
    });
    bed.add_vm(
        0,
        VmSpec::large("memcached", T, Ip::tenant_vm(1)),
        Box::new(memcached_server()),
    );
    let mut ft = FileTransfer::paper_default(Ip::tenant_vm(4), 22, 50_000);
    ft.total_bytes = 1 << 30;
    bed.add_vm(
        0,
        VmSpec::large("scp-src", T, Ip::tenant_vm(2)),
        Box::new(ft),
    );
    bed.add_vm(
        1,
        VmSpec::large("memslap", T, Ip::tenant_vm(3)),
        Box::new(MemslapClient::new(MemslapConfig::paper(
            vec![Ip::tenant_vm(1)],
            None,
        ))),
    );
    bed.add_vm(
        1,
        VmSpec::large("scp-sink", T, Ip::tenant_vm(4)),
        Box::new(StreamSink::new(22)),
    );
    bed
}

/// End-of-run observables for one configuration.
struct Outcome {
    /// Sorted debug strings of the offloaded aggregates.
    offloaded: Vec<String>,
    /// `entries_used` minus the ToR's actual installed rule count.
    bookkeeping_drift: i64,
    retries: u64,
    timeouts: u64,
    failures: u64,
    suspensions: u64,
    dropped: u64,
    forced: u64,
    /// Full end-of-run telemetry snapshot (kernel + hosts + ToR +
    /// controller counters), for the `--telemetry` exporters.
    registry: fastrak_telemetry::Registry,
}

fn run_one(faults: Option<FaultConfig>, horizon: SimTime) -> Outcome {
    let mut bed = rack();
    // Cap the offload count so the decision problem is well-separated: the
    // two memcached aggregates dominate the S-score by orders of magnitude.
    // Without the cap, borderline aggregates (the client-side DstApps) come
    // and go with measurement noise, and control loss perturbs measurements
    // — which would make "same offloaded set" test DE tie-breaking rather
    // than the control-plane recovery machinery this experiment targets.
    let ft = attach(
        &mut bed,
        FasTrakConfig {
            de: DeConfig {
                max_offloaded: Some(2),
                ..DeConfig::paper()
            },
            ..Default::default()
        },
    );
    if let Some(cfg) = faults {
        bed.kernel.set_fault_layer(ctl_fault_layer(cfg));
    }
    ft.start(&mut bed);
    bed.start();
    bed.run_until(horizon);

    let mut offloaded: Vec<String> = ft
        .offloaded(&bed)
        .iter()
        .map(|a| format!("{a:?}"))
        .collect();
    offloaded.sort();
    // Snapshot every layer into the telemetry registry; the controller's
    // fault/recovery counters live there (single source of truth), and the
    // same registry feeds the exported artifacts under `--telemetry`.
    bed.publish_telemetry();
    let tc = bed.kernel.node::<TorController>(ft.tor_ctrl);
    let drift = tc.entries_used as i64 - bed.tor().acl_rules() as i64;
    let reg = std::mem::take(&mut bed.kernel.ctx.telemetry.registry);
    let ctr = |name: &str| reg.counter_by_name(name).unwrap_or(0);
    Outcome {
        offloaded,
        bookkeeping_drift: drift,
        retries: ctr("ctrl.install_retries"),
        timeouts: ctr("ctrl.install_timeouts"),
        failures: ctr("ctrl.install_failures"),
        suspensions: ctr("ctrl.hw_suspensions"),
        dropped: ctr("sim.fault.dropped"),
        forced: ctr("sim.fault.forced_install_failures"),
        registry: reg,
    }
}

/// Regenerate the fault-matrix report.
pub fn run(full: bool) -> Vec<Artifact> {
    run_with_export(full).0
}

/// Regenerate the report and also return the forced-failure run's telemetry
/// registry — the richest snapshot (fault-plane, controller, host, and ToR
/// counters all non-trivial), exported under `experiments --telemetry`.
pub fn run_with_export(full: bool) -> (Vec<Artifact>, fastrak_telemetry::Registry) {
    let horizon = if full {
        SimTime::from_millis(8_300)
    } else {
        SimTime::from_millis(6_300)
    };
    let clean = run_one(None, horizon);

    let mut a = Artifact::new(
        "fault-matrix-loss",
        "Controller convergence vs control-message loss",
        "with install retries and reconciliation the controller converges to the fault-free offloaded set and keeps entries_used == installed ToR rules despite seeded control loss",
    );
    a.push(Row::new(
        "offloaded aggregates",
        "loss=0% (baseline)",
        None,
        clean.offloaded.len() as f64,
        "rules",
    ));
    for loss_pct in [1u32, 5, 10] {
        let got = run_one(
            Some(FaultConfig {
                seed: 0xFA57 + loss_pct as u64,
                default_link: LinkFaults::loss(loss_pct as f64 / 100.0),
                ..Default::default()
            }),
            horizon,
        );
        let cfg = format!("loss={loss_pct}%");
        a.push(Row::new(
            "matches fault-free offloaded set",
            cfg.clone(),
            Some(1.0),
            if got.offloaded == clean.offloaded {
                1.0
            } else {
                0.0
            },
            "bool",
        ));
        a.push(Row::new(
            "entries_used - installed ToR rules",
            cfg.clone(),
            Some(0.0),
            got.bookkeeping_drift as f64,
            "rules",
        ));
        a.push(Row::new(
            "install retries",
            cfg.clone(),
            None,
            got.retries as f64,
            "count",
        ));
        a.push(Row::new(
            "install timeouts",
            cfg.clone(),
            None,
            got.timeouts as f64,
            "count",
        ));
        a.push(Row::new(
            "ctl messages dropped",
            cfg,
            None,
            got.dropped as f64,
            "count",
        ));
    }
    a.note("'paper' column is the convergence target (1 = same offloaded set, 0 drift), not a published number — the paper assumes a reliable control channel");

    let mut b = Artifact::new(
        "fault-matrix-forced",
        "Recovery from a scripted rule-install failure window (0.4s-1.7s)",
        "every install inside the window fails; the controller rolls each batch back, suspends the hardware path after repeated failures, and re-converges once the window lifts",
    );
    let got = run_one(
        Some(FaultConfig {
            seed: 0xFA11,
            install_fail_windows: vec![(SimTime::from_millis(400), SimTime::from_millis(1_700))],
            ..Default::default()
        }),
        horizon,
    );
    b.push(Row::new(
        "matches fault-free offloaded set",
        "fail window 0.4s-1.7s",
        Some(1.0),
        if got.offloaded == clean.offloaded {
            1.0
        } else {
            0.0
        },
        "bool",
    ));
    b.push(Row::new(
        "entries_used - installed ToR rules",
        "fail window 0.4s-1.7s",
        Some(0.0),
        got.bookkeeping_drift as f64,
        "rules",
    ));
    b.push(Row::new(
        "forced install failures",
        "fail window 0.4s-1.7s",
        None,
        got.forced as f64,
        "count",
    ));
    b.push(Row::new(
        "install errors observed",
        "fail window 0.4s-1.7s",
        None,
        got.failures as f64,
        "count",
    ));
    b.push(Row::new(
        "hardware-path suspensions",
        "fail window 0.4s-1.7s",
        None,
        got.suspensions as f64,
        "count",
    ));
    (vec![a, b], got.registry)
}
