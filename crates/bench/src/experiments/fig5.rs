//! Figure 5 — Combined network performance (§3.2.3).
//!
//! The full software stack (OVS + VXLAN tunneling + 1 Gbps rate limit)
//! against SR-IOV with the same 1 Gbps limit enforced in hardware, across
//! the four application data sizes. The paper reports pipelined latency at
//! 1.8-2.1× SR-IOV, consistently better SR-IOV throughput, and combined
//! performance close to OVS+Tunneling alone.

use crate::experiments::fig3::{measure_cell, SIZES};
use crate::report::{Artifact, Row};
use crate::scenarios::PathSetup;

/// Regenerate Fig. 5(a-e).
pub fn run(full: bool) -> Vec<Artifact> {
    let mut a = Artifact::new("fig5a", "Combined throughput @1G limit",
        "SR-IOV delivers consistently better throughput; software combination stays below the limit at small sizes (CPU-bound)");
    let mut b = Artifact::new(
        "fig5b",
        "Combined closed-loop average latency",
        "software combination tracks OVS+Tunneling; SR-IOV clearly lower",
    );
    let mut c = Artifact::new(
        "fig5c",
        "Combined closed-loop 99th-percentile latency",
        "software tail markedly heavier than SR-IOV",
    );
    let mut d = Artifact::new(
        "fig5d",
        "Combined burst TPS",
        "SR-IOV sustains roughly twice the transactions of the combined software path",
    );
    let mut e = Artifact::new(
        "fig5e",
        "Combined burst latency",
        "combined software pipelined latency is 1.8-2.1× SR-IOV",
    );

    let limit = 1_000_000_000u64;
    for &size in &SIZES {
        let sw = measure_cell(PathSetup::OvsTunnelRateLimit(limit), size, !full);
        let hw = measure_cell(PathSetup::SriovHwLimit(limit), size, !full);
        for (setup, cell) in [("OVS+Tun+RL", sw), ("SR-IOV (hw RL)", hw)] {
            let cfg = format!("{setup} @{size}B");
            a.push(Row::new(
                "throughput",
                &cfg,
                None,
                cell.throughput_bps,
                "bps",
            ));
            b.push(Row::new("rr avg", &cfg, None, cell.rr_mean_us, "us"));
            c.push(Row::new("rr p99", &cfg, None, cell.rr_p99_us, "us"));
            d.push(Row::new("burst tps", &cfg, None, cell.burst_tps, "tps"));
            e.push(Row::new("burst avg", &cfg, None, cell.burst_mean_us, "us"));
        }
        e.push(Row::new(
            "sw/hw burst latency ratio",
            format!("@{size}B"),
            None,
            sw.burst_mean_us / hw.burst_mean_us.max(1e-9),
            "x (paper: 1.8-2.1)",
        ));
    }
    let note = "paper runs this comparison below 1.44 Gbps due to the tunneling implementation; both sides limited to 1 Gbps as in §3.2.3";
    for art in [&mut a, &mut b, &mut c, &mut d, &mut e] {
        art.note(note);
        if !full {
            art.note("quick mode: shortened windows");
        }
    }
    vec![a, b, c, d, e]
}
