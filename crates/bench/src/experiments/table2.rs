//! Table 2 — memcached finish times as servers shift to SR-IOV (§6.1.2).
//!
//! Four memcached VMs on the test server (two EC2-large-, two EC2-medium-
//! equivalents); five client servers each issue a fixed number of requests
//! to **all four** servers. Between runs, {0,1,2,3,4} of the memcached
//! servers are moved onto the SR-IOV VF, i.e. the percentage of traffic
//! through the VIF drops 100% → 0%.
//!
//! Paper rows (2 M requests/client): 100% VIF 86.6 s / 23,089 tps / 331 µs
//! / 3.5 CPUs · 75% 82.2 / 24,333 / 306 / 3.2 · 50% 82.3 / 24,335 / 297 /
//! 3.2 · 25% 82.1 / 23,976 / 275 / 2.9 · 0% 54.9 / 37,456 / 190 / 2.2. The
//! headline: finish time only improves once **all** servers are fast —
//! partition-aggregate completion is dominated by the slowest member.

use fastrak_host::vm::VmSpec;
use fastrak_net::addr::Ip;
use fastrak_net::flow::FlowSpec;
use fastrak_net::packet::PathTag;
use fastrak_sim::time::SimTime;
use fastrak_workload::{memcached_server, MemslapClient, MemslapConfig, Testbed, VmRef};

use crate::report::{Artifact, Row};
use crate::scenarios::{rack, TENANT};

/// The four memcached server IPs.
pub fn mc_ips() -> [Ip; 4] {
    [1, 2, 3, 4].map(Ip::tenant_vm)
}

/// Build the Table-2 rack. Returns (bed, memcached vms, client vms).
pub fn build(requests_per_client: u64, seed: u64) -> (Testbed, Vec<VmRef>, Vec<VmRef>) {
    let mut bed = rack(seed);
    let mut servers = Vec::new();
    for (i, ip) in mc_ips().into_iter().enumerate() {
        let spec = if i < 2 {
            VmSpec::large(format!("mc{i}"), TENANT, ip)
        } else {
            VmSpec::medium(format!("mc{i}"), TENANT, ip)
        };
        servers.push(bed.add_vm(0, spec, Box::new(memcached_server())));
    }
    let mut clients = Vec::new();
    for c in 0..5u16 {
        let ip = Ip::tenant_vm(10 + c);
        let mut cfg = MemslapConfig::paper(mc_ips().to_vec(), Some(requests_per_client));
        cfg.src_port_base = 43_000 + c * 64;
        clients.push(bed.add_vm(
            (c % 5) as usize + 1,
            VmSpec::large(format!("slap{c}"), TENANT, ip),
            Box::new(MemslapClient::new(cfg)),
        ));
    }
    (bed, servers, clients)
}

/// Shift the first `n_fast` memcached servers onto the SR-IOV path:
/// their egress via their placer, and requests *to* them via a dst-ip rule
/// on every client VM.
pub fn offload_servers(bed: &mut Testbed, servers: &[VmRef], clients: &[VmRef], n_fast: usize) {
    if n_fast == 0 {
        return;
    }
    bed.authorize_hw_tenant(TENANT);
    for &s in &servers[..n_fast] {
        // Server egress (responses).
        let spec = FlowSpec {
            tenant: Some(TENANT),
            src_ip: Some(s.ip),
            ..FlowSpec::ANY
        };
        let srv = bed.server_mut(s.server);
        srv.vm_mut(s.vm)
            .placer
            .install_rule(spec, 10, PathTag::SrIov);
        // Client egress toward this server (requests + acks).
        let spec = FlowSpec {
            tenant: Some(TENANT),
            dst_ip: Some(s.ip),
            ..FlowSpec::ANY
        };
        for &c in clients {
            let srv = bed.server_mut(c.server);
            srv.vm_mut(c.vm)
                .placer
                .install_rule(spec, 10, PathTag::SrIov);
        }
    }
}

/// Run one row: returns (mean finish s, mean TPS, mean latency µs, CPUs).
pub fn measure(n_fast: usize, requests_per_client: u64, horizon_s: u64) -> (f64, f64, f64, f64) {
    let (mut bed, servers, clients) = build(requests_per_client, 37);
    offload_servers(&mut bed, &servers, &clients, n_fast);
    bed.begin_cpu_windows();
    bed.start();

    // Run until every client finished (or the horizon).
    let horizon = SimTime::from_secs(horizon_s);
    let step = fastrak_sim::time::SimDuration::from_millis(500);
    loop {
        let now = bed.now();
        if now >= horizon {
            break;
        }
        bed.run_until(now + step);
        let all_done = clients
            .iter()
            .all(|&c| bed.app::<MemslapClient>(c).finished_at.is_some());
        if all_done {
            break;
        }
    }
    let now = bed.now();
    let mut finish = 0.0;
    let mut tps = 0.0;
    let mut lat = 0.0;
    for &c in &clients {
        let app = bed.app::<MemslapClient>(c);
        let ft = app
            .finish_time()
            .unwrap_or_else(|| now.since(app.started_at().unwrap_or(SimTime::ZERO)));
        finish += ft.as_secs_f64();
        tps += app.completed() as f64 / ft.as_secs_f64().max(1e-9);
        lat += app.latency.mean() / 1e3;
    }
    let n = clients.len() as f64;
    // CPU usage on the test server over the run (the run ends right after
    // the last client finishes, so this matches the paper's "for test").
    let cpus = bed.server(0).cpus_used(now);
    (finish / n, tps / n, lat / n, cpus)
}

/// Regenerate Table 2.
pub fn run(full: bool) -> Vec<Artifact> {
    let requests = if full { 2_000_000 } else { 150_000 };
    let horizon = if full { 300 } else { 60 };
    let scale = requests as f64 / 2_000_000.0;
    let mut t = Artifact::new(
        "table2",
        "Memcached finish times as servers shift to SR-IOV",
        "finish time barely moves at 75/50/25% VIF (slowest member dominates) and drops ~37% at 0% VIF; latency falls monotonically; TPS jumps ~1.6× at 0%",
    );
    let paper = [
        (100, 86.6, 23_089.0, 331.0, 3.5),
        (75, 82.2, 24_333.0, 306.0, 3.2),
        (50, 82.3, 24_335.0, 297.0, 3.2),
        (25, 82.1, 23_976.0, 275.0, 2.9),
        (0, 54.9, 37_456.0, 190.0, 2.2),
    ];
    for (i, (pct_vif, p_fin, p_tps, p_lat, p_cpu)) in paper.into_iter().enumerate() {
        let (fin, tps, lat, cpus) = measure(i, requests, horizon);
        let cfg = format!("{pct_vif}% via VIF");
        t.push(Row::new(
            "mean finish",
            &cfg,
            Some(p_fin * scale),
            fin,
            "s (paper scaled)",
        ));
        t.push(Row::new("mean TPS/client", &cfg, Some(p_tps), tps, "tps"));
        t.push(Row::new("mean latency", &cfg, Some(p_lat), lat, "us"));
        t.push(Row::new("# CPUs", &cfg, Some(p_cpu), cpus, "logical CPUs"));
    }
    if !full {
        t.note(format!(
            "quick mode: {requests} requests/client instead of 2M; finish-time paper values scaled by {scale:.3} (rates are stationary, ratios preserved)"
        ));
    }
    vec![t]
}
