//! Noisy-neighbor fairness matrix — policy × churner grid (extension
//! beyond the paper's published evaluation; DESIGN.md tenant model).
//!
//! Three victim tenants run steady memcached fleets (Zipf-skewed demand)
//! while an adversarial fourth tenant — the churner — spreads traffic over
//! many destination-port aggregates and rotates which are hot every phase,
//! dragging a fresh set over the offload threshold each rotation. The ToR
//! fast-path budget is deliberately small, so under the paper's
//! unrestricted score-order policy the churner's latest hot set evicts the
//! victims' rules round after round. The grid reruns the identical rack
//! under each [`fastrak::FastPathPolicy`], with and without the churner,
//! and reports per-victim tail latency plus offload stability:
//!
//! * victim p99 latency — the victims' memslap tails, worst tenant;
//! * victim demotes — how often a victim's installed rule was evicted
//!   (offloaded-set transitions from `ctrl.tenant.demotes`);
//! * end-of-run fast-path occupancy per tenant.
//!
//! Everything runs on the deterministic testbed: same seed → bit-identical
//! artifacts (pinned by this module's replay test).

use fastrak::{attach, DeConfig, FasTrakConfig, FastPathPolicy, Timing};
use fastrak_net::addr::{Ip, TenantId};
use fastrak_sim::time::{SimDuration, SimTime};
use fastrak_workload::{
    add_churner, ChurnerConfig, MemslapClient, TenantFleet, TenantFleetConfig, Testbed,
    TestbedConfig,
};
use std::collections::HashMap;

use crate::report::{Artifact, Row};

/// The adversary's tenant id (victims are 1..=N_VICTIMS).
const CHURN_TENANT: TenantId = TenantId(4);
const N_VICTIMS: u32 = 3;
/// Fast-path budget: small enough that the churner's hot set and the
/// victims' aggregates cannot all fit — contention is the experiment.
const BUDGET: usize = 8;

/// One grid cell's observables.
struct Outcome {
    /// Worst victim p99 transaction latency (ns).
    victim_p99_ns: u64,
    /// Worst victim p50 (ns) — the body, for contrast with the tail.
    victim_p50_ns: u64,
    /// Victim-rule evictions: Σ `ctrl.tenant.demotes` over tenants 1..=3.
    victim_demotes: u64,
    /// Victim offload transitions (re-installs after eviction).
    victim_offloads: u64,
    /// End-of-run fast-path entries held by the victims / the churner.
    victim_entries: f64,
    churner_entries: f64,
    /// Full end-of-run registry (per-tenant `ctrl.tenant.*` included).
    registry: fastrak_telemetry::Registry,
}

fn policy_grid() -> Vec<(&'static str, FastPathPolicy)> {
    vec![
        ("unrestricted", FastPathPolicy::Unrestricted),
        (
            "static-quota",
            FastPathPolicy::StaticQuota {
                // 4 tenants × 2 = the whole budget: hard isolation.
                default_cap: 2,
                caps: HashMap::new(),
            },
        ),
        (
            "weighted-score",
            FastPathPolicy::WeightedScore {
                // The operator de-prioritizes the known-noisy tenant; the
                // victims keep default weight 1.0. The weight must absorb
                // the churner's score inflation: once a hot aggregate is
                // offloaded its pps (and so its DE score mass) rises ~10x,
                // so a mild down-weight would still concede most of the
                // budget. Work-conserving: with the churner absent (or
                // capped below its demand) the slack water-fills to the
                // victims.
                weights: HashMap::from([(CHURN_TENANT, 0.05)]),
            },
        ),
    ]
}

fn run_one(policy: FastPathPolicy, churner: bool, horizon: SimTime) -> Outcome {
    let mut bed = Testbed::build(TestbedConfig {
        n_servers: 3,
        tunneling: false,
        ..TestbedConfig::default()
    });
    let fleet = TenantFleet::build(
        &mut bed,
        &TenantFleetConfig {
            n_tenants: N_VICTIMS,
            clients_per_tenant: 1,
            zipf_s: 0.5,
            peak_burst: 2,
            ..Default::default()
        },
    );
    if churner {
        // The attack shape: each hot aggregate fans out over many flows
        // (`conns_per_port`) because the DE score is n_active × m_pps and
        // the software path caps the client VM's pps on its vhost thread —
        // flow-count inflation is how a sw-capped adversary out-scores the
        // victims by more than the DE hysteresis (1.2×). The phase must
        // outlast the ME's median window (history × epoch) — shorter
        // rotations are filtered out by the median and never rank.
        let cfg = ChurnerConfig {
            n_ports: 12,
            hot_ports: 2,
            phase: SimDuration::from_millis(1_500),
            burst: 8,
            conns_per_port: 8,
            ..ChurnerConfig::aggressive(Ip::tenant_vm(90))
        };
        add_churner(&mut bed, CHURN_TENANT, 2, 0, cfg);
    }
    let ft = attach(
        &mut bed,
        FasTrakConfig {
            budget: BUDGET,
            // Faster-than-`fine` timing (250 ms epochs, 2-interval history)
            // so the grid resolves several churn rotations per run; with the
            // paper's 6-epoch median the same dynamics just take longer.
            timing: Timing {
                sample_gap: SimDuration::from_millis(50),
                epoch: SimDuration::from_millis(250),
                epochs_per_interval: 2,
                history_intervals: 2,
            },
            de: DeConfig {
                policy,
                ..DeConfig::paper()
            },
            ..Default::default()
        },
    );
    ft.start(&mut bed);
    bed.start();
    // Warmup: let the controller converge on the steady victims first, so
    // the measured window starts from an offloaded baseline.
    bed.run_until(SimTime::from_millis(2_000));
    fleet.begin_windows(&mut bed);
    bed.run_until(horizon);

    bed.publish_telemetry();
    ft.publish_telemetry(&mut bed);
    let mut reg = std::mem::take(&mut bed.kernel.ctx.telemetry.registry);

    // Per-tenant latency gauges from the victims' memslap histograms —
    // exported with the rest of the registry under `--telemetry`.
    let mut victim_p99 = 0u64;
    let mut victim_p50 = 0u64;
    for t in &fleet.tenants {
        let mut p50 = 0u64;
        let mut p99 = 0u64;
        for &c in &t.clients {
            let h = &bed.app::<MemslapClient>(c).latency;
            p50 = p50.max(h.quantile(0.5));
            p99 = p99.max(h.quantile(0.99));
        }
        let label = t.tenant.0.to_string();
        let g = reg.gauge("ctrl.tenant.p50_ns", &[("tenant", &label)]);
        reg.gauge_set(g, p50 as f64);
        let g = reg.gauge("ctrl.tenant.p99_ns", &[("tenant", &label)]);
        reg.gauge_set(g, p99 as f64);
        victim_p50 = victim_p50.max(p50);
        victim_p99 = victim_p99.max(p99);
    }

    let mut victim_demotes = 0;
    let mut victim_offloads = 0;
    let mut victim_entries = 0.0;
    for t in 1..=N_VICTIMS {
        victim_demotes += reg
            .counter_by_name(&format!("ctrl.tenant.demotes{{tenant={t}}}"))
            .unwrap_or(0);
        victim_offloads += reg
            .counter_by_name(&format!("ctrl.tenant.offloads{{tenant={t}}}"))
            .unwrap_or(0);
        victim_entries += reg
            .gauge_by_name(&format!("ctrl.tenant.offloaded_entries{{tenant={t}}}"))
            .unwrap_or(0.0);
    }
    let churner_entries = reg
        .gauge_by_name(&format!(
            "ctrl.tenant.offloaded_entries{{tenant={}}}",
            CHURN_TENANT.0
        ))
        .unwrap_or(0.0);
    Outcome {
        victim_p99_ns: victim_p99,
        victim_p50_ns: victim_p50,
        victim_demotes,
        victim_offloads,
        victim_entries,
        churner_entries,
        registry: reg,
    }
}

/// Regenerate the tenant-matrix report.
pub fn run(full: bool) -> Vec<Artifact> {
    run_with_export(full).0
}

/// Regenerate the report and also return the most adversarial cell's
/// registry (unrestricted policy + churner — the baseline the fairness
/// policies are judged against), exported under `experiments --telemetry`.
pub fn run_with_export(full: bool) -> (Vec<Artifact>, fastrak_telemetry::Registry) {
    let horizon = if full {
        SimTime::from_millis(9_500)
    } else {
        SimTime::from_millis(6_500)
    };
    let mut a = Artifact::new(
        "tenant-matrix",
        "Noisy-neighbor fairness: policy x churner grid",
        "an adversarial tenant that rotates hot aggregates monopolizes and thrashes the bounded fast path under the paper's unrestricted policy; per-tenant quota and weighted-share policies keep the victims' rules installed (fewer victim demotes, stable occupancy) and their tail latency flat",
    );
    let mut export: Option<fastrak_telemetry::Registry> = None;
    for (name, policy) in policy_grid() {
        for churner in [false, true] {
            let got = run_one(policy.clone(), churner, horizon);
            let cfg = format!("{name}, churner={}", if churner { "on" } else { "off" });
            a.push(Row::new(
                "worst victim p99 latency",
                cfg.clone(),
                None,
                got.victim_p99_ns as f64 / 1_000.0,
                "us",
            ));
            a.push(Row::new(
                "worst victim p50 latency",
                cfg.clone(),
                None,
                got.victim_p50_ns as f64 / 1_000.0,
                "us",
            ));
            a.push(Row::new(
                "victim rule demotions",
                cfg.clone(),
                None,
                got.victim_demotes as f64,
                "count",
            ));
            a.push(Row::new(
                "victim offload transitions",
                cfg.clone(),
                None,
                got.victim_offloads as f64,
                "count",
            ));
            a.push(Row::new(
                "victim fast-path entries (end)",
                cfg.clone(),
                None,
                got.victim_entries,
                "rules",
            ));
            a.push(Row::new(
                "churner fast-path entries (end)",
                cfg,
                None,
                got.churner_entries,
                "rules",
            ));
            if name == "unrestricted" && churner {
                export = Some(got.registry);
            }
        }
    }
    a.note("no 'paper' column: the paper evaluates cooperative tenants only (unrestricted, churner=off is its behaviour); the grid extends it with the adversarial profile and the fairness policies");
    a.note(format!(
        "budget={BUDGET} fast-path entries, {N_VICTIMS} victim tenants (Zipf-skewed memcached) + 1 churner tenant rotating hot dst-port aggregates"
    ));
    (
        vec![a],
        export.expect("grid always runs the adversarial cell"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_HORIZON: SimTime = SimTime::from_millis(6_500);

    /// The acceptance criterion: with the churner on, both fairness
    /// policies must beat unrestricted on victim tail latency AND on
    /// offload stability (victim rule evictions). Release-only (`--ignored`,
    /// run by CI): each cell simulates 6.5 s of rack time, which is far too
    /// slow in a debug build.
    #[test]
    #[ignore = "slow: run with cargo test --release -p fastrak-bench -- --ignored"]
    fn fairness_policies_isolate_victims_from_the_churner() {
        let base = run_one(FastPathPolicy::Unrestricted, true, TEST_HORIZON);
        for (name, policy) in policy_grid().into_iter().skip(1) {
            let got = run_one(policy, true, TEST_HORIZON);
            assert!(
                got.victim_p99_ns < base.victim_p99_ns,
                "{name}: victim p99 {} must beat unrestricted {}",
                got.victim_p99_ns,
                base.victim_p99_ns
            );
            assert!(
                got.victim_demotes < base.victim_demotes,
                "{name}: victim demotes {} must beat unrestricted {}",
                got.victim_demotes,
                base.victim_demotes
            );
        }
    }

    /// Same seed → bit-identical artifacts (and registry export).
    #[test]
    #[ignore = "slow: run with cargo test --release -p fastrak-bench -- --ignored"]
    fn adversarial_cell_replays_bit_identically() {
        let run = || {
            let got = run_one(FastPathPolicy::Unrestricted, true, TEST_HORIZON);
            let mut lines: Vec<String> = got
                .registry
                .counters()
                .map(|(n, v)| format!("{n}={v}"))
                .chain(got.registry.gauges().map(|(n, v)| format!("{n}={v}")))
                // ctrl.de.epoch_ns is the DE's self-measured wall-clock
                // compute time — the one host-time metric in the registry.
                .filter(|l| !l.starts_with("ctrl.de.epoch_ns"))
                .collect();
            lines.sort();
            (
                got.victim_p99_ns,
                got.victim_demotes,
                got.victim_entries as u64,
                lines,
            )
        };
        assert_eq!(run(), run());
    }
}
