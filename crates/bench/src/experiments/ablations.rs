//! Ablations of FasTrak's design choices (DESIGN.md §6) — extensions beyond
//! the paper's published evaluation:
//!
//! * **Scoring function**: the paper's `S = n × m_pps` (MFU × median-pps)
//!   vs instantaneous-pps-only vs frequency-only, measured as the fraction
//!   of data-plane traffic the hardware path carries (fast-path hit rate).
//! * **Fast-path capacity sweep**: offload benefit vs TCAM entries — the
//!   "gap is inherent" argument of §1.
//! * **Control interval sensitivity**: T = 0.5 s vs 5 s — how quickly the
//!   benefit arrives (the paper uses both settings, §5.2).

use fastrak::{attach, DeConfig, FasTrakConfig, Timing};
use fastrak_host::vm::VmSpec;
use fastrak_net::addr::{Ip, TenantId};
use fastrak_sim::time::SimTime;
use fastrak_workload::{
    memcached_server, MemslapClient, MemslapConfig, Testbed, TestbedConfig, VmRef,
};

use crate::report::{Artifact, Row};

const T: TenantId = TenantId(1);

/// Build a rack with `n_services` memcached services of varying popularity
/// (service i gets ~1/(i+1) of the client connections — a Zipf-ish skew so
/// MFU selection matters).
fn skewed_rack(n_services: u16) -> (Testbed, Vec<VmRef>, Vec<VmRef>) {
    let mut cfg = TestbedConfig {
        n_servers: 3,
        ..TestbedConfig::default()
    };
    // 8 VMs per server needs more VFs than the testbed's 4 (the SR-IOV
    // architecture allows 64 per port, §2.2).
    cfg.server_template.max_vfs = 16;
    let mut bed = Testbed::build(cfg);
    let mut servers = Vec::new();
    for i in 0..n_services {
        servers.push(bed.add_vm(
            0,
            VmSpec::medium(format!("mc{i}"), T, Ip::tenant_vm(1 + i)),
            Box::new(memcached_server()),
        ));
    }
    let mut clients = Vec::new();
    for c in 0..2u16 {
        // Each client queries a popularity-skewed prefix of the services.
        let n_targets = (n_services / (c + 1)).max(1);
        let targets: Vec<Ip> = (0..n_targets).map(|i| Ip::tenant_vm(1 + i)).collect();
        let mut cfg = MemslapConfig::paper(targets, None);
        cfg.src_port_base = 43_000 + c * 128;
        clients.push(bed.add_vm(
            1 + (c as usize % 2),
            VmSpec::large(format!("slap{c}"), T, Ip::tenant_vm(100 + c)),
            Box::new(MemslapClient::new(cfg)),
        ));
    }
    (bed, servers, clients)
}

/// Fraction of the test server's egress frames that took the hardware path.
fn hw_fraction(bed: &Testbed) -> f64 {
    let s = bed.server(0);
    let hw = s.stats.tx_hw_frames as f64;
    let sw = s.stats.tx_sw_frames as f64;
    if hw + sw == 0.0 {
        0.0
    } else {
        hw / (hw + sw)
    }
}

/// Run one configuration and report (hw traffic fraction, client tps).
fn run_cfg(de: DeConfig, timing: Timing, budget: usize, horizon_s: u64) -> (f64, f64) {
    let (mut bed, _servers, clients) = skewed_rack(8);
    let ft = attach(
        &mut bed,
        FasTrakConfig {
            timing,
            de,
            budget,
            ..Default::default()
        },
    );
    ft.start(&mut bed);
    bed.start();
    bed.run_until(SimTime::from_secs(horizon_s));
    let now = bed.now();
    let tps: f64 = clients
        .iter()
        .map(|&c| bed.app::<MemslapClient>(c).completed() as f64 / now.as_secs_f64())
        .sum();
    (hw_fraction(&bed), tps)
}

/// Regenerate the ablation report.
pub fn run(_full: bool) -> Vec<Artifact> {
    let mut a = Artifact::new(
        "ablation-scoring",
        "Scoring-function ablation (8 skewed services, budget = 6 rules)",
        "the paper's MFU×median-pps score should capture at least as much traffic as pps-only or frequency-only scoring",
    );
    // Paper score: S = n × m_pps (the DecisionEngine's native function).
    let paper_cfg = DeConfig::paper();
    let (frac, tps) = run_cfg(paper_cfg, Timing::fine(), 6, 6);
    a.push(Row::new(
        "hw traffic fraction",
        "S = n × m_pps (paper)",
        None,
        frac,
        "fraction",
    ));
    a.push(Row::new(
        "aggregate TPS",
        "S = n × m_pps (paper)",
        None,
        tps,
        "tps",
    ));
    // pps-only: ignore the frequency term by zeroing history influence —
    // approximated with hysteresis off and a one-epoch memory via fine
    // timing and min_median 0 (the m_pps median over a short history is
    // close to instantaneous pps).
    let mut pps_only = DeConfig::paper();
    pps_only.hysteresis = 1.0;
    let (frac2, tps2) = run_cfg(pps_only, Timing::fine(), 6, 6);
    a.push(Row::new(
        "hw traffic fraction",
        "pps-only (no hysteresis)",
        None,
        frac2,
        "fraction",
    ));
    a.push(Row::new(
        "aggregate TPS",
        "pps-only (no hysteresis)",
        None,
        tps2,
        "tps",
    ));
    a.note("ablation beyond the paper; both selectors converge on the hot services in steady state — the hysteresis/median terms matter under churn");

    let mut b = Artifact::new(
        "ablation-capacity",
        "Fast-path capacity sweep (8 skewed services)",
        "hardware-carried traffic grows with fast-path entries and saturates once the hot aggregates fit (§1: the hardware/server rule gap is inherent, so selection quality is what matters)",
    );
    for budget in [1usize, 2, 4, 8, 16, 32] {
        let (frac, tps) = run_cfg(DeConfig::paper(), Timing::fine(), budget, 6);
        b.push(Row::new(
            "hw traffic fraction",
            format!("{budget} entries"),
            None,
            frac,
            "fraction",
        ));
        b.push(Row::new(
            "aggregate TPS",
            format!("{budget} entries"),
            None,
            tps,
            "tps",
        ));
    }

    let mut c = Artifact::new(
        "ablation-interval",
        "Control-interval sensitivity",
        "finer control intervals react faster (the paper runs T = 5 s and T = 0.5 s, §5.2); steady-state selection is the same",
    );
    for (label, timing) in [
        ("T=0.5s (fine)", Timing::fine()),
        ("T=5s (coarse)", Timing::coarse()),
    ] {
        let (frac, tps) = run_cfg(DeConfig::paper(), timing, 8, 12);
        c.push(Row::new(
            "hw traffic fraction @12s",
            label,
            None,
            frac,
            "fraction",
        ));
        c.push(Row::new("aggregate TPS", label, None, tps, "tps"));
    }
    vec![a, b, c]
}
