//! # fastrak-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation, each regenerating the corresponding rows on the simulated
//! testbed, printed side by side with the paper's published values.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p fastrak-bench --bin experiments -- all
//! ```
//!
//! or a single artifact, e.g. `-- fig3` or `-- table4 --full` (the `--full`
//! flag uses the paper's full request counts / durations; the default is a
//! time-scaled run that preserves every reported *ratio* — rates are
//! stationary, so finish times simply scale with the request count).
//!
//! The `report` module defines the comparison-row machinery; `scenarios`
//! builds the shared testbed configurations (§3.1's microbenchmark pair and
//! §6's memcached rack).

pub mod experiments;
pub mod harness;
pub mod json;
pub mod report;
pub mod scenarios;

pub use report::{Artifact, Row};
pub use scenarios::{MicroBed, PathSetup};
