//! Self-contained micro-benchmark harness (criterion replacement).
//!
//! The bench binaries (`datapath`, `tables`, `controller`) need wall-clock
//! numbers with enough stability to detect order-of-magnitude hot-path
//! regressions — not criterion's full statistical machinery. Each benchmark
//! is auto-calibrated (warmup until the per-iteration cost is known), then
//! sampled several times; the reported figure is the median sample's
//! ns/iteration, which is robust to one-off scheduler hiccups.
//!
//! Output: an aligned text table on stdout, plus a JSON line per benchmark
//! to the file named by `FASTRAK_BENCH_JSON` (append mode) so runs can be
//! collected into `BENCH_baseline.json`.

use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::Instant;

/// Opaque value barrier — prevents the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (unique within the suite).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per sample used for the measurement.
    pub iters_per_sample: u64,
}

/// A benchmark suite: create, `bench(...)` each case, then `finish()`.
pub struct Suite {
    name: String,
    results: Vec<BenchResult>,
    /// Target wall time per sample.
    sample_target_ns: u64,
    /// Samples per benchmark (median reported).
    samples: usize,
}

impl Suite {
    /// New suite with defaults: ~80 ms per sample, 5 samples.
    pub fn new(name: impl Into<String>) -> Suite {
        Suite {
            name: name.into(),
            results: Vec::new(),
            sample_target_ns: 80_000_000,
            samples: 5,
        }
    }

    /// Quick mode (used by `--quick` / smoke tests): ~10 ms per sample,
    /// 3 samples.
    pub fn quick(mut self) -> Suite {
        self.sample_target_ns = 10_000_000;
        self.samples = 3;
        self
    }

    /// Measure `f`, which performs ONE iteration of the benched operation.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        // Calibrate: run until 5 ms has passed to estimate per-iter cost
        // (also serves as warmup for caches/branch predictors).
        let cal_start = Instant::now();
        let mut cal_iters: u64 = 0;
        while cal_start.elapsed().as_nanos() < 5_000_000 {
            f();
            cal_iters += 1;
        }
        let est_ns = (cal_start.elapsed().as_nanos() as f64 / cal_iters as f64).max(0.5);
        let iters = ((self.sample_target_ns as f64 / est_ns) as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        eprintln!(
            "{}/{name}: {} ns/iter ({iters} iters/sample)",
            self.name,
            fmt_ns(median)
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            ns_per_iter: median,
            iters_per_sample: iters,
        });
    }

    /// Print the summary table and write JSON lines when
    /// `FASTRAK_BENCH_JSON` is set. Returns the results for callers that
    /// want them.
    pub fn finish(self) -> Vec<BenchResult> {
        println!("\n== {} ==", self.name);
        let w = self
            .results
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        println!("{:w$}  {:>14}", "name", "ns/iter");
        for r in &self.results {
            println!("{:w$}  {:>14}", r.name, fmt_ns(r.ns_per_iter));
        }
        if let Ok(path) = std::env::var("FASTRAK_BENCH_JSON") {
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .expect("open FASTRAK_BENCH_JSON file");
            for r in &self.results {
                let line = crate::json::object([
                    ("suite", crate::json::quote(&self.name)),
                    ("bench", crate::json::quote(&r.name)),
                    ("ns_per_iter", crate::json::num(r.ns_per_iter)),
                    (
                        "iters_per_sample",
                        crate::json::num(r.iters_per_sample as f64),
                    ),
                ]);
                writeln!(f, "{line}").expect("write bench json line");
            }
        }
        self.results
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.1}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut s = Suite::new("self-test").quick();
        let mut acc = 0u64;
        s.bench("add", || {
            acc = black_box(acc.wrapping_add(black_box(3)));
        });
        let r = s.finish();
        assert_eq!(r.len(), 1);
        assert!(r[0].ns_per_iter > 0.0);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3ns");
        assert_eq!(fmt_ns(12_340.0), "12.34us");
        assert_eq!(fmt_ns(12_340_000.0), "12.34ms");
    }
}
