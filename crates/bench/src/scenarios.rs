//! Shared testbed scenarios.
//!
//! * [`MicroBed`] — the §3.1 microbenchmark pair: one client VM and one
//!   server VM on two servers, in any of the paper's path configurations;
//! * [`memcached_rack`] — the §6 rack: a test server hosting memcached VMs
//!   plus five client servers running memslap.

use fastrak_host::app::GuestApp;
use fastrak_host::vm::VmSpec;
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::ctrl::Dir;
use fastrak_net::packet::PathTag;
use fastrak_sim::time::SimTime;
use fastrak_workload::{Testbed, TestbedConfig, VmRef};

/// The evaluation tenant.
pub const TENANT: TenantId = TenantId(1);

/// The paper's path configurations (§3.2 / Fig. 3-5 legends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathSetup {
    /// Baseline OVS: software path, no tunneling, no rate limit.
    BaselineOvs,
    /// 'OVS+Tunneling': software path with VXLAN.
    OvsTunnel,
    /// 'OVS+Rate limiting': software path with a VIF limit (bps).
    OvsRateLimit(u64),
    /// Hypervisor bypass via SR-IOV, unlimited.
    Sriov,
    /// Combined software functionality: VXLAN + VIF limit.
    OvsTunnelRateLimit(u64),
    /// SR-IOV with the hardware rate limit enforced at the ToR.
    SriovHwLimit(u64),
}

impl PathSetup {
    /// Label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            PathSetup::BaselineOvs => "Baseline OVS",
            PathSetup::OvsTunnel => "OVS+Tunneling",
            PathSetup::OvsRateLimit(_) => "OVS+Rate limiting",
            PathSetup::Sriov => "SR-IOV",
            PathSetup::OvsTunnelRateLimit(_) => "OVS+Tun+RL",
            PathSetup::SriovHwLimit(_) => "SR-IOV (hw RL)",
        }
    }

    /// Does this setup need vswitch tunneling enabled at build time?
    pub fn tunneling(self) -> bool {
        matches!(
            self,
            PathSetup::OvsTunnel | PathSetup::OvsTunnelRateLimit(_)
        )
    }

    /// Does traffic ride the SR-IOV path?
    pub fn is_sriov(self) -> bool {
        matches!(self, PathSetup::Sriov | PathSetup::SriovHwLimit(_))
    }
}

/// A two-server microbenchmark bed.
pub struct MicroBed {
    /// The testbed.
    pub bed: Testbed,
    /// Client VM (on server 0).
    pub client: VmRef,
    /// Server VM (on server 1).
    pub server: VmRef,
}

/// Client/server VM IPs used by the micro bed.
pub const CLIENT_IP: Ip = Ip(0x0a000001); // 10.0.0.1
/// Server VM IP.
pub const SERVER_IP: Ip = Ip(0x0a000002); // 10.0.0.2

/// Build the §3.1 pair in the given path setup.
pub fn micro_bed(
    setup: PathSetup,
    client_app: Box<dyn GuestApp>,
    server_app: Box<dyn GuestApp>,
    seed: u64,
) -> MicroBed {
    let mut bed = Testbed::build(TestbedConfig {
        n_servers: 2,
        tunneling: setup.tunneling(),
        seed,
        ..TestbedConfig::default()
    });
    let client = bed.add_vm(0, VmSpec::large("client", TENANT, CLIENT_IP), client_app);
    let server = bed.add_vm(1, VmSpec::large("server", TENANT, SERVER_IP), server_app);
    apply_setup(&mut bed, setup, &[client, server]);
    MicroBed {
        bed,
        client,
        server,
    }
}

/// Apply a path setup to a set of VMs on an already-built bed.
pub fn apply_setup(bed: &mut Testbed, setup: PathSetup, vms: &[VmRef]) {
    match setup {
        PathSetup::BaselineOvs | PathSetup::OvsTunnel => {}
        PathSetup::OvsRateLimit(bps) | PathSetup::OvsTunnelRateLimit(bps) => {
            for &v in vms {
                bed.set_vif_rate(v, Dir::Egress, bps);
                bed.set_vif_rate(v, Dir::Ingress, bps);
            }
        }
        PathSetup::Sriov => {}
        PathSetup::SriovHwLimit(bps) => {
            for &v in vms {
                bed.set_hw_rate(v, Dir::Egress, bps);
                bed.set_hw_rate(v, Dir::Ingress, bps);
            }
        }
    }
    if setup.is_sriov() {
        bed.authorize_hw_tenant(TENANT);
        for &v in vms {
            bed.force_path(v, PathTag::SrIov);
        }
    }
}

/// Warm up, open a measurement window, run, and return the window's end.
/// `warm` and `measure` are in milliseconds.
pub fn warm_and_measure(
    bed: &mut Testbed,
    warm_ms: u64,
    measure_ms: u64,
    mut at_window_start: impl FnMut(&mut Testbed),
) -> SimTime {
    bed.run_until(SimTime::from_millis(warm_ms));
    bed.begin_cpu_windows();
    at_window_start(bed);
    let end = SimTime::from_millis(warm_ms + measure_ms);
    bed.run_until(end);
    end
}

/// The §6 memcached rack: `n_mc` memcached VMs (+ optional extra VMs) on
/// the test server (index 0), and five client servers. The caller places
/// apps itself; this only builds the empty rack.
pub fn rack(seed: u64) -> Testbed {
    Testbed::build(TestbedConfig {
        n_servers: 6,
        tunneling: false,
        seed,
        ..TestbedConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastrak_workload::{StreamConfig, StreamSender, StreamSink};

    #[test]
    fn micro_bed_builds_all_setups() {
        for setup in [
            PathSetup::BaselineOvs,
            PathSetup::OvsTunnel,
            PathSetup::OvsRateLimit(10_000_000_000),
            PathSetup::Sriov,
            PathSetup::OvsTunnelRateLimit(1_000_000_000),
            PathSetup::SriovHwLimit(1_000_000_000),
        ] {
            let mb = micro_bed(
                setup,
                Box::new(StreamSender::new(StreamConfig::netperf(
                    SERVER_IP, 5001, 1448,
                ))),
                Box::new(StreamSink::new(5001)),
                1,
            );
            assert_eq!(mb.bed.vms().len(), 2, "{setup:?}");
        }
    }

    #[test]
    fn ip_constants_match_helpers() {
        assert_eq!(CLIENT_IP, Ip::new(10, 0, 0, 1));
        assert_eq!(SERVER_IP, Ip::new(10, 0, 0, 2));
    }
}
