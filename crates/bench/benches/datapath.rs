//! Criterion benchmarks for the simulated data plane itself: wire-header
//! codecs, the vswitch decision path, the DES kernel's event throughput,
//! and a full end-to-end simulated second of RR traffic (the cost of
//! running the reproduction, not of the modelled system).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use fastrak_net::addr::{Ip, Mac, TenantId};
use fastrak_net::flow::{FlowKey, Proto};
use fastrak_net::packet::{Encap, L4Meta, Packet};
use fastrak_sim::kernel::{Api, Kernel, Node};
use fastrak_sim::time::{SimDuration, SimTime};

fn flow() -> FlowKey {
    FlowKey {
        tenant: TenantId(3),
        src_ip: Ip::new(10, 0, 0, 1),
        dst_ip: Ip::new(10, 0, 0, 2),
        proto: Proto::Tcp,
        src_port: 40_000,
        dst_port: 11_211,
    }
}

fn bench_header_codec(c: &mut Criterion) {
    let mut p = Packet::new(
        1,
        flow(),
        L4Meta::Tcp {
            seq: 1,
            ack: 2,
            flags: 0x18,
        },
        1448,
        SimTime::ZERO,
    );
    p.encap(Encap::Vxlan {
        vni: 3,
        src: Ip::provider_server(0, 1),
        dst: Ip::provider_server(0, 2),
    });
    c.bench_function("encode_wire_vxlan_1448B", |b| {
        b.iter(|| black_box(p.encode_wire(Mac::local(1), Mac::local(2))));
    });
    let bytes = {
        let mut q = p.clone();
        q.decap();
        q.encode_wire(Mac::local(1), Mac::local(2))
    };
    c.bench_function("decode_wire_plain_1448B", |b| {
        b.iter(|| black_box(Packet::decode_wire(TenantId(3), &bytes).unwrap()));
    });
}

fn bench_vswitch_process(c: &mut Criterion) {
    use fastrak_host::vswitch::{Vswitch, VswitchConfig};
    let mut vs = Vswitch::new(VswitchConfig::default());
    vs.attach_vif(TenantId(3), Ip::new(10, 0, 0, 1));
    let k = flow();
    vs.process_tx(&k, 1500); // warm the datapath cache
    c.bench_function("vswitch_fast_path_tx", |b| {
        b.iter(|| black_box(vs.process_tx(&k, 1500)));
    });
}

struct Ping {
    peer: usize,
    left: u64,
}
impl Node<u64, ()> for Ping {
    fn on_event(&mut self, ev: u64, api: &mut Api<'_, u64, ()>) {
        if self.left > 0 {
            self.left -= 1;
            api.send(self.peer, SimDuration::from_micros(1), ev + 1);
        }
    }
}

fn bench_kernel_events(c: &mut Criterion) {
    c.bench_function("des_kernel_100k_events", |b| {
        b.iter(|| {
            let mut k = Kernel::new((), 1);
            let a = k.add_node(Ping {
                peer: 1,
                left: 50_000,
            });
            let bnode = k.add_node(Ping {
                peer: a,
                left: 50_000,
            });
            let _ = bnode;
            k.post(a, SimTime::ZERO, 0);
            k.run_to_completion();
            black_box(k.events_processed())
        });
    });
}

fn bench_end_to_end_rr_second(c: &mut Criterion) {
    use fastrak_host::vm::VmSpec;
    use fastrak_workload::{RrClient, RrClientConfig, RrServer, RrServerConfig, Testbed, TestbedConfig};
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    g.bench_function("simulate_1s_closed_loop_rr", |b| {
        b.iter(|| {
            let mut bed = Testbed::build(TestbedConfig {
                n_servers: 2,
                ..TestbedConfig::default()
            });
            bed.add_vm(
                0,
                VmSpec::large("srv", TenantId(1), Ip::tenant_vm(1)),
                Box::new(RrServer::new(RrServerConfig {
                    port: 7000,
                    req_size: 64,
                    resp_size: 64,
                    service_cpu: SimDuration::ZERO,
                })),
            );
            let cli = bed.add_vm(
                1,
                VmSpec::large("cli", TenantId(1), Ip::tenant_vm(2)),
                Box::new(RrClient::new(RrClientConfig::closed_loop(
                    Ip::tenant_vm(1),
                    7000,
                    64,
                ))),
            );
            bed.start();
            bed.run_until(SimTime::from_secs(1));
            black_box(bed.app::<RrClient>(cli).completed())
        });
    });
}

criterion_group!(
    benches,
    bench_header_codec,
    bench_vswitch_process,
    bench_kernel_events,
    bench_end_to_end_rr_second
);
criterion_main!(benches);
