//! Benchmarks for the simulated data plane itself: wire-header codecs, the
//! vswitch decision path, the DES kernel's event throughput, and a full
//! end-to-end simulated second of RR traffic (the cost of running the
//! reproduction, not of the modelled system).
//!
//! Run with `cargo bench -p fastrak-bench --bench datapath` (add
//! `-- --quick` for a fast smoke pass). Set `FASTRAK_BENCH_JSON=<path>` to
//! collect machine-readable results.

use fastrak_bench::harness::{black_box, Suite};
use fastrak_net::addr::{Ip, Mac, TenantId};
use fastrak_net::flow::{FlowKey, Proto};
use fastrak_net::packet::{Encap, L4Meta, Packet};
use fastrak_sim::chaos::ChaosConfig;
use fastrak_sim::fault::{FaultConfig, FaultLayer};
use fastrak_sim::kernel::{Api, Kernel, Node};
use fastrak_sim::time::{SimDuration, SimTime};

fn flow() -> FlowKey {
    FlowKey {
        tenant: TenantId(3),
        src_ip: Ip::new(10, 0, 0, 1),
        dst_ip: Ip::new(10, 0, 0, 2),
        proto: Proto::Tcp,
        src_port: 40_000,
        dst_port: 11_211,
    }
}

struct Ping {
    peer: usize,
    left: u64,
}
impl Node<u64, ()> for Ping {
    fn on_event(&mut self, ev: u64, api: &mut Api<'_, u64, ()>) {
        if self.left > 0 {
            self.left -= 1;
            api.send(self.peer, SimDuration::from_micros(1), ev + 1);
        }
    }
}

/// The same ping-pong over a context carrying the telemetry plane, with the
/// hot path guarded the way instrumented components guard theirs: check
/// `enabled()` and bail. With an unconfigured registry the branch is never
/// taken, so the bench measures the cost of carrying the plane, not using it.
struct TelemetryPing {
    peer: usize,
    left: u64,
}
impl Node<u64, fastrak_telemetry::Telemetry> for TelemetryPing {
    fn on_event(&mut self, ev: u64, api: &mut Api<'_, u64, fastrak_telemetry::Telemetry>) {
        if api.ctx.spans.enabled() {
            let comp = api.ctx.spans.comp("ping");
            api.ctx
                .spans
                .instant(api.now.as_nanos(), comp, "ev", ev, [0; 3]);
        }
        if self.left > 0 {
            self.left -= 1;
            api.send(self.peer, SimDuration::from_micros(1), ev + 1);
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut s = Suite::new("datapath");
    if quick {
        s = s.quick();
    }

    let mut p = Packet::new(
        1,
        flow(),
        L4Meta::Tcp {
            seq: 1,
            ack: 2,
            flags: 0x18,
        },
        1448,
        SimTime::ZERO,
    );
    p.encap(Encap::Vxlan {
        vni: 3,
        src: Ip::provider_server(0, 1),
        dst: Ip::provider_server(0, 2),
    });
    s.bench("encode_wire_vxlan_1448B", || {
        black_box(p.encode_wire(Mac::local(1), Mac::local(2)));
    });
    let bytes = {
        let mut q = p.clone();
        q.decap();
        q.encode_wire(Mac::local(1), Mac::local(2))
    };
    s.bench("decode_wire_plain_1448B", || {
        black_box(Packet::decode_wire(TenantId(3), &bytes).unwrap());
    });

    {
        use fastrak_host::vswitch::{Vswitch, VswitchConfig};
        let mut vs = Vswitch::new(VswitchConfig::default());
        vs.attach_vif(TenantId(3), Ip::new(10, 0, 0, 1));
        let k = flow();
        vs.process_tx(&k, 1500); // warm the datapath cache
        s.bench("vswitch_fast_path_tx", || {
            black_box(vs.process_tx(&k, 1500));
        });
    }

    // Batched TX: one iteration pushes a whole burst through
    // `process_tx_burst`, so ns/pkt = ns/iter ÷ burst size. The perf gate
    // holds burst/32 under the scalar `vswitch_fast_path_tx` baseline
    // (12 ns/pkt × 32 = 384 ns/iter); the acceptance target is ≤ 6 ns/pkt.
    {
        use fastrak_host::vswitch::{Vswitch, VswitchConfig};
        for burst in [1usize, 8, 32, 64] {
            let mut vs = Vswitch::new(VswitchConfig::default());
            vs.attach_vif(TenantId(3), Ip::new(10, 0, 0, 1));
            let k = flow();
            vs.process_tx(&k, 1500); // warm the datapath cache
            let pkts: Vec<(FlowKey, u64)> = vec![(k, 1500); burst];
            let mut out = Vec::with_capacity(burst);
            s.bench(&format!("vswitch_batch_tx/burst/{burst}"), || {
                out.clear();
                vs.process_tx_burst(&pkts, &mut out);
                black_box(&out);
            });
        }
    }

    // Per-stage batch primitives at burst 32 (the EXPERIMENTS.md per-stage
    // ns/pkt rows divide these by 32).
    {
        use fastrak_sim::{DropTailQueue, TokenBucket};
        let sizes = [1500u64; 32];
        // 10 Gbit/s with a deep bucket; advancing the clock 1 ms per
        // iteration refills more than the 48 KB each burst consumes, so
        // every acquire stays on the conforming path.
        let mut tb = TokenBucket::new(10_000_000_000, 1 << 20);
        let mut out = Vec::with_capacity(32);
        let mut tick = 0u64;
        s.bench("tbf_acquire_burst/32", || {
            tick += 1;
            out.clear();
            tb.acquire_burst(SimTime::from_micros(1_000 * tick), &sizes, &mut out);
            black_box(&out);
        });
        let mut q: DropTailQueue<u64> = DropTailQueue::new(64, 1 << 20);
        s.bench("queue_push_burst/32", || {
            let n = q.push_burst((0..32u64).map(|i| (i, 1500)), |_, _, _| {});
            while q.pop().is_some() {}
            black_box(n);
        });
    }

    // Packet clone cost: encap state is an inline EncapStack (Copy), so
    // cloning never touches the heap. The control clones the same state
    // held the old way, as a Vec<Encap> — the delta is the measured win.
    {
        let inline = p.clone();
        let vec_encaps: Vec<Encap> = inline.encaps.iter().copied().collect();
        s.bench("packet_clone_inline_encaps", || {
            black_box(inline.clone());
        });
        s.bench("encap_vec_clone_control", || {
            black_box(vec_encaps.clone());
        });
    }

    s.bench("des_kernel_100k_events", || {
        let mut k = Kernel::new((), 1);
        let a = k.add_node(Ping {
            peer: 1,
            left: 50_000,
        });
        let _b = k.add_node(Ping {
            peer: a,
            left: 50_000,
        });
        k.post(a, SimTime::ZERO, 0);
        k.run_to_completion();
        black_box(k.events_processed());
    });

    // Same workload with a zero-probability fault plane attached: the
    // fault-injection hook on the send path must stay free when every
    // probability is zero (the plane is consulted but never draws). The
    // perf gate holds this within ratio of the hook-free bench above.
    s.bench("des_kernel_100k_events_zero_fault", || {
        let mut k = Kernel::new((), 1);
        k.set_fault_layer(FaultLayer::new(FaultConfig::default(), |_| true, |_| None));
        let a = k.add_node(Ping {
            peer: 1,
            left: 50_000,
        });
        let _b = k.add_node(Ping {
            peer: a,
            left: 50_000,
        });
        k.post(a, SimTime::ZERO, 0);
        k.run_to_completion();
        black_box(k.events_processed());
    });

    // Same workload with a fault plane carrying a scripted (but never-
    // firing) chaos config: the per-send window scan and the lazy epoch
    // checks must stay near-free when no window covers the run. The perf
    // gate holds this within ratio of the hook-free bench above.
    s.bench("des_kernel_100k_events_idle_chaos", || {
        let mut k = Kernel::new((), 1);
        let far = SimTime::from_secs(3_600);
        let later = SimTime::from_secs(7_200);
        k.set_fault_layer(
            FaultLayer::new(
                FaultConfig {
                    chaos: ChaosConfig {
                        tor_outages: vec![(0, far, later)],
                        vf_outages: vec![(0, far, later)],
                        link_flaps: vec![(0, 1, far, later)],
                        controller_restarts: vec![(0, far)],
                    },
                    ..FaultConfig::default()
                },
                |_| true,
                |_| None,
            )
            // Every event counts as a data-plane frame, so each send walks
            // the chaos plane's window scan — the cost under measurement.
            .with_frame_classifier(|_| true),
        );
        let a = k.add_node(Ping {
            peer: 1,
            left: 50_000,
        });
        let _b = k.add_node(Ping {
            peer: a,
            left: 50_000,
        });
        k.post(a, SimTime::ZERO, 0);
        k.run_to_completion();
        black_box(k.events_processed());
    });

    // Same workload again with the telemetry plane in the context and the
    // span guard on the hot path, but nothing registered or enabled: the
    // observability plane must cost nothing until someone turns it on. The
    // perf gate holds this within ratio of the plane-free bench above.
    s.bench("telemetry_disabled_kernel_100k", || {
        let mut k = Kernel::new(fastrak_telemetry::Telemetry::default(), 1);
        let a = k.add_node(TelemetryPing {
            peer: 1,
            left: 50_000,
        });
        let _b = k.add_node(TelemetryPing {
            peer: a,
            left: 50_000,
        });
        k.post(a, SimTime::ZERO, 0);
        k.run_to_completion();
        black_box(k.events_processed());
    });

    {
        use fastrak_host::vm::VmSpec;
        use fastrak_workload::{
            RrClient, RrClientConfig, RrServer, RrServerConfig, Testbed, TestbedConfig,
        };
        s.bench("simulate_1s_closed_loop_rr", || {
            let mut bed = Testbed::build(TestbedConfig {
                n_servers: 2,
                ..TestbedConfig::default()
            });
            bed.add_vm(
                0,
                VmSpec::large("srv", TenantId(1), Ip::tenant_vm(1)),
                Box::new(RrServer::new(RrServerConfig {
                    port: 7000,
                    req_size: 64,
                    resp_size: 64,
                    service_cpu: SimDuration::ZERO,
                })),
            );
            let cli = bed.add_vm(
                1,
                VmSpec::large("cli", TenantId(1), Ip::tenant_vm(2)),
                Box::new(RrClient::new(RrClientConfig::closed_loop(
                    Ip::tenant_vm(1),
                    7000,
                    64,
                ))),
            );
            bed.start();
            bed.run_until(SimTime::from_secs(1));
            black_box(bed.app::<RrClient>(cli).completed());
        });
    }

    s.finish();
}
