//! Criterion micro-benchmarks for the match tables on the per-packet hot
//! path: the OVS kernel cache and flow placer (exact match, O(1) by
//! design — §2.2) and the ToR's priority wildcard table.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::flow::{FlowKey, FlowSpec, Proto};
use fastrak_net::tables::{ExactMatchTable, WildcardTable};

fn key(i: u32) -> FlowKey {
    FlowKey {
        tenant: TenantId(1 + (i % 16)),
        src_ip: Ip(0x0a000000 | (i & 0xffff)),
        dst_ip: Ip(0x0a010000 | ((i >> 3) & 0xffff)),
        proto: Proto::Tcp,
        src_port: (40_000 + (i % 20_000)) as u16,
        dst_port: 11_211,
    }
}

fn bench_exact_match(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_match_lookup");
    for &n in &[16usize, 1_024, 65_536] {
        let mut t = ExactMatchTable::new();
        for i in 0..n as u32 {
            t.insert(key(i), i);
        }
        g.bench_with_input(BenchmarkId::new("hit", n), &n, |b, &n| {
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 1) % n as u32;
                black_box(t.lookup(&key(i), 1500).copied())
            });
        });
        g.bench_with_input(BenchmarkId::new("miss", n), &n, |b, &n| {
            b.iter(|| black_box(t.lookup(&key(n as u32 + 7), 1500).copied()));
        });
    }
    g.finish();
}

fn bench_wildcard(c: &mut Criterion) {
    // The paper's observation: 10,000 installed rules cost nothing on the
    // fast path (hash hit) but the slow path scans linearly. The wildcard
    // table is the slow-path/TCAM model.
    let mut g = c.benchmark_group("wildcard_lookup");
    for &n in &[10usize, 250, 2_048] {
        let mut t = WildcardTable::new(n + 1);
        for i in 0..n as u32 {
            t.install(
                FlowSpec {
                    tenant: Some(TenantId(1 + (i % 16))),
                    dst_port: Some((i % 60_000) as u16),
                    ..FlowSpec::ANY
                },
                (i % 100) as u16,
                i,
            )
            .unwrap();
        }
        g.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| black_box(t.lookup(&key(3), 1500).copied()));
        });
    }
    g.finish();
}

fn bench_placer(c: &mut Criterion) {
    use fastrak_host::bonding::FlowPlacer;
    use fastrak_net::packet::PathTag;
    let mut p = FlowPlacer::new();
    for i in 0..64u32 {
        p.install_rule(
            FlowSpec {
                tenant: Some(TenantId(1)),
                dst_port: Some(10_000 + i as u16),
                ..FlowSpec::ANY
            },
            10,
            PathTag::SrIov,
        );
    }
    // Warm the exact-match cache.
    for i in 0..4_096u32 {
        p.place(&key(i), 1500);
    }
    c.bench_function("flow_placer_cached_place", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 4_096;
            black_box(p.place(&key(i), 1500))
        });
    });
}

criterion_group!(benches, bench_exact_match, bench_wildcard, bench_placer);
criterion_main!(benches);
