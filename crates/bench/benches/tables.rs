//! Micro-benchmarks for the match tables on the per-packet hot path: the
//! OVS kernel cache and flow placer (exact match, O(1) by design — §2.2)
//! and the ToR's priority wildcard table.
//!
//! Run with `cargo bench -p fastrak-bench --bench tables`.

use fastrak_bench::harness::{black_box, Suite};
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::flow::{FlowKey, FlowSpec, Proto};
use fastrak_net::tables::{ExactMatchTable, WildcardTable};

fn key(i: u32) -> FlowKey {
    FlowKey {
        tenant: TenantId(1 + (i % 16)),
        src_ip: Ip(0x0a000000 | (i & 0xffff)),
        dst_ip: Ip(0x0a010000 | ((i >> 3) & 0xffff)),
        proto: Proto::Tcp,
        src_port: (40_000 + (i % 20_000)) as u16,
        dst_port: 11_211,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut s = Suite::new("tables");
    if quick {
        s = s.quick();
    }

    for &n in &[16usize, 1_024, 65_536] {
        let mut t = ExactMatchTable::new();
        for i in 0..n as u32 {
            t.insert(key(i), i);
        }
        let mut i = 0u32;
        s.bench(&format!("exact_match_lookup/hit/{n}"), || {
            i = (i + 1) % n as u32;
            black_box(t.lookup(&key(i), 1500).copied());
        });
        s.bench(&format!("exact_match_lookup/miss/{n}"), || {
            black_box(t.lookup(&key(n as u32 + 7), 1500).copied());
        });
    }

    // Control: the same exact-match workload on a std (SipHash) map. The
    // delta against exact_match_lookup/hit/1024 is the measured win from
    // the FxHash adoption across the per-packet maps.
    {
        let mut t: std::collections::HashMap<FlowKey, u32> = std::collections::HashMap::new();
        for i in 0..1_024u32 {
            t.insert(key(i), i);
        }
        let mut i = 0u32;
        s.bench("exact_match_lookup/hit/1024_siphash_control", || {
            i = (i + 1) % 1_024;
            black_box(t.get(&key(i)).copied());
        });
    }

    // The paper's observation: 10,000 installed rules cost nothing on the
    // fast path (hash hit) but the slow path scans linearly. The wildcard
    // table is the slow-path/TCAM model.
    for &n in &[10usize, 250, 2_048] {
        let mut t = WildcardTable::new(n + 1);
        for i in 0..n as u32 {
            t.install(
                FlowSpec {
                    tenant: Some(TenantId(1 + (i % 16))),
                    dst_port: Some((i % 60_000) as u16),
                    ..FlowSpec::ANY
                },
                (i % 100) as u16,
                i,
            )
            .unwrap();
        }
        s.bench(&format!("wildcard_lookup/scan/{n}"), || {
            black_box(t.lookup(&key(3), 1500).copied());
        });
    }

    {
        use fastrak_host::bonding::FlowPlacer;
        use fastrak_net::packet::PathTag;
        let mut p = FlowPlacer::new();
        for i in 0..64u32 {
            p.install_rule(
                FlowSpec {
                    tenant: Some(TenantId(1)),
                    dst_port: Some(10_000 + i as u16),
                    ..FlowSpec::ANY
                },
                10,
                PathTag::SrIov,
            );
        }
        // Warm the exact-match cache.
        for i in 0..4_096u32 {
            p.place(&key(i), 1500);
        }
        let mut i = 0u32;
        s.bench("flow_placer_cached_place", || {
            i = (i + 1) % 4_096;
            black_box(p.place(&key(i), 1500));
        });
    }

    s.finish();
}
