//! Benchmarks for the FasTrak controller's per-interval work:
//! measurement-engine folding, decision-engine ranking/selection, rule
//! synthesis, and the FPS split. These bound how many flows a single TOR
//! controller can manage per control interval (scalability, §4.3.3).
//!
//! Run with `cargo bench -p fastrak-bench --bench controller`.

use std::collections::{HashMap, HashSet};

use fastrak::de::{DeConfig, DecisionEngine};
use fastrak::de_inc::{IncrementalDecisionEngine, ShardEpoch, ShardedDecisionEngine};
use fastrak::fps::{fps_split, FpsConfig, FpsInput};
use fastrak::me::{AggDemand, MeasurementEngine};
use fastrak::rules::RuleManager;
use fastrak::FastPathPolicy;
use fastrak_bench::harness::{black_box, Suite};
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::ctrl::FlowStatEntry;
use fastrak_net::flow::{FlowAggregate, FlowKey, Proto};

fn flow(i: u32) -> FlowKey {
    FlowKey {
        tenant: TenantId(1 + (i % 64)),
        src_ip: Ip(0x0a000000 | (i & 0x3fff)),
        dst_ip: Ip(0x0a100000 | ((i * 7) & 0x3fff)),
        proto: Proto::Tcp,
        src_port: (30_000 + (i % 30_000)) as u16,
        dst_port: (i % 500) as u16,
    }
}

fn stats(n: usize) -> Vec<FlowStatEntry> {
    (0..n as u32)
        .map(|i| FlowStatEntry {
            key: flow(i),
            packets: 1_000 + i as u64 * 13,
            bytes: 100_000 + i as u64 * 997,
        })
        .collect()
}

fn demands(n: usize) -> Vec<AggDemand> {
    (0..n as u32)
        .map(|i| AggDemand {
            agg: FlowAggregate::dst_of(&flow(i)),
            pps: (i as f64 * 17.0) % 50_000.0,
            bps: 1e6,
            n_active: 1 + i % 6,
            m_pps: (i as f64 * 13.0) % 40_000.0,
            m_bps: 1e6,
        })
        .collect()
}

/// Rotating delta batches for the incremental-engine benches: the row space
/// is cut into up to 8 disjoint churn-sized groups, and each group cycles
/// through four distinct re-pricing factors, so every application of a batch
/// really moves scores (same-score upserts are not deltas).
fn delta_batches(base: &[AggDemand], churn: usize) -> Vec<Vec<AggDemand>> {
    let n = base.len();
    let groups = (n / churn).clamp(1, 8);
    let factors = [0.85f64, 1.1, 0.95, 1.2];
    let mut batches = Vec::with_capacity(groups * factors.len());
    for f in factors {
        for g in 0..groups {
            batches.push(
                (0..churn)
                    .map(|j| {
                        let mut row = base[(g * churn + j) % n];
                        row.m_pps *= f;
                        row.pps *= f;
                        row
                    })
                    .collect(),
            );
        }
    }
    batches
}

/// Steady-state incremental epochs: warm index, fixed offloaded set, each
/// iteration ingests one churn batch and decides.
fn bench_incremental(s: &mut Suite, cfg: DeConfig, n: usize, churn_pct: usize, name: &str) {
    let d = demands(n);
    let mut inc = IncrementalDecisionEngine::new(cfg);
    inc.ingest_snapshot(&d);
    let offloaded: HashSet<FlowAggregate> = inc
        .decide(&HashSet::new(), 256)
        .target
        .into_iter()
        .collect();
    let churn = (n * churn_pct / 100).max(1);
    let batches = delta_batches(&d, churn);
    let mut epoch = 0usize;
    s.bench(name, || {
        let batch = &batches[epoch % batches.len()];
        epoch += 1;
        inc.ingest(black_box(batch), &[]);
        black_box(inc.decide(&offloaded, 256));
    });
}

/// One fleet control epoch: every rack ingests its 1% churn batch and
/// decides, fanned out across scoped threads.
fn bench_sharded(s: &mut Suite, shards: usize, total_aggs: usize) {
    let per_shard = total_aggs / shards;
    let churn = (per_shard / 100).max(1);
    let mut fleet = ShardedDecisionEngine::new(&DeConfig::paper(), shards);
    let mut offloaded: Vec<HashSet<FlowAggregate>> = Vec::with_capacity(shards);
    let mut batches: Vec<Vec<Vec<AggDemand>>> = Vec::with_capacity(shards);
    for sh in 0..shards {
        // Disjoint per-rack aggregate spaces (offset into the flow space).
        let d: Vec<AggDemand> = ((sh * per_shard) as u32..((sh + 1) * per_shard) as u32)
            .map(|i| AggDemand {
                agg: FlowAggregate::dst_of(&flow(i)),
                pps: (i as f64 * 17.0) % 50_000.0,
                bps: 1e6,
                n_active: 1 + i % 6,
                m_pps: (i as f64 * 13.0) % 40_000.0,
                m_bps: 1e6,
            })
            .collect();
        fleet.shard_mut(sh).ingest_snapshot(&d);
        let target = fleet.shard_mut(sh).decide(&HashSet::new(), 256).target;
        offloaded.push(target.into_iter().collect());
        batches.push(delta_batches(&d, churn));
    }
    let mut epoch = 0usize;
    let name = format!("decision_engine_sharded/shards/{shards}/aggregates/{total_aggs}");
    s.bench(&name, || {
        let epochs: Vec<ShardEpoch<'_>> = (0..shards)
            .map(|sh| ShardEpoch {
                changed: &batches[sh][epoch % batches[sh].len()],
                removed: &[],
                offloaded: &offloaded[sh],
                budget: 256,
            })
            .collect();
        epoch += 1;
        black_box(fleet.decide_all(black_box(&epochs)));
    });
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut s = Suite::new("controller");
    if quick {
        s = s.quick();
    }

    for &n in &[100usize, 1_000, 10_000] {
        let dump = stats(n);
        s.bench(&format!("measurement_engine_epoch/flows/{n}"), || {
            let mut me = MeasurementEngine::new(0.1, 6);
            me.epoch_sample_a(black_box(&dump));
            me.epoch_sample_b(black_box(&dump));
            black_box(me.report());
        });
    }

    // The production engine: incremental top-k, fed per-epoch demand deltas
    // (steady state: the index is warm, the offloaded set is the first
    // decide's target, and each epoch re-prices a churn fraction of rows).
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        bench_incremental(
            &mut s,
            DeConfig::paper(),
            n,
            1,
            &format!("decision_engine_decide/aggregates/{n}"),
        );
    }

    // Churn sensitivity at fleet scale: per-epoch cost should track the
    // delta count, not the aggregate count.
    for &(pct, tag) in &[(1usize, "1pct"), (10, "10pct"), (100, "100pct")] {
        bench_incremental(
            &mut s,
            DeConfig::paper(),
            100_000,
            pct,
            &format!("decision_engine_decide_churn/100000/{tag}"),
        );
    }

    // Per-tenant fairness: the weighted-share policy adds a rank-order mass
    // pass over all live aggregates to every decide, so it gets its own
    // perf-gated curve (the paper's Unrestricted walk stays delta-priced).
    for &n in &[10_000usize, 100_000] {
        let mut cfg = DeConfig::paper();
        cfg.policy = FastPathPolicy::WeightedScore {
            weights: HashMap::from([(TenantId(1), 2.0), (TenantId(5), 0.25)]),
        };
        bench_incremental(
            &mut s,
            cfg,
            n,
            1,
            &format!("decision_engine_decide_tenants/aggregates/{n}"),
        );
    }

    // The retained full-scan oracle (`full-scan-de` feature): re-ranks the
    // world every epoch. Kept benched so the curves stay comparable.
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        let d = demands(n);
        let de = DecisionEngine::new(DeConfig::paper());
        let offloaded: HashSet<FlowAggregate> = d.iter().take(n / 10).map(|x| x.agg).collect();
        s.bench(&format!("decision_engine_full_scan/aggregates/{n}"), || {
            black_box(de.decide(black_box(&d), &offloaded, 256));
        });
    }

    // Per-ToR sharded fleet epoch: 8 racks scored in parallel.
    bench_sharded(&mut s, 8, 100_000);

    {
        let rm = RuleManager::new();
        let agg = FlowAggregate::dst_of(&flow(7));
        s.bench("rule_synthesis_default_policy", || {
            black_box(rm.synthesize(&agg, 10).unwrap());
        });
    }

    {
        let cfg = FpsConfig::default();
        s.bench("fps_split", || {
            black_box(fps_split(
                &cfg,
                FpsInput {
                    limit_bps: 1_000_000_000,
                    sw_demand_bps: 123e6,
                    hw_demand_bps: 789e6,
                    sw_maxed: false,
                    hw_maxed: true,
                },
            ));
        });
    }

    s.finish();
}
