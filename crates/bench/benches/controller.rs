//! Benchmarks for the FasTrak controller's per-interval work:
//! measurement-engine folding, decision-engine ranking/selection, rule
//! synthesis, and the FPS split. These bound how many flows a single TOR
//! controller can manage per control interval (scalability, §4.3.3).
//!
//! Run with `cargo bench -p fastrak-bench --bench controller`.

use std::collections::HashSet;

use fastrak::de::{DeConfig, DecisionEngine};
use fastrak::fps::{fps_split, FpsConfig, FpsInput};
use fastrak::me::{AggDemand, MeasurementEngine};
use fastrak::rules::RuleManager;
use fastrak_bench::harness::{black_box, Suite};
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::ctrl::FlowStatEntry;
use fastrak_net::flow::{FlowAggregate, FlowKey, Proto};

fn flow(i: u32) -> FlowKey {
    FlowKey {
        tenant: TenantId(1 + (i % 64)),
        src_ip: Ip(0x0a000000 | (i & 0x3fff)),
        dst_ip: Ip(0x0a100000 | ((i * 7) & 0x3fff)),
        proto: Proto::Tcp,
        src_port: (30_000 + (i % 30_000)) as u16,
        dst_port: (i % 500) as u16,
    }
}

fn stats(n: usize) -> Vec<FlowStatEntry> {
    (0..n as u32)
        .map(|i| FlowStatEntry {
            key: flow(i),
            packets: 1_000 + i as u64 * 13,
            bytes: 100_000 + i as u64 * 997,
        })
        .collect()
}

fn demands(n: usize) -> Vec<AggDemand> {
    (0..n as u32)
        .map(|i| AggDemand {
            agg: FlowAggregate::dst_of(&flow(i)),
            pps: (i as f64 * 17.0) % 50_000.0,
            bps: 1e6,
            n_active: 1 + i % 6,
            m_pps: (i as f64 * 13.0) % 40_000.0,
            m_bps: 1e6,
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut s = Suite::new("controller");
    if quick {
        s = s.quick();
    }

    for &n in &[100usize, 1_000, 10_000] {
        let dump = stats(n);
        s.bench(&format!("measurement_engine_epoch/flows/{n}"), || {
            let mut me = MeasurementEngine::new(0.1, 6);
            me.epoch_sample_a(black_box(&dump));
            me.epoch_sample_b(black_box(&dump));
            black_box(me.report());
        });
    }

    for &n in &[100usize, 1_000, 10_000] {
        let d = demands(n);
        let de = DecisionEngine::new(DeConfig::paper());
        let offloaded: HashSet<FlowAggregate> = d.iter().take(n / 10).map(|x| x.agg).collect();
        s.bench(&format!("decision_engine_decide/aggregates/{n}"), || {
            black_box(de.decide(black_box(&d), &offloaded, 256));
        });
    }

    {
        let rm = RuleManager::new();
        let agg = FlowAggregate::dst_of(&flow(7));
        s.bench("rule_synthesis_default_policy", || {
            black_box(rm.synthesize(&agg, 10).unwrap());
        });
    }

    {
        let cfg = FpsConfig::default();
        s.bench("fps_split", || {
            black_box(fps_split(
                &cfg,
                FpsInput {
                    limit_bps: 1_000_000_000,
                    sw_demand_bps: 123e6,
                    hw_demand_bps: 789e6,
                    sw_maxed: false,
                    hw_maxed: true,
                },
            ));
        });
    }

    s.finish();
}
