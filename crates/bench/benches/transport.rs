//! Benchmarks for the transport subsystem's hot paths: the established
//! ACK-clocked send/receive cycle, SACK scoreboard maintenance under a
//! lossy window, and ECN mark-or-drop admission on the drop-tail queue.
//!
//! Run with `cargo bench -p fastrak-bench --bench transport` (add
//! `-- --quick` for a fast smoke pass). Set `FASTRAK_BENCH_JSON=<path>` to
//! collect machine-readable results.

use fastrak_bench::harness::{black_box, Suite};
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::flow::{FlowKey, Proto};
use fastrak_net::packet::SackBlocks;
use fastrak_sim::time::SimTime;
use fastrak_transport::sack::Scoreboard;
use fastrak_transport::tcp::{TcpConfig, TcpConn};

fn flow() -> FlowKey {
    FlowKey {
        tenant: TenantId(3),
        src_ip: Ip::new(10, 0, 0, 1),
        dst_ip: Ip::new(10, 0, 0, 2),
        proto: Proto::Tcp,
        src_port: 40_000,
        dst_port: 11_211,
    }
}

/// Drain every pending segment from `from` into `to` at `now`.
fn pump(from: &mut TcpConn, to: &mut TcpConn, now: SimTime) {
    while let Some(p) = from.poll_transmit(now, 64) {
        to.on_segment_full(now, p.seq, p.ack, p.flags, p.len as u64, false, p.sack);
    }
}

/// An established client/server pair (handshake already pumped).
fn established_pair() -> (TcpConn, TcpConn) {
    let cfg = TcpConfig::default();
    let mut c = TcpConn::client(flow(), cfg);
    let mut s = TcpConn::listen(flow().reverse(), cfg);
    let t0 = SimTime::ZERO;
    pump(&mut c, &mut s, t0); // SYN
    pump(&mut s, &mut c, t0); // SYN|ACK
    pump(&mut c, &mut s, t0); // ACK
    assert!(c.is_established() && s.is_established());
    (c, s)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut su = Suite::new("transport");
    if quick {
        su = su.quick();
    }

    // One ACK-clocked transaction: the sender queues one MSS, emits it,
    // the receiver consumes it and (every other segment or on the delack
    // timer) acks, and the ack returns. This is the per-segment cost every
    // simulated byte of every experiment pays.
    {
        let (mut c, mut s) = established_pair();
        let mut now = SimTime::ZERO;
        su.bench("tcp_ack_clock", || {
            now = SimTime(now.as_nanos() + 10_000);
            c.app_send(1448);
            pump(&mut c, &mut s, now);
            // Flush the delayed ACK so the window never stalls.
            if let Some((_, w)) = s.next_timer() {
                s.on_timer(now, w);
            }
            pump(&mut s, &mut c, now);
            black_box(c.flight());
        });
        assert_eq!(c.flight(), 0, "ack clock must keep the pipe drained");
    }

    // Scoreboard maintenance under a lossy window: fold three-block SACK
    // reports into the range map and walk the first repairable hole — the
    // per-dup-ACK cost during every recovery episode.
    {
        let mss = 1448u64;
        let mut i = 0u64;
        let mut sb = Scoreboard::default();
        su.bench("sack_scoreboard_update", || {
            // A sliding lossy window: every 16th segment is a hole.
            let base = i * mss;
            let mut blocks = SackBlocks::EMPTY;
            blocks.push(base + mss, base + 4 * mss);
            blocks.push(base + 5 * mss, base + 9 * mss);
            blocks.push(base + 10 * mss, base + 15 * mss);
            sb.on_ack(base, &blocks);
            black_box(sb.next_hole(base, base + 16 * mss, mss as u32));
            i += 1;
            if i.is_multiple_of(1024) {
                sb.clear();
            }
        });
    }

    // ECN admission at burst width 32: the mark-or-drop decision the NIC
    // and ToR queues make per packet when a marking threshold is armed
    // (ns/pkt = ns/iter ÷ 32).
    {
        use fastrak_sim::DropTailQueue;
        let mut q: DropTailQueue<u64> = DropTailQueue::new(64, 96_000);
        q.set_ecn_threshold(Some(24_000));
        let burst: Vec<(u64, u64, bool)> = (0..32u64).map(|i| (i, 1500, true)).collect();
        su.bench("ecn_mark_burst/32", || {
            let n = q.push_burst_ecn(
                burst.iter().copied(),
                |_, _, _| {},
                |p| {
                    black_box(&p);
                },
            );
            black_box(n);
            while q.pop().is_some() {}
        });
    }

    su.finish();
}
