//! Scheduler micro-benches: the timing wheel against the binary-heap oracle,
//! head-to-head through the shared `Scheduler` trait (both implementations
//! are always compiled; the `heap-sched` feature only selects which one the
//! kernel uses).
//!
//! Four workload shapes bracket the kernel's real usage:
//!
//! * `uniform_hold` — the classic hold model: steady population, pop the
//!   earliest event, schedule a replacement at a uniform random delay.
//! * `bursty_tie_64` — 64 events at one identical timestamp, then drain
//!   them; stresses tie handling (slot FIFO vs heap sift).
//! * `timer_churn_cancel` — rto-style timers that are almost always
//!   cancelled and re-armed before firing; stresses the cancel path and
//!   dead-entry reclaim.
//! * `far_future_skew` — every event beyond the ~73 min wheel horizon;
//!   stresses the overflow heap and promotion.
//!
//! Run with `cargo bench -p fastrak-bench --bench scheduler` (add
//! `-- --quick` for a fast smoke pass). Set `FASTRAK_BENCH_JSON=<path>` to
//! collect machine-readable results.

use fastrak_bench::harness::{black_box, Suite};
use fastrak_sim::sched::{BinaryHeapSched, Scheduler, TimingWheel};
use fastrak_sim::time::SimTime;
use fastrak_sim::Rng;

fn bench_impl<S: Scheduler<u64>>(s: &mut Suite, label: &str) {
    // Hold model: 4096 pending, one pop + one schedule per iteration, so
    // the reported figure is ns per pop+schedule pair ("ns/event").
    {
        let mut sched = S::default();
        let mut rng = Rng::new(7);
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..4096 {
            let at = now + 1 + rng.below(1_000_000);
            sched.schedule(SimTime(at), seq, 0, seq);
            seq += 1;
        }
        s.bench(&format!("uniform_hold_{label}"), || {
            let (t, _, ev) = sched.pop_due(SimTime::MAX).expect("population is constant");
            black_box(ev);
            now = t.as_nanos();
            let at = now + 1 + rng.below(1_000_000);
            sched.schedule(SimTime(at), seq, 0, seq);
            seq += 1;
        });
    }

    // Tie burst: 64 same-timestamp schedules, then 64 pops, per iteration.
    {
        let mut sched = S::default();
        let mut seq = 0u64;
        let mut now = 0u64;
        s.bench(&format!("bursty_tie_64_{label}"), || {
            let at = SimTime(now + 1024);
            for _ in 0..64 {
                sched.schedule(at, seq, 0, seq);
                seq += 1;
            }
            for _ in 0..64 {
                let (t, _, ev) = sched.pop_due(SimTime::MAX).expect("just scheduled");
                black_box(ev);
                now = t.as_nanos();
            }
        });
    }

    // Timer churn: a ring of 64 armed timers; every iteration arms a new
    // one and cancels the oldest. Delays (8–64 us) far exceed the 64 ns
    // clock step times the ring length, so cancels always hit live timers —
    // nearly every event dies before delivery, and the cost measured is
    // schedule + cancel + dead-entry reclaim.
    {
        let mut sched = S::default();
        let mut rng = Rng::new(11);
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut ring: Vec<_> = (0..64)
            .map(|_| {
                let at = now + 8_192 + rng.below(57_344);
                let h = sched.schedule(SimTime(at), seq, 0, seq);
                seq += 1;
                h
            })
            .collect();
        let mut i = 0usize;
        s.bench(&format!("timer_churn_cancel_{label}"), || {
            now += 64;
            while let Some((_, _, ev)) = sched.pop_due(SimTime(now)) {
                black_box(ev);
            }
            let at = now + 8_192 + rng.below(57_344);
            let h = sched.schedule(SimTime(at), seq, 0, seq);
            seq += 1;
            sched.cancel(ring[i]);
            ring[i] = h;
            i = (i + 1) % ring.len();
        });
    }

    // Far-future skew: a 512-event population entirely beyond the wheel
    // horizon, replenished past the horizon on every pop.
    {
        const FAR: u64 = 1 << 42; // one full wheel horizon (~73 min)
        let mut sched = S::default();
        let mut rng = Rng::new(13);
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..512 {
            let at = now + FAR + rng.below(FAR);
            sched.schedule(SimTime(at), seq, 0, seq);
            seq += 1;
        }
        s.bench(&format!("far_future_skew_{label}"), || {
            let (t, _, ev) = sched.pop_due(SimTime::MAX).expect("population is constant");
            black_box(ev);
            now = t.as_nanos();
            let at = now + FAR + rng.below(FAR);
            sched.schedule(SimTime(at), seq, 0, seq);
            seq += 1;
        });
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut s = Suite::new("scheduler");
    if quick {
        s = s.quick();
    }
    bench_impl::<TimingWheel<u64>>(&mut s, "wheel");
    bench_impl::<BinaryHeapSched<u64>>(&mut s, "heap");
    s.finish();
}
