//! Exporters: JSON-lines metrics snapshot, Prometheus-style text, and Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! The emitters are pure functions of the telemetry state, so two identical
//! runs produce byte-identical artifacts — the same determinism contract the
//! experiment harness already enforces for its own outputs. This crate has
//! no dependencies, so it carries its own minimal JSON string escaper; the
//! round-trip tests in `fastrak-bench` parse the output with that crate's
//! full JSON parser.

use std::fmt::Write as _;

use crate::recorder::{AuditLog, DecisionKind, FlightRecorder, Severity};
use crate::registry::Registry;
use crate::span::SpanLog;

/// Escape `s` into a JSON string literal (quotes included).
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format an `f64` the way the bench JSON emitter does: finite, shortest
/// round-trip representation, always with a decimal point or exponent.
fn json_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

/// Render the registry as JSON lines: one object per metric, one per line.
///
/// Counters: `{"kind":"counter","name":...,"value":N}`. Gauges carry a
/// float. Histograms are summarized (count/mean/min/p50/p99/max).
pub fn metrics_jsonl(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, v) in reg.counters() {
        out.push_str("{\"kind\":\"counter\",\"name\":");
        json_str(&mut out, name);
        let _ = writeln!(out, ",\"value\":{v}}}");
    }
    for (name, v) in reg.gauges() {
        out.push_str("{\"kind\":\"gauge\",\"name\":");
        json_str(&mut out, name);
        out.push_str(",\"value\":");
        json_f64(&mut out, v);
        out.push_str("}\n");
    }
    for (name, h) in reg.hists() {
        out.push_str("{\"kind\":\"histogram\",\"name\":");
        json_str(&mut out, name);
        let _ = write!(out, ",\"count\":{},\"mean\":", h.count());
        json_f64(&mut out, h.mean());
        let _ = writeln!(
            out,
            ",\"min\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
            h.min(),
            h.quantile(0.5),
            h.quantile(0.99),
            h.max()
        );
    }
    out
}

/// Prometheus-ish name: dots become underscores, label braces survive.
fn prom_name(full: &str) -> String {
    match full.find('{') {
        Some(i) => format!("{}{}", full[..i].replace('.', "_"), prom_labels(&full[i..])),
        None => full.replace('.', "_"),
    }
}

/// `{k=v,k2=v2}` → `{k="v",k2="v2"}`.
fn prom_labels(braced: &str) -> String {
    let inner = &braced[1..braced.len() - 1];
    let mut out = String::from("{");
    for (i, pair) in inner.split(',').enumerate() {
        if i > 0 {
            out.push(',');
        }
        match pair.split_once('=') {
            Some((k, v)) => {
                let _ = write!(out, "{k}=\"{v}\"");
            }
            None => out.push_str(pair),
        }
    }
    out.push('}');
    out
}

/// Render the registry as Prometheus text exposition format.
pub fn prometheus_text(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, v) in reg.counters() {
        let _ = writeln!(out, "{} {v}", prom_name(name));
    }
    for (name, v) in reg.gauges() {
        let _ = write!(out, "{} ", prom_name(name));
        json_f64(&mut out, v);
        out.push('\n');
    }
    for (name, h) in reg.hists() {
        let n = prom_name(name);
        let _ = writeln!(out, "{n}_count {}", h.count());
        let _ = writeln!(out, "{n}_min {}", h.min());
        let _ = writeln!(out, "{n}_p50 {}", h.quantile(0.5));
        let _ = writeln!(out, "{n}_p99 {}", h.quantile(0.99));
        let _ = writeln!(out, "{n}_max {}", h.max());
    }
    out
}

/// Microseconds with nanosecond precision, as Chrome's `ts`/`dur` expect.
fn micros(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Render the span log (plus optional audit log) as Chrome trace-event JSON.
///
/// Layout: each component is a *process* (named via `process_name`
/// metadata), each flow id a *thread* within it, so a flow's path residency
/// ("vif" → "sriov") reads as consecutive slices on one Perfetto track.
/// Spans become complete ("X") events, instants become instant ("i")
/// events, and audited decisions become instants on the owning component.
pub fn chrome_trace(spans: &SpanLog, audit: Option<&AuditLog>) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
    };

    // process_name metadata for every component seen in spans/instants.
    let mut comps: Vec<u32> = spans
        .spans()
        .iter()
        .map(|s| s.comp.index())
        .chain(spans.instants().iter().map(|i| i.comp.index()))
        .collect();
    comps.sort_unstable();
    comps.dedup();
    for c in &comps {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{c},\"tid\":0,\"args\":{{\"name\":"
        );
        json_str(&mut out, spans.resolve(crate::span::CompId::from_index(*c)));
        out.push_str("}}");
    }

    for s in spans.spans() {
        sep(&mut out, &mut first);
        out.push_str("{\"ph\":\"X\",\"name\":");
        json_str(&mut out, &s.name);
        let _ = write!(
            out,
            ",\"pid\":{},\"tid\":{},\"ts\":",
            s.comp.index(),
            s.flow
        );
        micros(&mut out, s.start_ns);
        out.push_str(",\"dur\":");
        let end = if s.end_ns == crate::span::OPEN {
            s.start_ns
        } else {
            s.end_ns
        };
        micros(&mut out, end.saturating_sub(s.start_ns));
        out.push('}');
    }

    for i in spans.instants() {
        sep(&mut out, &mut first);
        out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"name\":");
        json_str(&mut out, &i.name);
        let _ = write!(
            out,
            ",\"pid\":{},\"tid\":{},\"ts\":",
            i.comp.index(),
            i.flow
        );
        micros(&mut out, i.at_ns);
        let _ = write!(
            out,
            ",\"args\":{{\"v0\":{},\"v1\":{},\"v2\":{}}}}}",
            i.vals[0], i.vals[1], i.vals[2]
        );
    }

    if let Some(audit) = audit {
        for d in audit.records() {
            sep(&mut out, &mut first);
            out.push_str("{\"ph\":\"i\",\"s\":\"g\",\"name\":");
            let kind = match d.kind {
                DecisionKind::Offload => "offload",
                DecisionKind::Demote => "demote",
            };
            json_str(&mut out, &format!("{kind} {}", d.subject));
            out.push_str(",\"pid\":0,\"tid\":0,\"ts\":");
            micros(&mut out, d.at_ns);
            out.push_str(",\"args\":{\"score\":");
            json_f64(&mut out, d.score);
            let _ = write!(
                out,
                ",\"sw_bps\":{},\"hw_bps\":{},\"entries_used\":{},\"capacity\":{}}}}}",
                d.fps_split.0, d.fps_split.1, d.entries_used, d.capacity
            );
        }
    }

    out.push_str("]}");
    out
}

/// Render the flight recorder as JSON lines (one entry per line, grouped by
/// component in interning order) — the "dump" format the controller emits
/// on anomalies and `--telemetry` writes alongside the metrics snapshot.
pub fn flight_jsonl(fr: &FlightRecorder) -> String {
    let mut out = String::new();
    for (comp, entries) in fr.all() {
        for e in entries {
            out.push_str("{\"comp\":");
            json_str(&mut out, comp);
            let sev = match e.severity {
                Severity::Info => "info",
                Severity::Warn => "warn",
                Severity::Error => "error",
            };
            let _ = write!(
                out,
                ",\"at_ns\":{},\"severity\":\"{sev}\",\"msg\":",
                e.at_ns
            );
            json_str(&mut out, &e.msg);
            let _ = writeln!(
                out,
                ",\"vals\":[{},{},{}]}}",
                e.vals[0], e.vals[1], e.vals[2]
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Severity;
    use crate::span::SpanLog;

    #[test]
    fn metrics_jsonl_lines_are_json_objects() {
        let mut r = Registry::default();
        let c = r.counter("sim.events", &[]);
        r.add(c, 7);
        let g = r.gauge("tor.occupancy", &[("tor", "tor0")]);
        r.gauge_set(g, 0.5);
        let h = r.histogram("lat", &[]);
        r.observe(h, 100);
        let s = metrics_jsonl(&r);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"sim.events\"") && lines[0].contains("\"value\":7"));
        assert!(lines[1].contains("tor.occupancy{tor=tor0}"));
        assert!(lines[2].contains("\"count\":1"));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn prometheus_rewrites_dots_and_quotes_labels() {
        let mut r = Registry::default();
        let c = r.counter("host.tx.frames", &[("server", "s0"), ("path", "hw")]);
        r.add(c, 3);
        let text = prometheus_text(&r);
        assert_eq!(text, "host_tx_frames{path=\"hw\",server=\"s0\"} 3\n");
    }

    #[test]
    fn chrome_trace_shape() {
        let mut l = SpanLog::default();
        l.set_enabled(true);
        let c = l.comp("s1/vm0");
        l.track_flow_path(1_000_000_000, c, 42, "vif");
        l.track_flow_path(1_500_000_000, c, 42, "sriov");
        l.finish(2_000_000_000);
        let t = chrome_trace(&l, None);
        assert!(t.starts_with("{\"traceEvents\":["));
        assert!(t.contains("\"process_name\""));
        assert!(t.contains("\"name\":\"vif\""));
        assert!(t.contains("\"name\":\"sriov\""));
        // sriov starts at 1.5s = 1_500_000 µs and runs 500_000 µs.
        assert!(t.contains("\"ts\":1500000.000,\"dur\":500000.000"));
    }

    #[test]
    fn flight_jsonl_includes_severity() {
        let mut fr = FlightRecorder::default();
        fr.set_enabled(true);
        fr.record(5, "ctrl", Severity::Error, "xact abandoned", [9, 2, 0]);
        let s = flight_jsonl(&fr);
        assert!(s.contains("\"severity\":\"error\""));
        assert!(s.contains("\"xact abandoned\""));
    }

    #[test]
    fn json_escaping() {
        let mut out = String::new();
        json_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }
}
