//! Typed metrics registry.
//!
//! Metrics are declared once — hierarchical dotted name plus a static label
//! set, e.g. `("host.tx.frames", &[("server", "s0"), ("path", "hw")])` — and
//! the registry interns the rendered name (`host.tx.frames{path=hw,server=s0}`)
//! into a dense id. After registration, a hot-path record is a bare array
//! index: no hashing, no allocation, no branch on an enabled flag.
//!
//! Counters are monotonic `u64`s, gauges are last-write-wins `f64`s, and
//! histograms are the log-bucketed [`Histogram`]. Components that already
//! keep cheap local counters mirror them in with [`Registry::set_counter`]
//! at snapshot time (pull model), which keeps the packet path untouched and
//! makes the registry the single source of truth at export time.

use crate::fxhash::FxHashMap;
use crate::hist::Histogram;

/// Dense handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

/// Dense handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaugeId(u32);

/// Dense handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistId(u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Hist,
}

/// The metrics registry. `Default` is empty (and therefore free).
#[derive(Debug, Default)]
pub struct Registry {
    by_name: FxHashMap<String, (Kind, u32)>,
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<f64>,
    hist_names: Vec<String>,
    hists: Vec<Histogram>,
}

/// Render `name` + labels as `name{k1=v1,k2=v2}` (labels sorted by key so
/// the same set always produces the same metric identity).
fn render(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut ls: Vec<(&str, &str)> = labels.to_vec();
    ls.sort_unstable();
    let mut out = String::with_capacity(name.len() + 16 * ls.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in ls.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

impl Registry {
    /// Register (or look up) a counter. Re-registering the same rendered
    /// name returns the existing id.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)]) -> CounterId {
        let full = render(name, labels);
        if let Some(&(kind, id)) = self.by_name.get(&full) {
            assert_eq!(kind, Kind::Counter, "metric {full} registered as {kind:?}");
            return CounterId(id);
        }
        let id = self.counters.len() as u32;
        self.by_name.insert(full.clone(), (Kind::Counter, id));
        self.counter_names.push(full);
        self.counters.push(0);
        CounterId(id)
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> GaugeId {
        let full = render(name, labels);
        if let Some(&(kind, id)) = self.by_name.get(&full) {
            assert_eq!(kind, Kind::Gauge, "metric {full} registered as {kind:?}");
            return GaugeId(id);
        }
        let id = self.gauges.len() as u32;
        self.by_name.insert(full.clone(), (Kind::Gauge, id));
        self.gauge_names.push(full);
        self.gauges.push(0.0);
        GaugeId(id)
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)]) -> HistId {
        let full = render(name, labels);
        if let Some(&(kind, id)) = self.by_name.get(&full) {
            assert_eq!(kind, Kind::Hist, "metric {full} registered as {kind:?}");
            return HistId(id);
        }
        let id = self.hists.len() as u32;
        self.by_name.insert(full.clone(), (Kind::Hist, id));
        self.hist_names.push(full);
        self.hists.push(Histogram::new());
        HistId(id)
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0 as usize] += 1;
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize] += n;
    }

    /// Overwrite a counter with an absolute value (snapshot mirroring of a
    /// component-local counter; the registry stays the export-time truth).
    #[inline]
    pub fn set_counter(&mut self, id: CounterId, v: u64) {
        self.counters[id.0 as usize] = v;
    }

    /// Current value of a counter.
    #[inline]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Set a gauge.
    #[inline]
    pub fn gauge_set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0 as usize] = v;
    }

    /// Current value of a gauge.
    #[inline]
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0 as usize]
    }

    /// Record a sample into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0 as usize].record(v);
    }

    /// Read access to a histogram.
    pub fn hist(&self, id: HistId) -> &Histogram {
        &self.hists[id.0 as usize]
    }

    /// Look up a counter by rendered name (`name` or `name{k=v,...}` with
    /// keys sorted). For tests and experiment reporting.
    pub fn counter_by_name(&self, full: &str) -> Option<u64> {
        match self.by_name.get(full) {
            Some(&(Kind::Counter, id)) => Some(self.counters[id as usize]),
            _ => None,
        }
    }

    /// Look up a gauge by rendered name.
    pub fn gauge_by_name(&self, full: &str) -> Option<f64> {
        match self.by_name.get(full) {
            Some(&(Kind::Gauge, id)) => Some(self.gauges[id as usize]),
            _ => None,
        }
    }

    /// Look up a histogram by rendered name.
    pub fn hist_by_name(&self, full: &str) -> Option<&Histogram> {
        match self.by_name.get(full) {
            Some(&(Kind::Hist, id)) => Some(&self.hists[id as usize]),
            _ => None,
        }
    }

    /// All counters as (rendered name, value), in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_names
            .iter()
            .zip(&self.counters)
            .map(|(n, &v)| (n.as_str(), v))
    }

    /// All gauges as (rendered name, value), in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauge_names
            .iter()
            .zip(&self.gauges)
            .map(|(n, &v)| (n.as_str(), v))
    }

    /// All histograms as (rendered name, histogram), in registration order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hist_names
            .iter()
            .zip(&self.hists)
            .map(|(n, h)| (n.as_str(), h))
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Total number of registered metrics.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_dedups_and_counts() {
        let mut r = Registry::default();
        let a = r.counter("sim.events", &[]);
        let b = r.counter("sim.events", &[]);
        assert_eq!(a, b);
        r.inc(a);
        r.add(b, 2);
        assert_eq!(r.counter_by_name("sim.events"), Some(3));
    }

    #[test]
    fn labels_sort_into_one_identity() {
        let mut r = Registry::default();
        let a = r.counter("host.tx", &[("path", "hw"), ("server", "s0")]);
        let b = r.counter("host.tx", &[("server", "s0"), ("path", "hw")]);
        assert_eq!(a, b);
        r.inc(a);
        assert_eq!(r.counter_by_name("host.tx{path=hw,server=s0}"), Some(1));
    }

    #[test]
    fn gauges_and_histograms() {
        let mut r = Registry::default();
        let g = r.gauge("tor.occupancy", &[]);
        r.gauge_set(g, 0.75);
        assert_eq!(r.gauge_by_name("tor.occupancy"), Some(0.75));
        let h = r.histogram("tcp.cwnd", &[("server", "s1")]);
        r.observe(h, 10);
        r.observe(h, 20);
        let hist = r.hist_by_name("tcp.cwnd{server=s1}").unwrap();
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn set_counter_mirrors_absolute_values() {
        let mut r = Registry::default();
        let c = r.counter("sim.fault.dropped", &[]);
        r.set_counter(c, 41);
        r.set_counter(c, 42); // snapshots overwrite, not accumulate
        assert_eq!(r.counter_value(c), 42);
    }

    #[test]
    fn unknown_names_are_none() {
        let r = Registry::default();
        assert!(r.is_empty());
        assert_eq!(r.counter_by_name("nope"), None);
        assert_eq!(r.gauge_by_name("nope"), None);
        assert!(r.hist_by_name("nope").is_none());
    }

    #[test]
    fn iteration_in_registration_order() {
        let mut r = Registry::default();
        r.counter("b", &[]);
        r.counter("a", &[]);
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
        assert_eq!(r.len(), 2);
    }
}
