//! HDR-style log-bucketed histogram for latency percentiles.
//!
//! Moved here from `fastrak-sim`'s `stats` module so the registry can own
//! histograms without a dependency cycle (`fastrak-sim` re-exports it, and
//! layers duration-typed helpers on top). The histogram trades a bounded
//! ~1.6% relative error for O(1) record cost and fixed memory, which is the
//! standard engineering choice (HdrHistogram) for latency capture.

/// Number of sub-buckets per power-of-two bucket; 64 gives a worst-case
/// relative quantile error of 1/64 ≈ 1.6%.
const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = 6;
/// Bucket count covering values up to 2^40 ns (~18 minutes) with 64
/// sub-buckets each, plus the linear region below 64.
const N_BUCKETS: usize =
    ((40 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize + SUB_BUCKETS as usize;

/// Log-bucketed histogram for non-negative integer samples (latencies in ns).
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u32>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(v: u64) -> usize {
        if v < SUB_BUCKETS {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let shift = msb - SUB_BITS;
        let sub = (v >> shift) - SUB_BUCKETS; // in [0, 64)
        let idx = ((shift as u64 + 1) * SUB_BUCKETS + sub) as usize;
        idx.min(N_BUCKETS - 1)
    }

    /// Representative (upper-bound) value for a bucket index.
    fn value_for(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB_BUCKETS {
            return idx;
        }
        let shift = idx / SUB_BUCKETS - 1;
        let sub = idx % SUB_BUCKETS;
        (SUB_BUCKETS + sub) << shift
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean of the recorded samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q` in [0,1]; worst-case relative error ~1.6%.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c as u64;
            if seen >= target {
                return Self::value_for(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(n={}, mean={:.1}, p50={}, p99={}, max={})",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.quantile(0.5), 31);
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        h.record(1_000);
        h.record(3_000);
        assert!((h.mean() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantile_bounded_error() {
        let mut h = Histogram::new();
        // Uniform samples 1..=100_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, expect) in &[(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.02, "q{q}: got {got} expect {expect} err {err}");
        }
    }

    #[test]
    fn histogram_empty_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_single_sample_p99_is_exact() {
        // With one sample every quantile must clamp to that exact value,
        // even though the bucket's representative value differs.
        let mut h = Histogram::new();
        h.record(123_457);
        assert_eq!(h.quantile(0.0), 123_457);
        assert_eq!(h.quantile(0.5), 123_457);
        assert_eq!(h.quantile(0.99), 123_457);
        assert_eq!(h.quantile(1.0), 123_457);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_saturates_at_top_bucket() {
        // Values past the 2^40 design range all land in the final bucket:
        // counts stay exact, quantiles clamp to the true max, no panic.
        let mut h = Histogram::new();
        h.record(1 << 50);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // Both samples share the saturated bucket, so quantiles clamp into
        // the exact [min, max] envelope instead of the bucket bound.
        for q in [0.01, 0.5, 1.0] {
            let v = h.quantile(q);
            assert!(v >= 1 << 50, "q={q} v={v}");
        }
    }

    #[test]
    fn histogram_merge_then_percentile_equivalence() {
        // Recording a stream into one histogram and recording its halves
        // into two then merging must agree on every summary statistic.
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=10_000u64 {
            let v = v * 37; // spread across buckets
            whole.record(v);
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }
}
