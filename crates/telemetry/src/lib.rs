//! # fastrak-telemetry
//!
//! The reproduction's observability plane. FasTrak is measurement-driven —
//! the Measurement Engine samples per-flow Δp/Δb and the controller acts on
//! scores — so the simulator gets the same treatment: a first-class,
//! deterministic telemetry subsystem instead of ad-hoc counter structs.
//!
//! Four pillars, all dependency-free and usable from any crate in the
//! workspace (this crate sits *below* `fastrak-sim`):
//!
//! * [`registry`] — a typed metrics registry. Hierarchical dotted names plus
//!   static label sets are interned **at registration** into dense ids
//!   ([`CounterId`] / [`GaugeId`] / [`HistId`]), so a hot-path record is an
//!   array index, not a hash lookup.
//! * [`span`] — sim-time span tracing for flow lifecycles (software path →
//!   offload transaction → hardware path → demote), with interned component
//!   ids so an enabled trace never allocates per record.
//! * [`recorder`] — a flight recorder (per-component severity-tagged bounded
//!   rings the controller dumps on anomalies) and a decision audit log
//!   (every offload/demote with score, FPS split, and fast-path occupancy).
//! * [`export`] — JSON-lines snapshot, Prometheus-style text, and Chrome
//!   trace-event JSON (Perfetto-loadable) renderers.
//!
//! ## Zero-cost contract
//!
//! A default-constructed [`Telemetry`] must cost nothing on the packet path
//! and must never perturb the event stream. Concretely:
//!
//! * nothing in this crate schedules events or consumes simulation RNG;
//! * spans, flight recorder, and audit log are off by default behind a
//!   precomputed `enabled()` branch (the fault plane's `idle` precedent);
//! * registered counters are plain array slots — components that mirror
//!   their own cheap counters into the registry do so at *snapshot* time
//!   (pull model), not per packet.
//!
//! The perf gate holds `telemetry_disabled_kernel_100k` within noise of the
//! hook-free kernel bench, and the determinism suite asserts bit-identical
//! runs with telemetry off.

pub mod export;
pub mod fxhash;
pub mod hist;
pub mod intern;
pub mod recorder;
pub mod registry;
pub mod span;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use hist::Histogram;
pub use intern::{Interner, Istr};
pub use recorder::{
    AuditLog, DecisionKind, DecisionRecord, FlightRecord, FlightRecorder, Severity,
};
pub use registry::{CounterId, GaugeId, HistId, Registry};
pub use span::{CompId, Span, SpanId, SpanLog};

/// The full observability plane, as embedded in the simulation context.
///
/// `Default` yields a fully disabled plane: empty registry, spans off,
/// flight recorder off, audit log off.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Typed metrics registry (counters / gauges / histograms).
    pub registry: Registry,
    /// Flow-lifecycle span log (sim-time, interned components).
    pub spans: SpanLog,
    /// Per-component anomaly flight recorder.
    pub flight: FlightRecorder,
    /// Offload/demote decision audit log.
    pub audit: AuditLog,
}

impl Telemetry {
    /// Enable every recording part (registry needs no switch: it only costs
    /// what callers register).
    pub fn enable_all(&mut self) {
        self.spans.set_enabled(true);
        self.flight.set_enabled(true);
        self.audit.set_enabled(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_disabled() {
        let t = Telemetry::default();
        assert!(!t.spans.enabled());
        assert!(!t.flight.enabled());
        assert!(!t.audit.enabled());
        assert!(t.registry.is_empty());
    }

    #[test]
    fn enable_all_flips_every_part() {
        let mut t = Telemetry::default();
        t.enable_all();
        assert!(t.spans.enabled());
        assert!(t.flight.enabled());
        assert!(t.audit.enabled());
    }
}
