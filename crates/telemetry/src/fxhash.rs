//! A fast, non-cryptographic hasher for the simulator's per-packet maps.
//!
//! The default `SipHash` behind `std::collections::HashMap` is DoS-resistant
//! but costs tens of nanoseconds per small key — real overhead when every
//! simulated packet does several exact-match lookups (vswitch datapath, flow
//! placer, VRF, tunnel directory). Inside a deterministic simulation there is
//! no untrusted input, so we use the multiply-xor scheme popularized by
//! rustc's `FxHasher`: one rotate, one xor, one multiply per word of input.
//!
//! Implemented in-repo (no external dependency) and re-exported as
//! [`FxHashMap`] / [`FxHashSet`] so hot maps across the workspace can opt in
//! with a type alias swap.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio multiplier (2^64 / φ), as used by rustc's FxHasher.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher: `h = (rotl5(h) ^ word) * SEED` per 8-byte word.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(w));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut w = [0u8; 4];
            w.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u32::from_le_bytes(w) as u64);
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; deterministic (no per-map random state).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abcdef"), hash_of(&"abcdef"));
        assert_eq!(hash_of(&(7u32, 9u16)), hash_of(&(7u32, 9u16)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test — just a sanity check that the mixer isn't
        // degenerate for small integer keys, the common case in the tables.
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            seen.insert(hash_of(&i));
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn odd_length_byte_strings_hash_differently() {
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3, 0][..]));
        assert_ne!(hash_of(&[0u8; 7][..]), hash_of(&[0u8; 8][..]));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }
}
