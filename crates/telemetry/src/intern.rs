//! String interning for trace/span component names.
//!
//! `TraceRing` used to clone a `String` per pushed record — measurable churn
//! when a packet-rate trace is enabled. The interner hands out [`Istr`]s
//! (shared, immutable strings): the first push of a given component name
//! allocates once, every later push is a reference-count bump.
//!
//! [`Istr`] derefs to `str`, so existing call sites that match on
//! `record.who` (`starts_with`, `as_bytes`, comparisons against literals)
//! keep working unchanged.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::fxhash::FxHashMap;

/// An interned, immutable string. Cloning is a ref-count bump.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Istr(Arc<str>);

impl Istr {
    /// Intern-free construction (allocates); prefer [`Interner::intern`]
    /// when the same string recurs.
    pub fn new(s: &str) -> Self {
        Istr(Arc::from(s))
    }

    /// The string contents.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for Istr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Istr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Istr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Istr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Istr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<Istr> for str {
    fn eq(&self, other: &Istr) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Istr> for &str {
    fn eq(&self, other: &Istr) -> bool {
        *self == other.as_str()
    }
}

impl fmt::Debug for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Istr {
    fn from(s: &str) -> Self {
        Istr::new(s)
    }
}

/// Deduplicating string store. Also hands out dense `u32` ids for callers
/// that want array-indexed per-component state (span log, flight recorder).
#[derive(Debug, Default)]
pub struct Interner {
    by_str: FxHashMap<Istr, u32>,
    strings: Vec<Istr>,
}

impl Interner {
    /// Intern `s`, allocating only on first sight.
    pub fn intern(&mut self, s: &str) -> Istr {
        if let Some(&id) = self.by_str.get(s) {
            return self.strings[id as usize].clone();
        }
        let i = Istr::new(s);
        let id = self.strings.len() as u32;
        self.by_str.insert(i.clone(), id);
        self.strings.push(i.clone());
        i
    }

    /// Intern `s` and return its dense id.
    pub fn intern_id(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.by_str.get(s) {
            return id;
        }
        let i = Istr::new(s);
        let id = self.strings.len() as u32;
        self.by_str.insert(i.clone(), id);
        self.strings.push(i);
        id
    }

    /// The string behind a dense id.
    pub fn resolve(&self, id: u32) -> &Istr {
        &self.strings[id as usize]
    }

    /// Dense id of an already-interned string, if any (no insertion).
    pub fn get(&self, s: &str) -> Option<u32> {
        self.by_str.get(s).copied()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_to_same_allocation() {
        let mut i = Interner::default();
        let a = i.intern("s0/vm1");
        let b = i.intern("s0/vm1");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn dense_ids_are_stable_and_resolvable() {
        let mut i = Interner::default();
        let a = i.intern_id("tor0");
        let b = i.intern_id("s1");
        assert_eq!(i.intern_id("tor0"), a);
        assert_eq!(i.resolve(a).as_str(), "tor0");
        assert_eq!(i.resolve(b).as_str(), "s1");
    }

    #[test]
    fn istr_behaves_like_str() {
        let s = Istr::new("s1/vm2");
        assert!(s.starts_with("s1"));
        assert_eq!(s.as_bytes(), b"s1/vm2");
        assert_eq!(s, "s1/vm2");
        assert_eq!("s1/vm2", s);
        assert_eq!(format!("{s}"), "s1/vm2");
    }
}
