//! Sim-time span tracing for flow lifecycles.
//!
//! A span is `(component, name, flow, start_ns, end_ns)` — e.g. the interval
//! a flow spent on the software path, the offload transaction from first
//! install attempt through ack (retries included), or the hardware residency
//! until demotion. Components and span names are interned, so recording is
//! allocation-free after first sight of each string.
//!
//! Times are plain `u64` nanoseconds (this crate sits below `fastrak-sim`
//! and cannot name `SimTime`; callers pass `now.as_nanos()`).
//!
//! Off by default: every record method first checks a plain bool, the same
//! precomputed short-circuit the fault plane and `TraceRing` use, so a
//! disabled log costs one predictable branch.

use crate::fxhash::FxHashMap;
use crate::intern::{Interner, Istr};

/// Interned component id (dense; resolves via [`SpanLog::resolve`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompId(pub(crate) u32);

impl CompId {
    /// Dense index (exporters key processes on it).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuild from a dense index previously returned by [`index`](Self::index).
    pub fn from_index(i: u32) -> CompId {
        CompId(i)
    }
}

/// Handle to an open span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

/// End sentinel for a span still open.
pub const OPEN: u64 = u64::MAX;

/// One recorded interval.
#[derive(Debug, Clone)]
pub struct Span {
    /// Component the span belongs to (a server, the ToR, the controller).
    pub comp: CompId,
    /// Span name, e.g. "vif", "sriov", "offload-xact".
    pub name: Istr,
    /// Flow (or transaction) identifier grouping related spans.
    pub flow: u64,
    /// Start, in sim nanoseconds.
    pub start_ns: u64,
    /// End, in sim nanoseconds ([`OPEN`] while unfinished).
    pub end_ns: u64,
}

/// A point event (mark on the timeline, zero duration).
#[derive(Debug, Clone)]
pub struct Instant {
    /// Component that recorded it.
    pub comp: CompId,
    /// Mark name, e.g. "me-sample", "score", "rollback".
    pub name: Istr,
    /// Flow (or transaction) identifier.
    pub flow: u64,
    /// When, in sim nanoseconds.
    pub at_ns: u64,
    /// Up to three numeric attributes.
    pub vals: [u64; 3],
}

/// Bounded span/instant log. `Default` is disabled and empty.
#[derive(Debug)]
pub struct SpanLog {
    enabled: bool,
    capacity: usize,
    interner: Interner,
    spans: Vec<Span>,
    instants: Vec<Instant>,
    /// Open "path residency" span per (component, flow), with its name.
    open_path: FxHashMap<(u32, u64), u32>,
    dropped: u64,
}

impl Default for SpanLog {
    fn default() -> Self {
        SpanLog {
            enabled: false,
            capacity: 1 << 20,
            interner: Interner::default(),
            spans: Vec::new(),
            instants: Vec::new(),
            open_path: FxHashMap::default(),
            dropped: 0,
        }
    }
}

impl SpanLog {
    /// Turn span recording on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is span recording enabled? Hot paths branch on this before doing any
    /// work (the zero-cost-when-disabled contract).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Intern a component name.
    pub fn comp(&mut self, name: &str) -> CompId {
        CompId(self.interner.intern_id(name))
    }

    /// The name behind a component id.
    pub fn resolve(&self, comp: CompId) -> &str {
        self.interner.resolve(comp.0)
    }

    fn room(&mut self) -> bool {
        if self.spans.len() + self.instants.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        true
    }

    /// Open a span. Returns a handle valid until the log is cleared.
    pub fn begin(&mut self, now_ns: u64, comp: CompId, name: &str, flow: u64) -> Option<SpanId> {
        if !self.enabled || !self.room() {
            return None;
        }
        let name = self.interner.intern(name);
        let id = SpanId(self.spans.len() as u32);
        self.spans.push(Span {
            comp,
            name,
            flow,
            start_ns: now_ns,
            end_ns: OPEN,
        });
        Some(id)
    }

    /// Close a span opened with [`begin`](Self::begin).
    pub fn end(&mut self, now_ns: u64, id: SpanId) {
        if let Some(s) = self.spans.get_mut(id.0 as usize) {
            if s.end_ns == OPEN {
                s.end_ns = now_ns;
            }
        }
    }

    /// Record a point event.
    pub fn instant(&mut self, now_ns: u64, comp: CompId, name: &str, flow: u64, vals: [u64; 3]) {
        if !self.enabled || !self.room() {
            return;
        }
        let name = self.interner.intern(name);
        self.instants.push(Instant {
            comp,
            name,
            flow,
            at_ns: now_ns,
            vals,
        });
    }

    /// Track which path a flow currently rides on `comp`: the first call
    /// opens a span named `path`; a later call with a different path closes
    /// the open span at `now_ns` and opens the next one. Same-path calls are
    /// no-ops, so this is safe to invoke per packet (after the `enabled()`
    /// guard).
    pub fn track_flow_path(&mut self, now_ns: u64, comp: CompId, flow: u64, path: &str) {
        if !self.enabled {
            return;
        }
        if let Some(&idx) = self.open_path.get(&(comp.0, flow)) {
            if self.spans[idx as usize].name == *path {
                return;
            }
            self.spans[idx as usize].end_ns = now_ns;
        }
        if !self.room() {
            self.open_path.remove(&(comp.0, flow));
            return;
        }
        let name = self.interner.intern(path);
        let idx = self.spans.len() as u32;
        self.spans.push(Span {
            comp,
            name,
            flow,
            start_ns: now_ns,
            end_ns: OPEN,
        });
        self.open_path.insert((comp.0, flow), idx);
    }

    /// Close all open spans at `now_ns` (end of run).
    pub fn finish(&mut self, now_ns: u64) {
        for s in &mut self.spans {
            if s.end_ns == OPEN {
                s.end_ns = now_ns;
            }
        }
        self.open_path.clear();
    }

    /// All recorded spans, in open order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All recorded instants, in record order.
    pub fn instants(&self) -> &[Instant] {
        &self.instants
    }

    /// Records rejected because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut l = SpanLog::default();
        let c = l.comp("s0");
        assert!(l.begin(0, c, "vif", 7).is_none());
        l.track_flow_path(0, c, 7, "vif");
        l.instant(0, c, "mark", 7, [0; 3]);
        assert!(l.spans().is_empty());
        assert!(l.instants().is_empty());
    }

    #[test]
    fn begin_end_records_interval() {
        let mut l = SpanLog::default();
        l.set_enabled(true);
        let c = l.comp("ctrl");
        let s = l.begin(100, c, "offload-xact", 42).unwrap();
        l.end(350, s);
        let spans = l.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start_ns, 100);
        assert_eq!(spans[0].end_ns, 350);
        assert_eq!(spans[0].name, "offload-xact");
        assert_eq!(l.resolve(spans[0].comp), "ctrl");
    }

    #[test]
    fn track_flow_path_closes_previous_on_change() {
        let mut l = SpanLog::default();
        l.set_enabled(true);
        let c = l.comp("s0");
        l.track_flow_path(0, c, 7, "vif");
        l.track_flow_path(10, c, 7, "vif"); // same path: no-op
        l.track_flow_path(1_000, c, 7, "sriov");
        l.finish(2_000);
        let spans = l.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "vif");
        assert_eq!((spans[0].start_ns, spans[0].end_ns), (0, 1_000));
        assert_eq!(spans[1].name, "sriov");
        assert_eq!((spans[1].start_ns, spans[1].end_ns), (1_000, 2_000));
    }

    #[test]
    fn flows_and_components_are_independent() {
        let mut l = SpanLog::default();
        l.set_enabled(true);
        let a = l.comp("s0");
        let b = l.comp("s1");
        l.track_flow_path(0, a, 1, "vif");
        l.track_flow_path(0, b, 1, "sriov");
        l.track_flow_path(0, a, 2, "vif");
        assert_eq!(l.spans().len(), 3);
    }

    #[test]
    fn capacity_drops_new_records() {
        let mut l = SpanLog {
            capacity: 2,
            ..SpanLog::default()
        };
        l.set_enabled(true);
        let c = l.comp("x");
        for f in 0..5 {
            l.begin(0, c, "s", f);
        }
        assert_eq!(l.spans().len(), 2);
        assert_eq!(l.dropped(), 3);
    }
}
