//! Flight recorder and decision audit log.
//!
//! The flight recorder keeps a small severity-tagged ring per component —
//! cheap enough to leave on during faulty runs — which the controller dumps
//! when something anomalous happens (an install transaction is abandoned, a
//! ToR enters failure cooldown, a reconcile sweep repairs drift). The audit
//! log records every offload/demote decision with the evidence the paper's
//! §4 decision engine used: the score, the FPS rate split, and fast-path
//! memory occupancy at decision time.
//!
//! Both are disabled by default behind a plain bool; messages are interned
//! so an enabled recorder does not allocate per record after first sight of
//! each message string.

use std::collections::VecDeque;

use crate::intern::{Interner, Istr};

/// How alarming a flight-recorder entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine lifecycle (epoch rolled, decision made).
    Info,
    /// Degraded but handled (retry, drift repaired).
    Warn,
    /// Gave up or entered a protective mode (abandonment, cooldown).
    Error,
}

/// One flight-recorder entry.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// When, in sim nanoseconds.
    pub at_ns: u64,
    /// Severity tag.
    pub severity: Severity,
    /// Interned message (stable per call site).
    pub msg: Istr,
    /// Up to three numeric attributes (xid, attempt, drift...).
    pub vals: [u64; 3],
}

/// Per-component bounded rings of [`FlightRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: bool,
    ring_capacity: usize,
    comps: Interner,
    msgs: Interner,
    rings: Vec<VecDeque<FlightRecord>>,
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder {
            enabled: false,
            ring_capacity: 256,
            comps: Interner::default(),
            msgs: Interner::default(),
            rings: Vec::new(),
            dropped: 0,
        }
    }
}

impl FlightRecorder {
    /// Turn recording on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is recording enabled?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn comp_idx(&mut self, comp: &str) -> usize {
        let id = self.comps.intern_id(comp) as usize;
        while self.rings.len() <= id {
            self.rings
                .push(VecDeque::with_capacity(self.ring_capacity.min(64)));
        }
        id
    }

    /// Record an entry into `comp`'s ring (evicting the oldest when full).
    pub fn record(
        &mut self,
        now_ns: u64,
        comp: &str,
        severity: Severity,
        msg: &str,
        vals: [u64; 3],
    ) {
        if !self.enabled {
            return;
        }
        let idx = self.comp_idx(comp);
        let msg = self.msgs.intern(msg);
        let ring = &mut self.rings[idx];
        if ring.len() == self.ring_capacity {
            ring.pop_front();
            self.dropped += 1;
        }
        ring.push_back(FlightRecord {
            at_ns: now_ns,
            severity,
            msg,
            vals,
        });
    }

    /// Dump one component's ring, oldest first (empty if unknown).
    pub fn dump(&self, comp: &str) -> Vec<FlightRecord> {
        self.comps
            .get(comp)
            .map(|i| self.rings[i as usize].iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Every component with at least one entry, with its ring.
    pub fn all(&self) -> impl Iterator<Item = (&str, impl Iterator<Item = &FlightRecord>)> {
        self.rings
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(i, r)| (self.comps.resolve(i as u32).as_str(), r.iter()))
    }

    /// Entries evicted due to ring capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// What kind of decision the controller took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Promote an aggregate to the hardware fast path.
    Offload,
    /// Demote an aggregate back to software.
    Demote,
}

/// One audited controller decision.
#[derive(Debug, Clone)]
pub struct DecisionRecord {
    /// When, in sim nanoseconds.
    pub at_ns: u64,
    /// Offload or demote.
    pub kind: DecisionKind,
    /// The aggregate decided on, e.g. "t7/10.0.0.3".
    pub subject: Istr,
    /// Decision-engine score at decision time.
    pub score: f64,
    /// FPS rate split (software bps, hardware bps) at decision time.
    pub fps_split: (u64, u64),
    /// Fast-path entries in use at decision time.
    pub entries_used: u64,
    /// Fast-path entry budget.
    pub capacity: u64,
}

/// Append-only log of every offload/demote decision.
#[derive(Debug)]
pub struct AuditLog {
    enabled: bool,
    capacity: usize,
    interner: Interner,
    records: Vec<DecisionRecord>,
    dropped: u64,
}

impl Default for AuditLog {
    fn default() -> Self {
        AuditLog {
            enabled: false,
            capacity: 1 << 16,
            interner: Interner::default(),
            records: Vec::new(),
            dropped: 0,
        }
    }
}

impl AuditLog {
    /// Turn auditing on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is auditing enabled?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one decision.
    #[allow(clippy::too_many_arguments)]
    pub fn decision(
        &mut self,
        now_ns: u64,
        kind: DecisionKind,
        subject: &str,
        score: f64,
        fps_split: (u64, u64),
        entries_used: u64,
        capacity: u64,
    ) {
        if !self.enabled {
            return;
        }
        if self.records.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let subject = self.interner.intern(subject);
        self.records.push(DecisionRecord {
            at_ns: now_ns,
            kind,
            subject,
            score,
            fps_split,
            entries_used,
            capacity,
        });
    }

    /// All decisions, in record order.
    pub fn records(&self) -> &[DecisionRecord] {
        &self.records
    }

    /// Decisions rejected because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_silent() {
        let mut fr = FlightRecorder::default();
        fr.record(0, "tor_ctrl", Severity::Error, "abandoned", [1, 2, 3]);
        assert!(fr.dump("tor_ctrl").is_empty());
        let mut al = AuditLog::default();
        al.decision(0, DecisionKind::Offload, "t1/ip", 1.0, (0, 0), 0, 10);
        assert!(al.records().is_empty());
    }

    #[test]
    fn rings_are_per_component_and_bounded() {
        let mut fr = FlightRecorder {
            ring_capacity: 2,
            ..FlightRecorder::default()
        };
        fr.set_enabled(true);
        for i in 0..5 {
            fr.record(i, "a", Severity::Warn, "m", [i, 0, 0]);
        }
        fr.record(9, "b", Severity::Info, "other", [0; 3]);
        let a = fr.dump("a");
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].vals[0], 3);
        assert_eq!(a[1].vals[0], 4);
        assert_eq!(fr.dropped(), 3);
        assert_eq!(fr.dump("b").len(), 1);
        assert_eq!(fr.all().count(), 2);
    }

    #[test]
    fn audit_log_keeps_decision_evidence() {
        let mut al = AuditLog::default();
        al.set_enabled(true);
        al.decision(
            1_000,
            DecisionKind::Offload,
            "t7/10.0.0.3",
            0.9,
            (1_000, 9_000),
            3,
            2048,
        );
        al.decision(
            2_000,
            DecisionKind::Demote,
            "t7/10.0.0.3",
            0.1,
            (500, 0),
            2,
            2048,
        );
        let r = al.records();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].kind, DecisionKind::Offload);
        assert_eq!(r[0].fps_split, (1_000, 9_000));
        assert_eq!(r[1].kind, DecisionKind::Demote);
        assert_eq!(r[1].subject, "t7/10.0.0.3");
    }
}
