//! Pluggable fast-path allocation policies: per-tenant fairness for the
//! ToR's bounded fast-path memory.
//!
//! The paper assumes cooperative tenants competing only on score; OSMOSIS
//! and "Logically Isolated, Actually Unpredictable?" (PAPERS.md) show the
//! real multi-tenant failure mode is interference — an adversarial tenant
//! that thrashes the offloaded set starves its neighbours of fast-path
//! entries. A [`FastPathPolicy`] bounds how many entries each tenant's
//! aggregates may claim during the decision engines' greedy walk:
//!
//! * [`FastPathPolicy::Unrestricted`] — the paper's behaviour and the
//!   differential-oracle baseline: pure score order, no per-tenant
//!   bookkeeping (and none is paid: the walk sees a no-op tracker).
//! * [`FastPathPolicy::StaticQuota`] — a hard per-tenant entry cap.
//!   Predictable and simple, but not work-conserving: entries reserved for
//!   an idle tenant stay empty.
//! * [`FastPathPolicy::WeightedScore`] — OSMOSIS-style weighted fair share:
//!   each tenant's cap is its weighted share of the budget, weighted by
//!   `weight × Σ score` over its eligible aggregates, water-filled so share
//!   a tenant cannot use (fewer eligible aggregates than entries) is
//!   redistributed to the others. Work-conserving and demand-adaptive.
//!
//! Both decision engines run the identical cap logic in the identical
//! order, so decisions stay bit-equal between the incremental engine and
//! the `full-scan-de` oracle (asserted by the `de_differential` suite). For
//! `WeightedScore` that requires care with floating point: per-tenant score
//! mass is accumulated in **rank order** (the full-scan engine iterates its
//! sorted ranking, the incremental engine its score-ordered index — the
//! same sequence by construction), so the f64 sums are bit-identical.
//!
//! **Hysteresis interaction.** The engines' displaced-incumbent pass may
//! swap an already-installed incumbent back in place of a suppressed
//! newcomer *after* the capped walk. The incumbent is already in hardware,
//! so this can transiently hold a tenant one entry above its cap for the
//! round; the next round's walk re-evaluates from scratch and converges.
//! This is deliberate — the alternative (evicting the incumbent) is exactly
//! the rule churn hysteresis exists to avoid.

use std::collections::{BTreeMap, HashMap};

use fastrak_net::addr::TenantId;
use fastrak_sim::FxHashMap;

/// How fast-path entries are allocated across tenants (see module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub enum FastPathPolicy {
    /// Pure score order — the paper's behaviour, the oracle baseline.
    #[default]
    Unrestricted,
    /// Hard per-tenant entry caps (not work-conserving).
    StaticQuota {
        /// Cap for tenants without an explicit entry.
        default_cap: usize,
        /// Per-tenant overrides.
        caps: HashMap<TenantId, usize>,
    },
    /// Weighted fair share of entries by decision-engine score mass,
    /// water-filled (work-conserving).
    WeightedScore {
        /// Per-tenant weights (default 1.0).
        weights: HashMap<TenantId, f64>,
    },
}

impl FastPathPolicy {
    /// True for the zero-bookkeeping baseline policy.
    pub fn is_unrestricted(&self) -> bool {
        matches!(self, FastPathPolicy::Unrestricted)
    }
}

/// Per-walk tenant cap tracker. Built once per decide epoch by
/// [`caps_for_walk`]; the greedy walk asks it to admit each candidate (or
/// each group's not-yet-chosen members) and it enforces the per-tenant
/// budget. Under `Unrestricted` it is a no-op that touches no state.
#[derive(Debug)]
pub(crate) struct TenantCaps {
    /// `None` → unrestricted: every admit succeeds without bookkeeping.
    caps: Option<CapTable>,
    used: FxHashMap<TenantId, usize>,
}

#[derive(Debug)]
struct CapTable {
    default_cap: usize,
    caps: FxHashMap<TenantId, usize>,
}

impl TenantCaps {
    fn unrestricted() -> TenantCaps {
        TenantCaps {
            caps: None,
            used: FxHashMap::default(),
        }
    }

    fn with_caps(default_cap: usize, caps: FxHashMap<TenantId, usize>) -> TenantCaps {
        TenantCaps {
            caps: Some(CapTable { default_cap, caps }),
            used: FxHashMap::default(),
        }
    }

    fn cap_of(table: &CapTable, t: TenantId) -> usize {
        table.caps.get(&t).copied().unwrap_or(table.default_cap)
    }

    /// Admit this set of entries (a single aggregate, or a group's newly
    /// added members) if every touched tenant stays within cap; all-or-
    /// nothing — on success the usage is committed, on failure nothing is.
    pub fn admit<I>(&mut self, tenants: I) -> bool
    where
        I: IntoIterator<Item = TenantId>,
    {
        let Some(table) = &self.caps else {
            return true;
        };
        // Groups are small: count per-tenant need in a tiny vec.
        let mut need: Vec<(TenantId, usize)> = Vec::new();
        for t in tenants {
            match need.iter_mut().find(|(x, _)| *x == t) {
                Some((_, n)) => *n += 1,
                None => need.push((t, 1)),
            }
        }
        for (t, n) in &need {
            let used = self.used.get(t).copied().unwrap_or(0);
            if used + n > Self::cap_of(table, *t) {
                return false;
            }
        }
        for (t, n) in need {
            *self.used.entry(t).or_insert(0) += n;
        }
        true
    }
}

/// Build the walk's cap tracker for one decide epoch.
///
/// `ranked` must yield `(tenant, score)` for every eligible aggregate **in
/// rank order** (score descending, aggregate ascending). It is consumed
/// only by `WeightedScore` — `Unrestricted` and `StaticQuota` never touch
/// it, so passing a lazy iterator keeps those policies free of the pass.
pub(crate) fn caps_for_walk<I>(policy: &FastPathPolicy, cap: usize, ranked: I) -> TenantCaps
where
    I: IntoIterator<Item = (TenantId, f64)>,
{
    match policy {
        FastPathPolicy::Unrestricted => TenantCaps::unrestricted(),
        FastPathPolicy::StaticQuota { default_cap, caps } => {
            TenantCaps::with_caps(*default_cap, caps.iter().map(|(t, c)| (*t, *c)).collect())
        }
        FastPathPolicy::WeightedScore { weights } => {
            // Per-tenant (score mass, eligible-aggregate count), summed in
            // rank order so both engines produce bit-identical f64 masses.
            let mut mass: BTreeMap<TenantId, (f64, usize)> = BTreeMap::new();
            for (t, score) in ranked {
                let e = mass.entry(t).or_insert((0.0, 0));
                e.0 += score;
                e.1 += 1;
            }
            let tenants: Vec<(TenantId, f64, usize)> = mass
                .iter()
                .map(|(t, (m, d))| {
                    let w = weights.get(t).copied().unwrap_or(1.0).max(0.0);
                    (*t, m * w, *d)
                })
                .collect();
            // Tenants absent from the mass table have no eligible
            // aggregates, so the walk never asks about them: default 0.
            TenantCaps::with_caps(0, weighted_caps(&tenants, cap))
        }
    }
}

/// Integer weighted max-min (water-filling) allocation of `cap` fast-path
/// entries across tenants.
///
/// Input: per tenant, its weighted score mass and its demand (the number of
/// eligible aggregates — the most entries it could use). Each round grants
/// tenants whose whole demand fits inside their proportional share of the
/// remaining entries, then re-divides what they left on the table among the
/// still-constrained tenants; the final round apportions by largest
/// remainder (ties break toward the smaller tenant id). Deterministic: the
/// input is sorted by tenant id and every f64 reduction runs in that order.
pub(crate) fn weighted_caps(
    tenants: &[(TenantId, f64, usize)],
    cap: usize,
) -> FxHashMap<TenantId, usize> {
    let mut alloc: FxHashMap<TenantId, usize> = tenants.iter().map(|&(t, _, _)| (t, 0)).collect();
    let mut active: Vec<(TenantId, f64, usize)> = tenants
        .iter()
        .copied()
        .filter(|&(_, m, d)| m > 0.0 && d > 0)
        .collect();
    active.sort_by_key(|&(t, _, _)| t);
    let mut remaining = cap;

    loop {
        if remaining == 0 || active.is_empty() {
            return alloc;
        }
        // NaN-safe: bail unless the mass sum is strictly positive.
        let total: f64 = active.iter().map(|a| a.1).sum();
        if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return alloc;
        }
        let r = remaining as f64;
        // Grant every tenant whose whole demand fits its share; their
        // leftover share water-fills to the rest next round.
        let mut granted_any = false;
        let mut still: Vec<(TenantId, f64, usize)> = Vec::with_capacity(active.len());
        for &(t, m, d) in &active {
            if d as f64 <= r * m / total {
                alloc.insert(t, d);
                remaining -= d;
                granted_any = true;
            } else {
                still.push((t, m, d));
            }
        }
        active = still;
        if granted_any {
            continue;
        }
        // Everyone left is constrained (demand exceeds share): apportion the
        // remaining entries by largest remainder and stop.
        let mut floors = 0usize;
        let mut rem: Vec<(f64, TenantId)> = Vec::with_capacity(active.len());
        for (i, &(t, m, d)) in active.iter().enumerate() {
            let share = r * m / total;
            let fl = share.floor() as usize;
            // demand > share ⇒ demand ≥ floor+1, so the floor always fits.
            debug_assert!(fl < d, "constrained tenant floor exceeds demand");
            alloc.insert(t, fl);
            floors += fl;
            rem.push((share - fl as f64, t));
            let _ = i;
        }
        let mut leftover = remaining - floors.min(remaining);
        rem.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then_with(|| a.1.cmp(&b.1)));
        // One extra entry each in remainder order; cycle in the (f64-edge)
        // case where the floors undershot by more than the tenant count,
        // stopping when every tenant hits its demand.
        while leftover > 0 {
            let mut absorbed = false;
            for &(_, t) in &rem {
                if leftover == 0 {
                    break;
                }
                let d = active.iter().find(|&&(x, _, _)| x == t).unwrap().2;
                let a = alloc.get_mut(&t).unwrap();
                if *a < d {
                    *a += 1;
                    leftover -= 1;
                    absorbed = true;
                }
            }
            if !absorbed {
                break;
            }
        }
        return alloc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TenantId {
        TenantId(i)
    }

    #[test]
    fn equal_mass_splits_evenly() {
        let caps = weighted_caps(&[(t(1), 10.0, 100), (t(2), 10.0, 100)], 8);
        assert_eq!(caps[&t(1)], 4);
        assert_eq!(caps[&t(2)], 4);
    }

    #[test]
    fn unused_share_redistributes() {
        // Tenant 1 can only use 1 entry; its leftover share flows to 2.
        let caps = weighted_caps(&[(t(1), 10.0, 1), (t(2), 10.0, 100)], 8);
        assert_eq!(caps[&t(1)], 1);
        assert_eq!(caps[&t(2)], 7, "water-filling is work-conserving");
    }

    #[test]
    fn mass_proportional_with_remainder_to_heavier() {
        // 3:1 mass over 5 entries → ideal 3.75 / 1.25 → floors 3/1, the
        // leftover entry goes to the larger remainder (tenant 1).
        let caps = weighted_caps(&[(t(1), 30.0, 100), (t(2), 10.0, 100)], 5);
        assert_eq!(caps[&t(1)], 4);
        assert_eq!(caps[&t(2)], 1);
    }

    #[test]
    fn zero_mass_tenant_gets_nothing() {
        let caps = weighted_caps(&[(t(1), 0.0, 100), (t(2), 5.0, 100)], 4);
        assert_eq!(caps[&t(1)], 0);
        assert_eq!(caps[&t(2)], 4);
    }

    #[test]
    fn total_demand_below_cap_grants_everyone() {
        let caps = weighted_caps(&[(t(1), 1.0, 2), (t(2), 99.0, 3)], 32);
        assert_eq!(caps[&t(1)], 2);
        assert_eq!(caps[&t(2)], 3);
    }

    #[test]
    fn remainder_ties_break_toward_smaller_tenant() {
        // Equal masses, 3 entries over 2 tenants: equal remainders 0.5 —
        // the extra entry must go to the smaller tenant id.
        let caps = weighted_caps(&[(t(7), 10.0, 100), (t(2), 10.0, 100)], 3);
        assert_eq!(caps[&t(2)], 2);
        assert_eq!(caps[&t(7)], 1);
    }

    #[test]
    fn static_quota_tracker_enforces_caps() {
        let policy = FastPathPolicy::StaticQuota {
            default_cap: 1,
            caps: HashMap::from([(t(1), 2)]),
        };
        let mut caps = caps_for_walk(&policy, 8, std::iter::empty());
        assert!(caps.admit([t(1)]));
        assert!(caps.admit([t(1)]));
        assert!(!caps.admit([t(1)]), "tenant 1 capped at 2");
        assert!(caps.admit([t(2)]));
        assert!(!caps.admit([t(2)]), "default cap 1");
    }

    #[test]
    fn group_admission_is_all_or_nothing() {
        let policy = FastPathPolicy::StaticQuota {
            default_cap: 2,
            caps: HashMap::new(),
        };
        let mut caps = caps_for_walk(&policy, 8, std::iter::empty());
        assert!(caps.admit([t(1)]));
        // A 2-entry group for tenant 1 would need 3 total: rejected whole,
        // and the rejection must not consume any budget.
        assert!(!caps.admit([t(1), t(1)]));
        assert!(caps.admit([t(1)]), "failed admit left usage untouched");
    }

    #[test]
    fn unrestricted_admits_everything() {
        let mut caps = caps_for_walk(&FastPathPolicy::Unrestricted, 1, std::iter::empty());
        for _ in 0..64 {
            assert!(caps.admit([t(9)]));
        }
    }
}
