//! # fastrak
//!
//! The paper's primary contribution: the FasTrak rule-management system —
//! a distributed controller that splits network-virtualization rules
//! between the hypervisor vswitch and switch hardware, migrating the rules
//! for the highest-packets-per-second flow aggregates into the ToR's
//! bounded fast path and back as traffic changes.
//!
//! * [`me`] — the Measurement Engine (Δp/t, Δb/t epochs, per-VM-per-app
//!   aggregation, median history, demand profiles);
//! * [`de`] — the Decision Engine (`S = n × m_pps × c` ranking under the
//!   fast-path budget, hysteresis, all-or-nothing groups);
//! * [`rules`] — the unified rule manager (most-specific hardware rule
//!   synthesis, deny-overlap safety);
//! * [`fps`] — the Flow Proportional Share split of per-VM rate limits
//!   across the two interfaces, with overflow probing;
//! * [`local`] / [`tor_ctrl`] — the controller processes, wired as DES
//!   nodes speaking the OpenFlow-style control protocol of `fastrak-net`;
//! * [`attach`] — one call to deploy FasTrak onto a
//!   [`fastrak_workload::Testbed`].

pub mod de;
pub mod de_inc;
pub mod fps;
pub mod local;
pub mod me;
pub mod meter;
pub mod policy;
pub mod protocol;
pub mod rules;
pub mod tor_ctrl;

pub use de::{DeConfig, Decision, DecisionEngine};
pub use de_inc::{DeEpochStats, IncrementalDecisionEngine, ShardEpoch, ShardedDecisionEngine};
pub use fps::{fps_split, FpsConfig, FpsInput, FpsSplit};
pub use local::{LocalController, LocalControllerConfig, Timing};
pub use me::{AggDemand, DemandDelta, MeasurementEngine, VmDemandProfile};
pub use meter::{epoch_rates, RateSummary, RateWindow};
pub use policy::FastPathPolicy;
pub use protocol::{DemandReport, HwPathReport, MigrationPrepare, OffloadDecision, VmLimit};
pub use rules::{RuleManager, SynthesisError};
pub use tor_ctrl::{CtrlCounterIds, CtrlPlaneConfig, TorController, TorControllerConfig};

use fastrak_net::event::{CtlMsg, Event};
use fastrak_sim::kernel::NodeId;
use fastrak_sim::time::SimTime;
use fastrak_workload::Testbed;

/// FasTrak deployment configuration.
pub struct FasTrakConfig {
    /// Measurement timing (`t`, `T`, `N`, `M`).
    pub timing: Timing,
    /// Decision engine settings.
    pub de: DeConfig,
    /// FPS settings.
    pub fps: FpsConfig,
    /// Per-VM rate limits.
    pub limits: Vec<VmLimit>,
    /// Fast-path entries the controller may use.
    pub budget: usize,
    /// Tenant policies for rule synthesis.
    pub rule_manager: RuleManager,
    /// Control-plane failure handling (install retry/backoff, periodic
    /// reconciliation, hardware-suspension cooldown).
    pub ctrl: CtrlPlaneConfig,
}

impl Default for FasTrakConfig {
    fn default() -> Self {
        FasTrakConfig {
            timing: Timing::fine(),
            de: DeConfig::paper(),
            fps: FpsConfig::default(),
            limits: Vec::new(),
            budget: 256,
            rule_manager: RuleManager::new(),
            ctrl: CtrlPlaneConfig::default(),
        }
    }
}

/// Handles to a deployed FasTrak instance.
pub struct FasTrak {
    /// The TOR controller node.
    pub tor_ctrl: NodeId,
    /// Local controller nodes, indexed like the testbed's servers.
    pub locals: Vec<NodeId>,
}

/// Deploy FasTrak onto a testbed: one local controller per server, one TOR
/// controller for the rack. Call [`FasTrak::start`] (before or after
/// `Testbed::start`) to begin the measurement loops.
pub fn attach(bed: &mut Testbed, cfg: FasTrakConfig) -> FasTrak {
    // Collect per-server VM lists first (immutably).
    let n = bed.servers.len();
    let mut per_server_vms: Vec<Vec<(fastrak_net::addr::TenantId, fastrak_net::addr::Ip)>> =
        vec![Vec::new(); n];
    for v in bed.vms() {
        per_server_vms[v.server].push((v.tenant, v.ip));
    }
    let server_ips: Vec<fastrak_net::addr::Ip> =
        (0..n).map(|i| bed.server(i).cfg.provider_ip).collect();

    // Create the TOR controller first so locals can reference it. Its
    // fault/recovery counters live in the telemetry registry (dense ids,
    // registered once here; the registry is the single source of truth).
    let counters = CtrlCounterIds::register(&mut bed.kernel.ctx.telemetry.registry);
    let tor_node = bed.tor;
    let tor_ctrl = bed.kernel.add_node(TorController::new(TorControllerConfig {
        tor: tor_node,
        locals: Vec::new(), // patched below
        timing: cfg.timing,
        de: cfg.de,
        budget: cfg.budget,
        demote_grace: fastrak_sim::time::SimDuration::from_millis(50),
        rule_manager: cfg.rule_manager,
        ctrl: cfg.ctrl,
        counters,
    }));

    let mut locals = Vec::new();
    for i in 0..n {
        let limits = cfg
            .limits
            .iter()
            .copied()
            .filter(|l| per_server_vms[i].contains(&(l.tenant, l.vm_ip)))
            .collect();
        let id = bed
            .kernel
            .add_node(LocalController::new(LocalControllerConfig {
                server: bed.servers[i],
                server_ip: server_ips[i],
                tor_ctrl,
                tor: tor_node,
                timing: cfg.timing,
                vms: per_server_vms[i].clone(),
                limits,
                fps: cfg.fps,
            }));
        locals.push(id);
    }
    bed.kernel
        .node_mut::<TorController>(tor_ctrl)
        .set_locals(locals.clone());
    FasTrak { tor_ctrl, locals }
}

impl FasTrak {
    /// Start the measurement/decision loops at the current simulated time.
    pub fn start(&self, bed: &mut Testbed) {
        let now = bed.kernel.now();
        bed.kernel
            .post(self.tor_ctrl, now, TorController::boot_event());
        for &l in &self.locals {
            bed.kernel.post(l, now, LocalController::boot_event());
        }
    }

    /// Ask the TOR controller to pull a VM's flows back to software before
    /// a migration (S4). Run the kernel for at least one demote-grace after
    /// this before moving the VM.
    pub fn prepare_migration(
        &self,
        bed: &mut Testbed,
        tenant: fastrak_net::addr::TenantId,
        vm_ip: fastrak_net::addr::Ip,
        at: SimTime,
    ) {
        bed.kernel.post(
            self.tor_ctrl,
            at,
            Event::Ctl(CtlMsg::new(
                self.tor_ctrl, // origin: ourselves (harness-injected)
                MigrationPrepare { tenant, vm_ip },
            )),
        );
    }

    /// Publish the controllers' per-tenant `ctrl.tenant.*` metrics into
    /// the testbed's telemetry registry — fast-path occupancy from the TOR
    /// controller, FPS sw/hw splits summed across the local controllers.
    /// Pull-model, same contract as `Testbed::publish_telemetry`: call at
    /// collection points; hot paths never touch the registry.
    pub fn publish_telemetry(&self, bed: &mut Testbed) {
        let mut reg = std::mem::take(&mut bed.kernel.ctx.telemetry.registry);
        bed.kernel
            .node_mut::<TorController>(self.tor_ctrl)
            .publish_telemetry(&mut reg);
        let mut per: std::collections::BTreeMap<fastrak_net::addr::TenantId, (u64, u64)> =
            std::collections::BTreeMap::new();
        for &l in &self.locals {
            for (t, (sw, hw)) in bed.kernel.node::<LocalController>(l).tenant_fps_totals() {
                let e = per.entry(t).or_default();
                e.0 += sw;
                e.1 += hw;
            }
        }
        for (t, (sw, hw)) in per {
            let label = t.0.to_string();
            let g = reg.gauge("ctrl.tenant.fps_sw_bps", &[("tenant", &label)]);
            reg.gauge_set(g, sw as f64);
            let g = reg.gauge("ctrl.tenant.fps_hw_bps", &[("tenant", &label)]);
            reg.gauge_set(g, hw as f64);
        }
        bed.kernel.ctx.telemetry.registry = reg;
    }

    /// The set of currently offloaded aggregates (inspection).
    pub fn offloaded<'a>(
        &self,
        bed: &'a Testbed,
    ) -> &'a std::collections::HashSet<fastrak_net::flow::FlowAggregate> {
        bed.kernel.node::<TorController>(self.tor_ctrl).offloaded()
    }
}
