//! Shared Δcounter epoch metering for both measurement planes.
//!
//! The per-server measurement engine ([`crate::me`], fed vswitch flow-stat
//! dumps) and the ToR controller's hardware meter ([`crate::tor_ctrl`], fed
//! per-rule counter dumps) close epochs the same way: two cumulative samples
//! `t` apart give Δp/t and Δb/t, and a bounded per-epoch history yields the
//! median rates the decision engine ranks by. The logic lives here once so
//! the two planes cannot drift apart — they had: the ToR copy reported the
//! *last* epoch's bps where the ME reported the median.
//!
//! **Counter resets.** Cumulative counters are not monotone in practice: a
//! ToR rule is removed and reinstalled (demote→re-offload churn, the
//! reconciliation sweep repairing lost rules), an agent restarts, or a flow
//! drops out of a multi-flow fold between the two samples. Computing the
//! delta with `saturating_sub` turns every such event into a **zero-rate
//! epoch**, silently under-scoring a hot aggregate exactly when it churns —
//! and a run of resets can zero the whole window, at which point the idle
//! age-out evicts the aggregate entirely. [`epoch_rates`] therefore treats a
//! backwards sample pair as *unmeasurable*: no rate is produced, the history
//! window keeps what it knew, and the next sample pair re-baselines cleanly.
//! (Using `cur/gap` instead would be wrong here: both planes fold several
//! flows into one aggregate, so after a partial reset `cur` mixes restarted
//! and unrestarted counters.)

use std::collections::VecDeque;

/// Close one epoch from a pair of cumulative `(packets, bytes)` samples.
///
/// Returns the epoch's `(pps, bps)`, or `None` when the epoch is
/// unmeasurable: no baseline was taken (the aggregate first appeared between
/// the two samples), or either counter went backwards (reset — see the
/// module docs). Callers push nothing for an unmeasurable epoch.
pub fn epoch_rates(
    baseline: Option<(u64, u64)>,
    cur: (u64, u64),
    gap_secs: f64,
) -> Option<(f64, f64)> {
    let (p1, b1) = baseline?;
    let (p2, b2) = cur;
    if p2 < p1 || b2 < b1 {
        return None; // counter reset: re-baseline instead of a 0-rate epoch
    }
    Some(((p2 - p1) as f64 / gap_secs, (b2 - b1) as f64 / gap_secs))
}

/// Summary of one [`RateWindow`]: the fields a demand report row needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSummary {
    /// Rate of the most recent measured epoch (packets/sec).
    pub pps: f64,
    /// Rate of the most recent measured epoch (bytes/sec).
    pub bps: f64,
    /// Remembered epochs in which the aggregate was active (pps > 0).
    pub n_active: u32,
    /// Median pps over the remembered epochs.
    pub m_pps: f64,
    /// Median bps over the remembered epochs.
    pub m_bps: f64,
}

/// Bounded per-epoch `(pps, bps)` history with median summaries.
///
/// **Median convention.** For even-length windows the median is
/// `sorted[len/2]` — the **upper** median, not the interpolated midpoint.
/// This is deliberate: the window is small (N×M ≈ 6 epochs), the decision
/// engine only *compares* scores, and biasing the boundary toward the higher
/// observed rate keeps a warming aggregate offloaded rather than flapping it
/// — rule churn costs more than the half-epoch of optimism.
#[derive(Debug, Clone, Default)]
pub struct RateWindow {
    hist: VecDeque<(f64, f64)>,
}

impl RateWindow {
    /// Rebuild a window from a saved history (VM demand-profile import).
    pub fn from_history(hist: Vec<(f64, f64)>) -> RateWindow {
        RateWindow { hist: hist.into() }
    }

    /// Push one closed epoch's rates, evicting the oldest past `cap`.
    ///
    /// Returns whether a summary of the window could have changed: every
    /// [`RateSummary`] field is a function of the window multiset and the
    /// last entry, so a full window that evicts exactly the value being
    /// pushed, with an unchanged back entry, leaves summaries untouched —
    /// the steady-rate case the measurement engine's delta path exploits.
    pub fn push(&mut self, pps: f64, bps: f64, cap: usize) -> bool {
        let v = (pps, bps);
        let prev_back = self.hist.back().copied();
        let full = self.hist.len() >= cap.max(1);
        let popped = if full { self.hist.pop_front() } else { None };
        self.hist.push_back(v);
        !(full && popped == Some(v) && prev_back == Some(v))
    }

    /// True when no epoch has been measured yet.
    pub fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }

    /// True when no remembered epoch saw traffic (the age-out criterion).
    /// An empty window is idle.
    pub fn idle(&self) -> bool {
        !self.hist.iter().any(|&(p, _)| p > 0.0)
    }

    /// The remembered history, oldest first (VM demand-profile export).
    pub fn history(&self) -> Vec<(f64, f64)> {
        self.hist.iter().copied().collect()
    }

    /// Summarize the window (`None` while no epoch has been measured).
    pub fn summary(&self) -> Option<RateSummary> {
        if self.hist.is_empty() {
            return None;
        }
        let mut pps_hist: Vec<f64> = self.hist.iter().map(|&(p, _)| p).collect();
        let mut bps_hist: Vec<f64> = self.hist.iter().map(|&(_, b)| b).collect();
        pps_hist.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bps_hist.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = pps_hist.len() / 2; // upper median; see type docs
        let &(pps, bps) = self.hist.back().unwrap();
        Some(RateSummary {
            pps,
            bps,
            n_active: self.hist.iter().filter(|&&(p, _)| p > 0.0).count() as u32,
            m_pps: pps_hist[mid],
            m_bps: bps_hist[mid],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_pair_yields_rates() {
        let r = epoch_rates(Some((1000, 100_000)), (1500, 150_000), 0.1);
        let (pps, bps) = r.unwrap();
        assert!((pps - 5000.0).abs() < 1e-9);
        assert!((bps - 500_000.0).abs() < 1e-9);
    }

    #[test]
    fn reset_is_unmeasurable() {
        // Packets went backwards (rule reinstalled): no rate, not zero-rate.
        assert_eq!(epoch_rates(Some((1000, 10)), (30, 50), 1.0), None);
        // Bytes alone going backwards is just as much a reset.
        assert_eq!(epoch_rates(Some((10, 1000)), (50, 30), 1.0), None);
    }

    #[test]
    fn missing_baseline_is_unmeasurable() {
        assert_eq!(epoch_rates(None, (500, 500), 1.0), None);
    }

    #[test]
    fn upper_median_on_even_windows() {
        let mut w = RateWindow::default();
        for v in [100.0, 400.0, 200.0, 300.0] {
            w.push(v, v * 10.0, 8);
        }
        let s = w.summary().unwrap();
        assert!((s.m_pps - 300.0).abs() < 1e-9, "upper median, not midpoint");
        assert!((s.m_bps - 3000.0).abs() < 1e-9);
        assert!((s.pps - 300.0).abs() < 1e-9, "last pushed epoch");
        assert_eq!(s.n_active, 4);
    }

    #[test]
    fn steady_full_window_reports_no_change() {
        let mut w = RateWindow::default();
        assert!(w.push(5.0, 50.0, 2), "first push changes the summary");
        assert!(w.push(5.0, 50.0, 2), "window not yet full");
        assert!(!w.push(5.0, 50.0, 2), "steady full window: no change");
        assert!(w.push(6.0, 50.0, 2), "rate moved: change");
    }

    #[test]
    fn idle_detection_and_bounding() {
        let mut w = RateWindow::default();
        assert!(w.idle(), "empty window is idle");
        w.push(10.0, 100.0, 2);
        assert!(!w.idle());
        w.push(0.0, 0.0, 2);
        w.push(0.0, 0.0, 2);
        assert!(w.idle(), "active epoch aged out of the bounded window");
        assert_eq!(w.history().len(), 2);
    }

    #[test]
    fn history_roundtrip() {
        let mut w = RateWindow::default();
        w.push(1.0, 10.0, 4);
        w.push(2.0, 20.0, 4);
        let w2 = RateWindow::from_history(w.history());
        assert_eq!(w.summary(), w2.summary());
    }
}
