//! The **TOR controller** (paper §4.3, §5.2: "a custom Floodlight controller
//! that issues OpenFlow table and flow stats requests").
//!
//! Each control interval it merges the local controllers' demand reports
//! with its own measurements of already-offloaded flows (from the ToR's
//! per-rule counters), runs the decision engine, and:
//!
//! 1. installs the synthesized rule bundles for new offloads at the ToR and
//!    waits for the Ack **before** telling local controllers to flip flow
//!    placers (no blackholing);
//! 2. broadcasts demotions immediately (placers flip back to the VIF) and
//!    garbage-collects the ToR rules after a grace period so in-flight
//!    hardware packets still match;
//! 3. tracks fast-path memory so it "offloads only as many flows as can be
//!    accommodated".

use std::collections::{HashMap, HashSet};

use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::ctrl::{CtrlReply, CtrlRequest, TorRule, TorStatEntry};
use fastrak_net::event::{CtlMsg, Event, NetCtx};
use fastrak_net::flow::{FlowAggregate, FlowSpec};
use fastrak_sim::kernel::{Api, EventHandle, Node, NodeId};
use fastrak_sim::time::{SimDuration, SimTime};
use fastrak_telemetry::recorder::{DecisionKind, Severity};
use fastrak_telemetry::span::SpanId;
use fastrak_telemetry::{CounterId, Registry};

use crate::de::{DeConfig, DecisionEngine};
#[cfg(feature = "full-scan-de")]
use crate::de_inc::DeEpochStats;
#[cfg(not(feature = "full-scan-de"))]
use crate::de_inc::IncrementalDecisionEngine;
use crate::me::AggDemand;
use crate::meter::{self, RateWindow};
use crate::protocol::{DemandReport, HwPathReport, MigrationPrepare, OffloadDecision};
use crate::rules::RuleManager;

mod tags {
    /// Start of a ToR measurement epoch (sample A).
    pub const EPOCH: u64 = 1;
    /// Sample B, `t` later.
    pub const SAMPLE_B: u64 = 2;
    /// Run the decision round for a control interval.
    pub const DECIDE: u64 = 3;
    /// Garbage-collect demoted ToR rules (a = gc token).
    pub const GC: u64 = 4;
    /// Install transaction timeout (a = xid, b = attempt).
    pub const INSTALL_TIMEOUT: u64 = 5;
    /// Periodic reconciliation sweep against actual ToR rule state.
    pub const RECONCILE: u64 = 6;
    /// Periodic hardware-path liveness probe.
    pub const PROBE: u64 = 7;
    /// Probe reply deadline (a = xid).
    pub const PROBE_TIMEOUT: u64 = 8;
}

/// Control-plane hardening knobs: install-transaction retry/backoff and the
/// periodic state reconciliation sweep. The defaults assume the testbed's
/// sub-millisecond control RTT (ToR agent latency 200 µs + 100 µs send
/// delay each way); real deployments would scale them with their RTT.
#[derive(Debug, Clone)]
pub struct CtrlPlaneConfig {
    /// Ack deadline for the first install attempt; doubles per retry
    /// (bounded exponential backoff) up to [`CtrlPlaneConfig::backoff_cap`].
    pub install_timeout: SimDuration,
    /// Retransmissions after the initial attempt before the transaction is
    /// abandoned (rolled back; reconciliation cleans hardware).
    pub max_install_retries: u32,
    /// Upper bound on the per-attempt timeout.
    pub backoff_cap: SimDuration,
    /// Period of the reconciliation sweep ([`SimDuration::ZERO`] disables).
    pub reconcile_interval: SimDuration,
    /// Consecutive install failures (Error replies or abandoned
    /// transactions) that trigger hardware suspension.
    pub hw_failure_threshold: u32,
    /// How long offloads stay suspended (traffic remains on the software
    /// path) after the failure threshold trips.
    pub hw_cooldown: SimDuration,
    /// Period of the hardware-path liveness probe ([`SimDuration::ZERO`]
    /// disables, the default — probing adds control traffic, so scenarios
    /// opt in). A probe answered with a definitive Error (ToR rebooting)
    /// marks the ToR down immediately; [`CtrlPlaneConfig::hw_failure_threshold`]
    /// consecutive unanswered probes do the same. Probe replies carry the
    /// ToR's boot generation, which is how reboots are detected.
    pub probe_interval: SimDuration,
    /// Consecutive measured zero-rate hardware epochs — while software-side
    /// demand history persists — before an offloaded aggregate is declared
    /// blackholed and force-demoted (0 disables, the default).
    pub blackhole_epochs: u32,
    /// How long a blackhole-demoted aggregate is barred from re-offload.
    pub blackhole_cooldown: SimDuration,
}

impl Default for CtrlPlaneConfig {
    fn default() -> Self {
        CtrlPlaneConfig {
            install_timeout: SimDuration::from_millis(10),
            max_install_retries: 5,
            backoff_cap: SimDuration::from_millis(160),
            reconcile_interval: SimDuration::from_secs(1),
            hw_failure_threshold: 3,
            hw_cooldown: SimDuration::from_secs(2),
            probe_interval: SimDuration::ZERO,
            blackhole_epochs: 0,
            blackhole_cooldown: SimDuration::from_secs(2),
        }
    }
}

/// Dense registry ids for the controller's fault/recovery counters,
/// registered once at deployment ([`crate::attach`]) so every increment on
/// the control path is a plain array write. The registry is the single
/// source of truth — the controller keeps no shadow fields.
#[derive(Debug, Clone, Copy)]
pub struct CtrlCounterIds {
    /// Installs rejected by the ToR (Error replies).
    pub install_failures: CounterId,
    /// Install batches retransmitted after an Ack timeout.
    pub install_retries: CounterId,
    /// Install timeout timers that fired on a still-pending transaction.
    pub install_timeouts: CounterId,
    /// Transactions abandoned after exhausting retries.
    pub installs_abandoned: CounterId,
    /// Reconciliation sweeps performed.
    pub reconcile_sweeps: CounterId,
    /// Untracked hardware rules removed by reconciliation.
    pub reconcile_stale_removed: CounterId,
    /// Offloaded aggregates demoted because the hardware lost their rule.
    pub reconcile_lost_demoted: CounterId,
    /// `entries_used` drift repairs performed by reconciliation.
    pub reconcile_counter_repairs: CounterId,
    /// Times the failure threshold tripped hardware suspension.
    pub hw_suspensions: CounterId,
    /// Decision-engine epochs executed.
    pub de_epochs: CounterId,
    /// Cumulative wall-clock nanoseconds spent inside decision epochs (the
    /// plane's one wall-clock metric: it never influences the simulation,
    /// but its exported value naturally varies run to run).
    pub de_epoch_ns: CounterId,
    /// Score-index mutations ingested by the incremental engine.
    pub de_deltas_ingested: CounterId,
    /// Aggregates that crossed the offload boundary (offloads + demotes).
    pub de_band_crossers: CounterId,
    /// Offloads suppressed by the hysteresis band (churn avoided).
    pub de_churn_suppressed: CounterId,
    /// ToR reboots detected via a boot-generation bump (probe reply or
    /// rule dump newer than the controller's view).
    pub chaos_tor_reboots_seen: CounterId,
    /// Controller crash/restart cycles survived (state rebuilt from the
    /// hardware's rule dump).
    pub chaos_ctrl_restarts: CounterId,
    /// Offloaded aggregates force-demoted on blackhole suspicion (hardware
    /// counters idle while software demand history persisted).
    pub chaos_blackhole_demotes: CounterId,
    /// Offloaded aggregates force-demoted because their server reported
    /// its SR-IOV hardware path down.
    pub chaos_hw_path_down_demotes: CounterId,
    /// Liveness probes that went unanswered past their deadline.
    pub chaos_probe_timeouts: CounterId,
    /// Rule dumps discarded because they were snapshotted before a reboot
    /// the controller already knew about (using one would resurrect wiped
    /// rules in the bookkeeping).
    pub chaos_stale_dumps_discarded: CounterId,
}

impl CtrlCounterIds {
    /// Register the `ctrl.*` counters (idempotent: the registry dedups
    /// by rendered name, so re-registration returns the same ids).
    pub fn register(reg: &mut Registry) -> CtrlCounterIds {
        CtrlCounterIds {
            install_failures: reg.counter("ctrl.install_failures", &[]),
            install_retries: reg.counter("ctrl.install_retries", &[]),
            install_timeouts: reg.counter("ctrl.install_timeouts", &[]),
            installs_abandoned: reg.counter("ctrl.installs_abandoned", &[]),
            reconcile_sweeps: reg.counter("ctrl.reconcile_sweeps", &[]),
            reconcile_stale_removed: reg.counter("ctrl.reconcile_stale_removed", &[]),
            reconcile_lost_demoted: reg.counter("ctrl.reconcile_lost_demoted", &[]),
            reconcile_counter_repairs: reg.counter("ctrl.reconcile_counter_repairs", &[]),
            hw_suspensions: reg.counter("ctrl.hw_suspensions", &[]),
            de_epochs: reg.counter("ctrl.de.epochs", &[]),
            de_epoch_ns: reg.counter("ctrl.de.epoch_ns", &[]),
            de_deltas_ingested: reg.counter("ctrl.de.deltas_ingested", &[]),
            de_band_crossers: reg.counter("ctrl.de.band_crossers", &[]),
            de_churn_suppressed: reg.counter("ctrl.de.churn_suppressed", &[]),
            chaos_tor_reboots_seen: reg.counter("ctrl.chaos.tor_reboots_seen", &[]),
            chaos_ctrl_restarts: reg.counter("ctrl.chaos.ctrl_restarts", &[]),
            chaos_blackhole_demotes: reg.counter("ctrl.chaos.blackhole_demotes", &[]),
            chaos_hw_path_down_demotes: reg.counter("ctrl.chaos.hw_path_down_demotes", &[]),
            chaos_probe_timeouts: reg.counter("ctrl.chaos.probe_timeouts", &[]),
            chaos_stale_dumps_discarded: reg.counter("ctrl.chaos.stale_dumps_discarded", &[]),
        }
    }
}

/// TOR controller configuration.
pub struct TorControllerConfig {
    /// The ToR switch node.
    pub tor: NodeId,
    /// Local controllers under this ToR.
    pub locals: Vec<NodeId>,
    /// Measurement timing (shared with the locals).
    pub timing: crate::local::Timing,
    /// Decision engine configuration.
    pub de: DeConfig,
    /// Fast-path entries the controller may use (≤ the ToR's capacity;
    /// an aggregate costs one ACL rule, plus one tunnel mapping per remote
    /// destination endpoint).
    pub budget: usize,
    /// Grace period before demoted ToR rules are removed.
    pub demote_grace: SimDuration,
    /// Tenant policies for rule synthesis.
    pub rule_manager: RuleManager,
    /// Failure-handling knobs (retry/backoff, reconciliation, cooldown).
    pub ctrl: CtrlPlaneConfig,
    /// Registry ids for the controller's counters (see
    /// [`CtrlCounterIds::register`]).
    pub counters: CtrlCounterIds,
}

/// Epoch-pair meter over the ToR's per-rule cumulative counters. The
/// Δcounter and history/median logic is [`crate::meter`]'s — shared with
/// the per-server measurement engine so the two planes cannot drift, and so
/// a rule removed + reinstalled (GC/reconciliation churn restarts its
/// counters) re-baselines instead of reading as a zero-rate epoch.
#[derive(Default)]
struct HwMeter {
    sample_a: HashMap<FlowAggregate, (u64, u64)>,
    /// Per-aggregate rate history.
    hist: HashMap<FlowAggregate, RateWindow>,
    /// Rates measured in the most recently closed epoch only (cleared each
    /// sample B). Blackhole detection needs "did the counters move *this*
    /// epoch", which the history medians deliberately smooth away.
    last_rates: HashMap<FlowAggregate, (f64, f64)>,
    cap: usize,
}

impl HwMeter {
    fn fold(
        entries: &[TorStatEntry],
        spec_to_agg: &HashMap<(TenantId, FlowSpec), FlowAggregate>,
    ) -> HashMap<FlowAggregate, (u64, u64)> {
        let mut m = HashMap::new();
        for e in entries {
            if let Some(agg) = spec_to_agg.get(&(e.tenant, e.spec)) {
                let v = m.entry(*agg).or_insert((0, 0));
                let (p, b): &mut (u64, u64) = v;
                *p += e.packets;
                *b += e.bytes;
            }
        }
        m
    }

    fn sample_a(
        &mut self,
        entries: &[TorStatEntry],
        map: &HashMap<(TenantId, FlowSpec), FlowAggregate>,
    ) {
        self.sample_a = Self::fold(entries, map);
    }

    fn sample_b(
        &mut self,
        entries: &[TorStatEntry],
        map: &HashMap<(TenantId, FlowSpec), FlowAggregate>,
        gap_secs: f64,
    ) {
        let folded = Self::fold(entries, map);
        self.last_rates.clear();
        for (agg, cur) in folded {
            // Unmeasurable epochs (no baseline, or counters restarted after
            // a rule reinstall) push nothing; see [`meter::epoch_rates`].
            let baseline = self.sample_a.get(&agg).copied();
            if let Some((pps, bps)) = meter::epoch_rates(baseline, cur, gap_secs) {
                self.hist.entry(agg).or_default().push(pps, bps, self.cap);
                self.last_rates.insert(agg, (pps, bps));
            }
        }
    }

    /// Drop all measurement state (controller restart: the meter is
    /// volatile and rebuilds over subsequent epochs).
    fn reset(&mut self) {
        self.sample_a.clear();
        self.hist.clear();
        self.last_rates.clear();
    }

    fn demand(&self, agg: &FlowAggregate) -> Option<AggDemand> {
        let s = self.hist.get(agg)?.summary()?;
        Some(AggDemand {
            agg: *agg,
            pps: s.pps,
            bps: s.bps,
            n_active: s.n_active,
            m_pps: s.m_pps,
            m_bps: s.m_bps,
        })
    }

    fn forget(&mut self, agg: &FlowAggregate) {
        self.hist.remove(agg);
        self.sample_a.remove(agg);
    }
}

/// An install transaction awaiting the ToR's Ack. Keeps everything needed
/// to retransmit: the batch is resent verbatim under the same xid, and the
/// ToR's idempotent install semantics make re-delivery harmless.
struct InstallTxn {
    /// Aggregates the batch offloads.
    aggs: Vec<FlowAggregate>,
    /// The synthesized rule bundle (kept for retransmission).
    rules: Vec<TorRule>,
    /// Decision broadcast deferred until the Ack lands.
    broadcast: OffloadDecision,
    /// 0 for the initial send; incremented per retransmission.
    attempt: u32,
    /// Handle of the armed timeout timer (cancelled when a reply lands).
    timeout: EventHandle,
    /// Open `offload-xact` telemetry span (None when tracing is disabled);
    /// closed when the transaction resolves (Ack, Error, or abandonment).
    span: Option<SpanId>,
}

/// The TOR controller node.
pub struct TorController {
    cfg: TorControllerConfig,
    de: DecisionEngine,
    /// The production decision engine: incremental top-k. The retained
    /// full-scan `de` doubles as the differential oracle; building with
    /// `--features full-scan-de` routes epochs through it instead.
    #[cfg(not(feature = "full-scan-de"))]
    inc: IncrementalDecisionEngine,
    /// Latest report per local controller.
    reports: HashMap<Ip, DemandReport>,
    /// Currently offloaded aggregates.
    offloaded: HashSet<FlowAggregate>,
    /// Installed ToR state per aggregate: the ACL spec (tunnel mappings are
    /// shared, refcounted separately).
    installed_spec: HashMap<FlowAggregate, (TenantId, FlowSpec)>,
    spec_to_agg: HashMap<(TenantId, FlowSpec), FlowAggregate>,
    hw: HwMeter,
    next_xid: u64,
    /// Offloads awaiting ToR Ack, keyed by xid.
    pending_install: HashMap<u64, InstallTxn>,
    /// Demoted rule sets awaiting GC.
    gc_queue: HashMap<u64, Vec<(TenantId, FlowSpec)>>,
    next_gc: u64,
    epoch_in_interval: u32,
    interval: u64,
    /// Outstanding reconciliation dump: (xid, offloaded set snapshotted at
    /// request time). The snapshot keeps installs acked while the dump was
    /// in flight from being misclassified as lost.
    pending_reconcile: Option<(u64, HashSet<FlowAggregate>)>,
    reconcile_armed: bool,
    /// Install failures in a row; resets on any successful Ack.
    consecutive_install_failures: u32,
    /// While set and in the future, no new offloads are attempted (traffic
    /// stays on the software path).
    hw_suspended_until: Option<SimTime>,
    /// Highest ToR boot generation observed (probe replies and rule dumps
    /// carry it). A bump proves the hardware table was wiped.
    tor_generation: u64,
    /// The ToR is believed down (probe Error / timeout threshold): offloads
    /// are suspended until a probe is answered again.
    tor_down: bool,
    /// One-shot guard for arming the periodic probe loop.
    probe_armed: bool,
    /// Outstanding liveness probe: (xid, timeout-timer handle).
    pending_probe: Option<(u64, EventHandle)>,
    /// Unanswered probes in a row; resets on any reply.
    consecutive_probe_failures: u32,
    /// Controller incarnation: highest chaos restart epoch adopted.
    restart_epoch: u64,
    /// A restarted incarnation is rebuilding from the hardware dump; no
    /// decisions are made until the dump lands.
    recovering: bool,
    /// xid of the outstanding recovery rule dump.
    recovery_xid: Option<u64>,
    /// Consecutive measured zero-rate hardware epochs per offloaded
    /// aggregate (blackhole detection).
    zero_epochs: HashMap<FlowAggregate, u32>,
    /// Offloaded aggregates that have carried hardware traffic at least
    /// once — only those can be declared blackholed (a rule that never
    /// carried traffic has nothing to lose).
    hw_active: HashSet<FlowAggregate>,
    /// Blackhole-demoted aggregates barred from re-offload until the time.
    blackhole_until: HashMap<FlowAggregate, SimTime>,
    /// VMs whose server reported its SR-IOV hardware path down; aggregates
    /// touching them are not offloaded.
    hw_down_vms: HashSet<(TenantId, Ip)>,
    /// Fast-path entries currently used by this controller.
    pub entries_used: usize,
    /// Decision rounds executed.
    pub rounds: u64,
    /// Tenants ever seen in the offloaded set — remembered so
    /// [`TorController::publish_telemetry`] can zero a tenant's occupancy
    /// gauges after its last entry is demoted (a stale last-nonzero gauge
    /// would misreport the fairness picture). BTreeSet: registration order
    /// must be deterministic.
    telemetry_tenants: std::collections::BTreeSet<TenantId>,
}

impl TorController {
    /// Build; post [`TorController::boot_event`] to start.
    pub fn new(cfg: TorControllerConfig) -> TorController {
        let hist_cap = (cfg.timing.epochs_per_interval * cfg.timing.history_intervals) as usize;
        TorController {
            de: DecisionEngine::new(cfg.de.clone()),
            #[cfg(not(feature = "full-scan-de"))]
            inc: IncrementalDecisionEngine::new(cfg.de.clone()),
            reports: HashMap::new(),
            offloaded: HashSet::new(),
            installed_spec: HashMap::new(),
            spec_to_agg: HashMap::new(),
            hw: HwMeter {
                cap: hist_cap,
                ..HwMeter::default()
            },
            next_xid: 1,
            pending_install: HashMap::new(),
            gc_queue: HashMap::new(),
            next_gc: 0,
            epoch_in_interval: 0,
            interval: 0,
            pending_reconcile: None,
            reconcile_armed: false,
            consecutive_install_failures: 0,
            hw_suspended_until: None,
            tor_generation: 0,
            tor_down: false,
            probe_armed: false,
            pending_probe: None,
            consecutive_probe_failures: 0,
            restart_epoch: 0,
            recovering: false,
            recovery_xid: None,
            zero_epochs: HashMap::new(),
            hw_active: HashSet::new(),
            blackhole_until: HashMap::new(),
            hw_down_vms: HashSet::new(),
            entries_used: 0,
            rounds: 0,
            telemetry_tenants: std::collections::BTreeSet::new(),
            cfg,
        }
    }

    /// Publish per-tenant fast-path occupancy into the registry
    /// (pull-model, like `Testbed::publish_telemetry` — call at collection
    /// points, never from the hot path): `ctrl.tenant.offloaded_entries`
    /// and `ctrl.tenant.occupancy_share` gauges, labelled by tenant.
    pub fn publish_telemetry(&mut self, reg: &mut Registry) {
        let mut per: std::collections::BTreeMap<TenantId, u64> = std::collections::BTreeMap::new();
        for a in &self.offloaded {
            *per.entry(a.tenant()).or_default() += 1;
        }
        self.telemetry_tenants.extend(per.keys().copied());
        let budget = self.cfg.budget.max(1) as f64;
        for &t in &self.telemetry_tenants {
            let n = per.get(&t).copied().unwrap_or(0);
            let label = t.0.to_string();
            let g = reg.gauge("ctrl.tenant.offloaded_entries", &[("tenant", &label)]);
            reg.gauge_set(g, n as f64);
            let g = reg.gauge("ctrl.tenant.occupancy_share", &[("tenant", &label)]);
            reg.gauge_set(g, n as f64 / budget);
        }
    }

    /// Wire the local controllers (deployment patches this after creating
    /// them, since the TOR controller is created first).
    pub fn set_locals(&mut self, locals: Vec<NodeId>) {
        self.cfg.locals = locals;
    }

    /// The timer event that starts the measurement/decision loop.
    pub fn boot_event() -> Event {
        Event::Timer {
            tag: tags::EPOCH,
            a: 0,
            b: 0,
        }
    }

    /// Currently offloaded aggregates (inspection).
    pub fn offloaded(&self) -> &HashSet<FlowAggregate> {
        &self.offloaded
    }

    /// Highest ToR boot generation this controller has observed.
    pub fn tor_generation(&self) -> u64 {
        self.tor_generation
    }

    /// True while a restarted incarnation is still rebuilding its state
    /// from the hardware rule dump.
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// True while the ToR is believed unreachable (probe-driven).
    pub fn tor_believed_down(&self) -> bool {
        self.tor_down
    }

    /// Bump a per-tenant transition counter (`ctrl.tenant.offloads` /
    /// `ctrl.tenant.demotes`). Lazily registered — the registry dedups by
    /// (name, labels) — and only ever called on an actual offloaded-set
    /// transition, so rates derived from these counters are exact.
    fn count_tenant_transition(reg: &mut Registry, name: &str, t: TenantId) {
        let label = t.0.to_string();
        let id = reg.counter(name, &[("tenant", &label)]);
        reg.inc(id);
    }

    fn request_tor_dump(&mut self, api: &mut Api<'_, Event, NetCtx>, phase_b: bool) {
        let xid = self.next_xid;
        self.next_xid += 1;
        // Phase encoded in the low bit of the xid parity map: track via
        // pending_install? Simpler: even = A, odd = B.
        let xid = xid * 2 + if phase_b { 1 } else { 0 };
        api.send(
            self.cfg.tor,
            SimDuration::from_micros(50),
            Event::Ctl(CtlMsg::new(api.self_id, CtrlRequest::DumpFlowStats { xid })),
        );
    }

    fn merged_demands(&self) -> Vec<AggDemand> {
        // Merge software reports (sum across servers: src- and dst-side
        // aggregates are observed at both endpoints' vswitches, so take the
        // max per reporter pair instead of double counting).
        let mut merged: std::collections::BTreeMap<FlowAggregate, AggDemand> =
            std::collections::BTreeMap::new();
        for rep in self.reports.values() {
            for d in &rep.entries {
                merged
                    .entry(d.agg)
                    .and_modify(|m| {
                        m.pps = m.pps.max(d.pps);
                        m.bps = m.bps.max(d.bps);
                        m.n_active = m.n_active.max(d.n_active);
                        m.m_pps = m.m_pps.max(d.m_pps);
                        m.m_bps = m.m_bps.max(d.m_bps);
                    })
                    .or_insert(*d);
            }
        }
        // Fold in hardware-path measurements for offloaded aggregates.
        for agg in &self.offloaded {
            if let Some(hd) = self.hw.demand(agg) {
                merged
                    .entry(*agg)
                    .and_modify(|m| {
                        m.pps += hd.pps;
                        m.bps += hd.bps;
                        m.n_active = m.n_active.max(hd.n_active);
                        m.m_pps = m.m_pps.max(hd.m_pps);
                        m.m_bps = m.m_bps.max(hd.m_bps);
                    })
                    .or_insert(hd);
            }
        }
        merged.into_values().collect()
    }

    fn decide(&mut self, api: &mut Api<'_, Event, NetCtx>) {
        if self.recovering {
            // A restarted incarnation makes no decisions until its view of
            // the hardware is rebuilt; the cadence resumes next interval.
            return;
        }
        self.rounds += 1;
        let now = api.now;
        self.blackhole_until.retain(|_, t| now < *t);
        let demands = self.merged_demands();

        // Run the epoch under a wall clock. The duration feeds only the
        // `ctrl.de.epoch_ns` counter — it never influences simulated time or
        // any decision, so determinism is preserved (the fingerprint used by
        // the determinism suite excludes the registry).
        let t0 = std::time::Instant::now();
        #[cfg(not(feature = "full-scan-de"))]
        let (decision, de_stats) = {
            let d = self
                .inc
                .decide_snapshot(&demands, &self.offloaded, self.cfg.budget);
            (d, self.inc.last_stats())
        };
        #[cfg(feature = "full-scan-de")]
        let (decision, de_stats) = {
            let d = self.de.decide(&demands, &self.offloaded, self.cfg.budget);
            // The oracle has no delta pipeline; synthesize the equivalents so
            // the metric names stay meaningful under either engine.
            let s = DeEpochStats {
                deltas_ingested: demands.len() as u64,
                entries_indexed: demands.len() as u64,
                scanned: demands.len() as u64,
                band_crossers: (d.offload.len() + d.demote.len()) as u64,
                churn_suppressed: 0,
            };
            (d, s)
        };
        let epoch_ns = t0.elapsed().as_nanos() as u64;

        {
            let reg = &mut api.ctx.telemetry.registry;
            let c = &self.cfg.counters;
            reg.inc(c.de_epochs);
            reg.add(c.de_epoch_ns, epoch_ns);
            reg.add(c.de_deltas_ingested, de_stats.deltas_ingested);
            reg.add(c.de_band_crossers, de_stats.band_crossers);
            reg.add(c.de_churn_suppressed, de_stats.churn_suppressed);
        }
        if api.ctx.telemetry.spans.enabled() {
            let spans = &mut api.ctx.telemetry.spans;
            let comp = spans.comp("tor-ctrl");
            // Zero-duration marker span: one per decision epoch, keyed by the
            // round number so epochs are distinguishable in a trace.
            if let Some(s) = spans.begin(api.now.as_nanos(), comp, "de-epoch", self.rounds) {
                spans.end(api.now.as_nanos(), s);
            }
        }

        // Hardware rates for the FPS splits (bits/sec). Sorted for
        // determinism (HashSet iteration order is randomized).
        let mut offl: Vec<FlowAggregate> = self.offloaded.iter().copied().collect();
        offl.sort();
        let hw_agg_bps: Vec<(FlowAggregate, f64)> = offl
            .iter()
            .filter_map(|a| self.hw.demand(a).map(|d| (*a, d.bps * 8.0)))
            .collect();

        // Demotions: broadcast now, GC the ToR rules after the grace.
        if !decision.demote.is_empty() {
            let mut specs = Vec::new();
            for agg in &decision.demote {
                if let Some(s) = self.installed_spec.remove(agg) {
                    self.spec_to_agg.remove(&s);
                    specs.push(s);
                }
                if self.offloaded.remove(agg) {
                    Self::count_tenant_transition(
                        &mut api.ctx.telemetry.registry,
                        "ctrl.tenant.demotes",
                        agg.tenant(),
                    );
                }
                self.hw.forget(agg);
            }
            if !specs.is_empty() {
                // Exact accounting: `specs` counts entries actually removed
                // from `installed_spec`, each of which incremented
                // `entries_used` exactly once.
                self.entries_used -= specs.len();
                let token = self.next_gc;
                self.next_gc += 1;
                self.gc_queue.insert(token, specs);
                api.timer(
                    self.cfg.demote_grace,
                    Event::Timer {
                        tag: tags::GC,
                        a: token,
                        b: 0,
                    },
                );
            }
        }

        // While the hardware is suspended (too many consecutive install
        // failures) or the ToR is believed down (probe-driven), attempt no
        // offloads: traffic stays on the software path.
        let hw_ok = !self.tor_down
            && match self.hw_suspended_until {
                Some(t) if api.now < t => false,
                Some(_) => {
                    self.hw_suspended_until = None;
                    true
                }
                None => true,
            };

        // Offloads: synthesize rules, install at the ToR, broadcast on Ack.
        let mut rules = Vec::new();
        let mut offloadable = Vec::new();
        if hw_ok {
            for agg in &decision.offload {
                if self.entries_used + rules.len() >= self.cfg.budget {
                    break;
                }
                // Chaos gates: an aggregate in blackhole cooldown, or homed
                // on a server whose SR-IOV path is down, stays in software.
                if self.blackhole_until.contains_key(agg) || self.touches_down_vm(agg) {
                    continue;
                }
                match self.cfg.rule_manager.synthesize(agg, 10) {
                    Ok(rule) => {
                        rules.push(rule);
                        offloadable.push(*agg);
                    }
                    Err(_) => { /* deny-overlap: skip this aggregate */ }
                }
            }
        }
        // Audit every offload/demote with the score that ranked it, the
        // current software/hardware rate split, and fast-path occupancy.
        if api.ctx.telemetry.audit.enabled() {
            let by_agg: HashMap<FlowAggregate, &AggDemand> =
                demands.iter().map(|d| (d.agg, d)).collect();
            let hw_bps: HashMap<FlowAggregate, f64> = hw_agg_bps.iter().copied().collect();
            let now_ns = api.now.as_nanos();
            let (de, entries_used, budget) = (&self.de, self.entries_used, self.cfg.budget);
            let audit = &mut api.ctx.telemetry.audit;
            let decided = decision
                .demote
                .iter()
                .map(|a| (DecisionKind::Demote, a))
                .chain(offloadable.iter().map(|a| (DecisionKind::Offload, a)));
            for (kind, agg) in decided {
                let (score, total_bits) = by_agg
                    .get(agg)
                    .map(|d| (de.score(d), d.bps * 8.0))
                    .unwrap_or((0.0, 0.0));
                let hw_bits = hw_bps.get(agg).copied().unwrap_or(0.0);
                let sw_bits = (total_bits - hw_bits).max(0.0);
                audit.decision(
                    now_ns,
                    kind,
                    &format!("{agg:?}"),
                    score,
                    (sw_bits as u64, hw_bits as u64),
                    entries_used as u64,
                    budget as u64,
                );
            }
        }

        let broadcast = OffloadDecision {
            interval: self.interval,
            offload: offloadable.clone(),
            demote: decision.demote.clone(),
            hw_agg_bps,
        };
        if rules.is_empty() {
            // Nothing to install; broadcast demotions/rates immediately.
            self.broadcast(api, broadcast);
        } else {
            let xid = self.next_xid;
            self.next_xid += 1;
            for (agg, rule) in offloadable.iter().zip(&rules) {
                self.installed_spec.insert(*agg, (rule.tenant, rule.spec));
                self.spec_to_agg.insert((rule.tenant, rule.spec), *agg);
                // Re-offloading a spec whose demoted rule still awaits GC:
                // drop the GC token's claim so the grace-period sweep can't
                // delete a rule the hardware is about to need again (the
                // install itself is an idempotent no-op at the ToR).
                self.unqueue_gc(rule.tenant, &rule.spec);
            }
            self.entries_used += rules.len();
            // Trace the install transaction: opens here, closes on the Ack
            // (or Error/abandonment) so the span length is the offload
            // hand-shake latency.
            let span = if api.ctx.telemetry.spans.enabled() {
                let spans = &mut api.ctx.telemetry.spans;
                let comp = spans.comp("tor-ctrl");
                spans.begin(api.now.as_nanos(), comp, "offload-xact", xid)
            } else {
                None
            };
            self.pending_install.insert(
                xid,
                InstallTxn {
                    aggs: offloadable,
                    rules,
                    broadcast,
                    attempt: 0,
                    timeout: EventHandle::NULL,
                    span,
                },
            );
            self.send_install(api, xid);
        }
    }

    /// (Re)transmit a pending install batch and arm its Ack timeout with
    /// bounded exponential backoff (`install_timeout * 2^attempt`, capped).
    fn send_install(&mut self, api: &mut Api<'_, Event, NetCtx>, xid: u64) {
        let (rules, attempt) = match self.pending_install.get(&xid) {
            Some(t) => (t.rules.clone(), t.attempt),
            None => return,
        };
        api.send(
            self.cfg.tor,
            SimDuration::from_micros(100),
            Event::Ctl(CtlMsg::new(
                api.self_id,
                CtrlRequest::InstallTorRules { rules, xid },
            )),
        );
        let backoff = self
            .cfg
            .ctrl
            .install_timeout
            .0
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cfg.ctrl.backoff_cap.0);
        let h = api.timer(
            SimDuration(backoff),
            Event::Timer {
                tag: tags::INSTALL_TIMEOUT,
                a: xid,
                b: attempt as u64,
            },
        );
        if let Some(txn) = self.pending_install.get_mut(&xid) {
            txn.timeout = h;
        }
    }

    /// Ack-timeout handling: retransmit with backoff, or — once the retry
    /// budget is spent — abandon the transaction: roll the bookkeeping
    /// back, broadcast only the demotions (placers never flipped, so no
    /// traffic is blackholed), and count a hardware failure. Any rules a
    /// late-arriving attempt installs anyway become untracked hardware
    /// state that the reconciliation sweep removes.
    fn on_install_timeout(&mut self, api: &mut Api<'_, Event, NetCtx>, xid: u64, attempt: u64) {
        let current = match self.pending_install.get(&xid) {
            Some(t) => t.attempt,
            None => return,
        };
        if current as u64 != attempt {
            return; // stale timer from a superseded attempt
        }
        api.ctx
            .telemetry
            .registry
            .inc(self.cfg.counters.install_timeouts);
        if current >= self.cfg.ctrl.max_install_retries {
            let txn = self
                .pending_install
                .remove(&xid)
                .expect("checked just above");
            api.ctx
                .telemetry
                .registry
                .inc(self.cfg.counters.installs_abandoned);
            api.ctx.telemetry.flight.record(
                api.now.as_nanos(),
                "tor-ctrl",
                Severity::Error,
                "install transaction abandoned after retry budget",
                [xid, current as u64, txn.aggs.len() as u64],
            );
            if let Some(s) = txn.span {
                api.ctx.telemetry.spans.end(api.now.as_nanos(), s);
            }
            self.rollback_install(&txn.aggs);
            self.record_hw_failure(api);
            let mut b = txn.broadcast;
            b.offload.clear();
            self.broadcast(api, b);
        } else {
            if let Some(txn) = self.pending_install.get_mut(&xid) {
                txn.attempt += 1;
            }
            api.ctx
                .telemetry
                .registry
                .inc(self.cfg.counters.install_retries);
            self.send_install(api, xid);
        }
    }

    fn broadcast(&self, api: &mut Api<'_, Event, NetCtx>, d: OffloadDecision) {
        for &local in &self.cfg.locals {
            api.send(
                local,
                SimDuration::from_micros(100),
                Event::Ctl(CtlMsg::new(api.self_id, d.clone())),
            );
        }
    }

    fn on_install_ack(&mut self, api: &mut Api<'_, Event, NetCtx>, xid: u64, ok: bool) {
        let Some(txn) = self.pending_install.remove(&xid) else {
            return; // duplicate reply, or reply after abandonment
        };
        api.cancel(txn.timeout);
        if let Some(s) = txn.span {
            api.ctx.telemetry.spans.end(api.now.as_nanos(), s);
        }
        if ok {
            self.consecutive_install_failures = 0;
            for a in &txn.aggs {
                if self.offloaded.insert(*a) {
                    // Offloads commit here (on Ack): failed installs never
                    // count as transitions.
                    Self::count_tenant_transition(
                        &mut api.ctx.telemetry.registry,
                        "ctrl.tenant.offloads",
                        a.tenant(),
                    );
                }
            }
            self.broadcast(api, txn.broadcast);
        } else {
            // Definitive rejection (capacity exhausted / injected failure):
            // the ToR's atomic batch left no partial state, so roll back the
            // bookkeeping exactly and broadcast only the demotions.
            api.ctx
                .telemetry
                .registry
                .inc(self.cfg.counters.install_failures);
            self.rollback_install(&txn.aggs);
            self.record_hw_failure(api);
            let mut b = txn.broadcast;
            b.offload.clear();
            self.broadcast(api, b);
        }
    }

    /// Undo `decide()`'s eager bookkeeping for aggregates whose install
    /// never took effect. Exact accounting: `entries_used` is decremented
    /// only for entries actually still recorded (never a blanket
    /// `saturating_sub`, which masked double-frees against a concurrent
    /// demote-GC), and the reverse map entry is removed only while it still
    /// points at the same aggregate.
    fn rollback_install(&mut self, aggs: &[FlowAggregate]) {
        for a in aggs {
            if let Some(s) = self.installed_spec.remove(a) {
                debug_assert!(self.entries_used > 0, "entries_used underflow");
                self.entries_used -= 1;
                if self.spec_to_agg.get(&s) == Some(a) {
                    self.spec_to_agg.remove(&s);
                }
            }
        }
    }

    /// Count one hardware install failure; past the threshold, suspend
    /// offloads for the cooldown (graceful degradation to the software
    /// path — demand keeps being served via the vswitch).
    fn record_hw_failure(&mut self, api: &mut Api<'_, Event, NetCtx>) {
        self.consecutive_install_failures += 1;
        if self.consecutive_install_failures >= self.cfg.ctrl.hw_failure_threshold {
            self.consecutive_install_failures = 0;
            self.hw_suspended_until = Some(api.now + self.cfg.ctrl.hw_cooldown);
            api.ctx
                .telemetry
                .registry
                .inc(self.cfg.counters.hw_suspensions);
            api.ctx.telemetry.flight.record(
                api.now.as_nanos(),
                "tor-ctrl",
                Severity::Warn,
                "hardware path suspended (install-failure cooldown)",
                [
                    self.cfg.ctrl.hw_failure_threshold as u64,
                    self.cfg.ctrl.hw_cooldown.0,
                    0,
                ],
            );
        }
    }

    /// Remove `(tenant, spec)` from every pending demote-GC batch (called
    /// when the spec is re-offloaded during its grace period).
    fn unqueue_gc(&mut self, tenant: TenantId, spec: &FlowSpec) {
        for specs in self.gc_queue.values_mut() {
            specs.retain(|s| !(s.0 == tenant && s.1 == *spec));
        }
    }

    /// True when a demote-GC batch still claims this rule (it is within its
    /// grace period and must not be treated as untracked).
    fn gc_pending(&self, s: &(TenantId, FlowSpec)) -> bool {
        self.gc_queue.values().any(|v| v.contains(s))
    }

    /// Reconciliation: compare the ToR's actual rule inventory against the
    /// controller's bookkeeping and repair both sides. Three repairs:
    ///
    /// 1. hardware rules nobody tracks (left by abandoned transactions or
    ///    late retransmits) are removed immediately;
    /// 2. offloaded aggregates whose rule vanished from hardware are
    ///    demoted (placers flip back to the software path — better than
    ///    silently dropping at the ToR's default-deny VRF);
    /// 3. `entries_used` is re-derived from `installed_spec` if drifted.
    ///
    /// Only aggregates already offloaded when the dump was *requested* are
    /// eligible for (2): anything acked while the dump was in flight is
    /// legitimately absent from the reply.
    fn on_reconcile_dump(
        &mut self,
        api: &mut Api<'_, Event, NetCtx>,
        xid: u64,
        rules: Vec<(TenantId, FlowSpec)>,
    ) {
        let Some((want, snapshot)) = self.pending_reconcile.take() else {
            return; // duplicate reply
        };
        if xid != want {
            // A delayed reply to a superseded sweep; keep waiting.
            self.pending_reconcile = Some((want, snapshot));
            return;
        }

        let stale: Vec<(TenantId, FlowSpec)> = rules
            .iter()
            .filter(|rs| !self.spec_to_agg.contains_key(rs) && !self.gc_pending(rs))
            .copied()
            .collect();
        if !stale.is_empty() {
            api.ctx.telemetry.registry.add(
                self.cfg.counters.reconcile_stale_removed,
                stale.len() as u64,
            );
            api.send(
                self.cfg.tor,
                SimDuration::from_micros(100),
                Event::Ctl(CtlMsg::new(
                    api.self_id,
                    CtrlRequest::RemoveTorRules { rules: stale },
                )),
            );
        }

        let have: HashSet<(TenantId, FlowSpec)> = rules.into_iter().collect();
        let mut lost: Vec<FlowAggregate> = snapshot
            .into_iter()
            .filter(|a| self.offloaded.contains(a))
            .filter(|a| {
                self.installed_spec
                    .get(a)
                    .is_some_and(|s| !have.contains(s))
            })
            .collect();
        lost.sort();
        if !lost.is_empty() {
            api.ctx
                .telemetry
                .registry
                .add(self.cfg.counters.reconcile_lost_demoted, lost.len() as u64);
            for a in &lost {
                if self.offloaded.remove(a) {
                    Self::count_tenant_transition(
                        &mut api.ctx.telemetry.registry,
                        "ctrl.tenant.demotes",
                        a.tenant(),
                    );
                }
                self.hw.forget(a);
            }
            self.rollback_install(&lost);
            self.broadcast(
                api,
                OffloadDecision {
                    interval: self.interval,
                    offload: Vec::new(),
                    demote: lost,
                    hw_agg_bps: Vec::new(),
                },
            );
        }

        let expect = self.installed_spec.len();
        if self.entries_used != expect {
            api.ctx
                .telemetry
                .registry
                .inc(self.cfg.counters.reconcile_counter_repairs);
            api.ctx.telemetry.flight.record(
                api.now.as_nanos(),
                "tor-ctrl",
                Severity::Warn,
                "entries_used drift repaired by reconciliation",
                [self.entries_used as u64, expect as u64, 0],
            );
            self.entries_used = expect;
        }
    }

    fn on_migration_prepare(&mut self, api: &mut Api<'_, Event, NetCtx>, m: MigrationPrepare) {
        // Demote every aggregate touching the migrating VM (paper §4.1.2:
        // "any offloaded flows must be returned back to the VM's hypervisor
        // before the migration can occur").
        let mut affected: Vec<FlowAggregate> = self
            .offloaded
            .iter()
            .copied()
            .filter(|a| match *a {
                FlowAggregate::SrcApp { tenant, ip, .. }
                | FlowAggregate::DstApp { tenant, ip, .. } => tenant == m.tenant && ip == m.vm_ip,
                FlowAggregate::Exact(k) => {
                    k.tenant == m.tenant && (k.src_ip == m.vm_ip || k.dst_ip == m.vm_ip)
                }
            })
            .collect();
        affected.sort();
        self.force_demote(api, affected);
    }

    /// Force-demote offloaded aggregates outside the normal decision flow
    /// (VM migration, hardware-path failure, blackhole suspicion): placers
    /// flip back to the software path immediately via a demote-only
    /// broadcast, and the ToR rules are garbage-collected after the usual
    /// grace so in-flight hardware packets still match. `affected` must be
    /// sorted; empty input is a no-op.
    fn force_demote(&mut self, api: &mut Api<'_, Event, NetCtx>, affected: Vec<FlowAggregate>) {
        if affected.is_empty() {
            return;
        }
        let mut specs = Vec::new();
        for agg in &affected {
            if let Some(s) = self.installed_spec.remove(agg) {
                self.spec_to_agg.remove(&s);
                specs.push(s);
            }
            if self.offloaded.remove(agg) {
                Self::count_tenant_transition(
                    &mut api.ctx.telemetry.registry,
                    "ctrl.tenant.demotes",
                    agg.tenant(),
                );
            }
            self.hw.forget(agg);
            self.zero_epochs.remove(agg);
            self.hw_active.remove(agg);
        }
        self.entries_used -= specs.len();
        self.broadcast(
            api,
            OffloadDecision {
                interval: self.interval,
                offload: Vec::new(),
                demote: affected,
                hw_agg_bps: Vec::new(),
            },
        );
        // Remove ToR rules after the usual grace.
        let token = self.next_gc;
        self.next_gc += 1;
        self.gc_queue.insert(token, specs);
        api.timer(
            self.cfg.demote_grace,
            Event::Timer {
                tag: tags::GC,
                a: token,
                b: 0,
            },
        );
    }

    /// Does the aggregate touch a VM whose server reported its SR-IOV
    /// hardware path down?
    fn touches_down_vm(&self, agg: &FlowAggregate) -> bool {
        if self.hw_down_vms.is_empty() {
            return false;
        }
        match *agg {
            FlowAggregate::SrcApp { tenant, ip, .. } | FlowAggregate::DstApp { tenant, ip, .. } => {
                self.hw_down_vms.contains(&(tenant, ip))
            }
            FlowAggregate::Exact(k) => {
                self.hw_down_vms.contains(&(k.tenant, k.src_ip))
                    || self.hw_down_vms.contains(&(k.tenant, k.dst_ip))
            }
        }
    }

    /// A local controller reported its server's SR-IOV path changed
    /// liveness. Down: force-demote every offloaded aggregate touching that
    /// server's VMs — their hardware path is dark, so software is strictly
    /// better — and bar those VMs from re-offload. Up: lift the bar; the
    /// normal hysteresis (N-of-M persistence + score band) governs
    /// re-offload, so a flapping VF cannot thrash the fast path.
    fn on_hw_path_report(&mut self, api: &mut Api<'_, Event, NetCtx>, rep: HwPathReport) {
        if rep.up {
            for vm in &rep.vms {
                self.hw_down_vms.remove(vm);
            }
            api.ctx.telemetry.flight.record(
                api.now.as_nanos(),
                "tor-ctrl",
                Severity::Info,
                "server hardware path recovered; VMs re-eligible for offload",
                [rep.vms.len() as u64, 0, 0],
            );
            return;
        }
        for vm in &rep.vms {
            self.hw_down_vms.insert(*vm);
        }
        let mut affected: Vec<FlowAggregate> = self
            .offloaded
            .iter()
            .copied()
            .filter(|a| self.touches_down_vm(a))
            .collect();
        affected.sort();
        api.ctx.telemetry.registry.add(
            self.cfg.counters.chaos_hw_path_down_demotes,
            affected.len() as u64,
        );
        api.ctx.telemetry.flight.record(
            api.now.as_nanos(),
            "tor-ctrl",
            Severity::Error,
            "server hardware path down: demoting its offloaded aggregates",
            [affected.len() as u64, rep.vms.len() as u64, 0],
        );
        self.force_demote(api, affected);
    }

    /// Blackhole detection, run each closed measurement epoch when enabled:
    /// an offloaded aggregate whose hardware counters stopped moving for
    /// `blackhole_epochs` consecutive measured epochs — while the software
    /// plane still remembers demand for it — is presumed blackholed (dead
    /// VF, wedged rule) and force-demoted, then barred from re-offload for
    /// the cooldown.
    fn check_blackholes(&mut self, api: &mut Api<'_, Event, NetCtx>) {
        let mut offl: Vec<FlowAggregate> = self.offloaded.iter().copied().collect();
        offl.sort();
        let mut victims: Vec<FlowAggregate> = Vec::new();
        for agg in offl {
            match self.hw.last_rates.get(&agg) {
                Some(&(pps, bps)) if pps <= 0.0 && bps <= 0.0 => {
                    if !self.hw_active.contains(&agg) {
                        continue; // never carried traffic: nothing to lose
                    }
                    if !self.sw_demand_persists(&agg) {
                        continue; // demand genuinely stopped: idle, not dark
                    }
                    let n = self.zero_epochs.entry(agg).or_insert(0);
                    *n += 1;
                    if *n >= self.cfg.ctrl.blackhole_epochs {
                        victims.push(agg);
                    }
                }
                Some(_) => {
                    // Counters moved: healthy; remember it carried traffic.
                    self.hw_active.insert(agg);
                    self.zero_epochs.remove(&agg);
                }
                None => {} // unmeasurable epoch (reinstall churn): no evidence
            }
        }
        if victims.is_empty() {
            return;
        }
        for agg in &victims {
            self.blackhole_until
                .insert(*agg, api.now + self.cfg.ctrl.blackhole_cooldown);
        }
        api.ctx.telemetry.registry.add(
            self.cfg.counters.chaos_blackhole_demotes,
            victims.len() as u64,
        );
        api.ctx.telemetry.flight.record(
            api.now.as_nanos(),
            "tor-ctrl",
            Severity::Warn,
            "blackhole suspected: hw counters idle under live demand; demoting",
            [
                victims.len() as u64,
                self.cfg.ctrl.blackhole_epochs as u64,
                0,
            ],
        );
        self.force_demote(api, victims);
    }

    /// Does any local controller's latest report still show demand (current
    /// or median-history) for this aggregate? Offloaded traffic bypasses
    /// the vswitch, so the *median history* is what persists for a few
    /// intervals after a hardware path goes dark — that persistence is the
    /// blackhole signal.
    fn sw_demand_persists(&self, agg: &FlowAggregate) -> bool {
        self.reports.values().any(|rep| {
            rep.entries
                .iter()
                .any(|d| d.agg == *agg && (d.pps > 0.0 || d.m_pps > 0.0))
        })
    }

    /// Adopt a newly observed ToR boot generation: the hardware table was
    /// wiped by a reboot, so any in-flight reconcile snapshot is already
    /// untrustworthy. Counting happens here; the caller decides whether to
    /// re-sweep.
    fn note_tor_reboot(&mut self, api: &mut Api<'_, Event, NetCtx>, generation: u64) {
        self.tor_generation = generation;
        api.ctx
            .telemetry
            .registry
            .inc(self.cfg.counters.chaos_tor_reboots_seen);
        api.ctx.telemetry.flight.record(
            api.now.as_nanos(),
            "tor-ctrl",
            Severity::Warn,
            "tor reboot detected: hardware table presumed wiped",
            [
                generation,
                self.offloaded.len() as u64,
                self.entries_used as u64,
            ],
        );
    }

    /// Start a reconciliation sweep now: snapshot the offloaded set and
    /// request a rule dump (shared by the periodic timer and the
    /// reboot-triggered immediate sweep).
    fn start_reconcile_dump(&mut self, api: &mut Api<'_, Event, NetCtx>) {
        api.ctx
            .telemetry
            .registry
            .inc(self.cfg.counters.reconcile_sweeps);
        let xid = self.next_xid;
        self.next_xid += 1;
        // A still-outstanding previous sweep (dump or reply lost to
        // faults) is superseded: its snapshot is replaced wholesale.
        self.pending_reconcile = Some((xid, self.offloaded.clone()));
        api.send(
            self.cfg.tor,
            SimDuration::from_micros(50),
            Event::Ctl(CtlMsg::new(api.self_id, CtrlRequest::DumpTorRules { xid })),
        );
    }

    fn mark_tor_down(&mut self, api: &mut Api<'_, Event, NetCtx>, msg: &str) {
        if self.tor_down {
            return;
        }
        self.tor_down = true;
        api.ctx.telemetry.flight.record(
            api.now.as_nanos(),
            "tor-ctrl",
            Severity::Error,
            msg,
            [
                self.consecutive_probe_failures as u64,
                self.offloaded.len() as u64,
                0,
            ],
        );
    }

    fn on_probe_reply(&mut self, api: &mut Api<'_, Event, NetCtx>, xid: u64, generation: u64) {
        if self.pending_probe.is_none_or(|(want, _)| want != xid) {
            return; // reply to a superseded or pre-restart probe
        }
        let (_, h) = self.pending_probe.take().expect("checked just above");
        api.cancel(h);
        self.consecutive_probe_failures = 0;
        if self.tor_down {
            self.tor_down = false;
            api.ctx.telemetry.flight.record(
                api.now.as_nanos(),
                "tor-ctrl",
                Severity::Info,
                "tor probe answered: hardware path back up",
                [xid, generation, 0],
            );
        }
        if generation > self.tor_generation {
            self.note_tor_reboot(api, generation);
            // The wiped table invalidates any in-flight reconcile snapshot;
            // sweep again immediately so lost aggregates demote now rather
            // than a full reconcile interval later.
            self.pending_reconcile = None;
            self.start_reconcile_dump(api);
        }
    }

    /// Lazily adopt a new controller incarnation when the chaos plane
    /// scripted a crash/restart: all volatile state dies with the process,
    /// and the new instance rebuilds its offloaded set, transactions, and
    /// policy occupancy from the hardware itself via a full rule dump.
    /// Decisions are suspended until the dump lands; the periodic timer
    /// chains (epoch/reconcile/probe) model the new instance restarting
    /// its loops. The xid space jumps so replies addressed to the dead
    /// incarnation can never be confused with the new one's transactions.
    fn maybe_restart(&mut self, api: &mut Api<'_, Event, NetCtx>) {
        let epoch = api.chaos_ctrl_restart_epoch();
        if epoch <= self.restart_epoch {
            return;
        }
        self.restart_epoch = epoch;
        for txn in self.pending_install.values() {
            api.cancel(txn.timeout);
            if let Some(s) = txn.span {
                api.ctx.telemetry.spans.end(api.now.as_nanos(), s);
            }
        }
        self.pending_install.clear();
        if let Some((_, h)) = self.pending_probe.take() {
            api.cancel(h);
        }
        self.reports.clear();
        self.offloaded.clear();
        self.installed_spec.clear();
        self.spec_to_agg.clear();
        self.hw.reset();
        // Demoted rules whose GC was pending become untracked hardware
        // state; the reconciliation sweep removes them.
        self.gc_queue.clear();
        self.pending_reconcile = None;
        self.consecutive_install_failures = 0;
        self.hw_suspended_until = None;
        self.entries_used = 0;
        self.epoch_in_interval = 0;
        self.consecutive_probe_failures = 0;
        self.tor_down = false;
        self.zero_epochs.clear();
        self.hw_active.clear();
        self.blackhole_until.clear();
        self.hw_down_vms.clear();
        self.next_xid = (epoch << 40) | 1;
        api.ctx
            .telemetry
            .registry
            .inc(self.cfg.counters.chaos_ctrl_restarts);
        api.ctx.telemetry.flight.record(
            api.now.as_nanos(),
            "tor-ctrl",
            Severity::Error,
            "controller restarted: rebuilding state from hardware",
            [epoch, 0, 0],
        );
        self.recovering = true;
        self.send_recovery_dump(api);
    }

    /// Ask the ToR for its full rule inventory to rebuild from. Retried on
    /// the reconcile cadence while recovery is outstanding (the request or
    /// reply can be lost to faults, or rejected by a dark ToR).
    fn send_recovery_dump(&mut self, api: &mut Api<'_, Event, NetCtx>) {
        let xid = self.next_xid;
        self.next_xid += 1;
        self.recovery_xid = Some(xid);
        api.send(
            self.cfg.tor,
            SimDuration::from_micros(50),
            Event::Ctl(CtlMsg::new(api.self_id, CtrlRequest::DumpTorRules { xid })),
        );
    }

    /// Rebuild bookkeeping from the hardware's rule inventory after a
    /// restart. Every rule whose spec inverts to a known aggregate shape
    /// ([`FlowAggregate::from_spec`]) becomes an offloaded entry again;
    /// anything else is untracked state the next reconciliation sweep
    /// removes. Per-tenant policy occupancy re-derives from the rebuilt
    /// offloaded set (no transition counters: these are not new offloads).
    fn on_recovery_dump(
        &mut self,
        api: &mut Api<'_, Event, NetCtx>,
        rules: Vec<(TenantId, FlowSpec)>,
        fastpath_used: usize,
        generation: u64,
    ) {
        self.recovering = false;
        self.recovery_xid = None;
        // Adopt silently: the new incarnation has no pre-crash view to
        // compare against, so this is baseline, not a detected reboot.
        self.tor_generation = self.tor_generation.max(generation);
        let mut aggs: Vec<FlowAggregate> = rules
            .iter()
            .filter_map(|(t, s)| FlowAggregate::from_spec(s).filter(|a| a.tenant() == *t))
            .collect();
        aggs.sort();
        aggs.dedup();
        for agg in aggs {
            let tenant = agg.tenant();
            let spec = agg.to_spec();
            self.installed_spec.insert(agg, (tenant, spec));
            self.spec_to_agg.insert((tenant, spec), agg);
            self.offloaded.insert(agg);
        }
        self.entries_used = self.installed_spec.len();
        api.ctx.telemetry.flight.record(
            api.now.as_nanos(),
            "tor-ctrl",
            Severity::Info,
            "controller state rebuilt from hardware rule dump",
            [self.entries_used as u64, fastpath_used as u64, generation],
        );
    }
}

impl Node<Event, NetCtx> for TorController {
    fn on_event(&mut self, ev: Event, api: &mut Api<'_, Event, NetCtx>) {
        // A scripted crash/restart takes effect at the next event the
        // controller would have processed (the new process starts where the
        // old one died, state-free).
        self.maybe_restart(api);
        match ev {
            Event::Timer {
                tag: tags::EPOCH, ..
            } => {
                if !self.reconcile_armed && self.cfg.ctrl.reconcile_interval > SimDuration::ZERO {
                    self.reconcile_armed = true;
                    api.timer(
                        self.cfg.ctrl.reconcile_interval,
                        Event::Timer {
                            tag: tags::RECONCILE,
                            a: 0,
                            b: 0,
                        },
                    );
                }
                if !self.probe_armed && self.cfg.ctrl.probe_interval > SimDuration::ZERO {
                    self.probe_armed = true;
                    api.timer(
                        self.cfg.ctrl.probe_interval,
                        Event::Timer {
                            tag: tags::PROBE,
                            a: 0,
                            b: 0,
                        },
                    );
                }
                self.request_tor_dump(api, false);
                api.timer(
                    self.cfg.timing.sample_gap,
                    Event::Timer {
                        tag: tags::SAMPLE_B,
                        a: 0,
                        b: 0,
                    },
                );
                api.timer(self.cfg.timing.epoch, TorController::boot_event());
            }
            Event::Timer {
                tag: tags::SAMPLE_B,
                ..
            } => {
                self.request_tor_dump(api, true);
            }
            Event::Timer {
                tag: tags::DECIDE, ..
            } => {
                self.decide(api);
            }
            Event::Timer {
                tag: tags::GC, a, ..
            } => {
                // A batch can drain to empty if every spec was re-offloaded
                // during the grace period (see `unqueue_gc`).
                if let Some(specs) = self.gc_queue.remove(&a) {
                    if !specs.is_empty() {
                        api.send(
                            self.cfg.tor,
                            SimDuration::from_micros(100),
                            Event::Ctl(CtlMsg::new(
                                api.self_id,
                                CtrlRequest::RemoveTorRules { rules: specs },
                            )),
                        );
                    }
                }
            }
            Event::Timer {
                tag: tags::INSTALL_TIMEOUT,
                a,
                b,
            } => {
                self.on_install_timeout(api, a, b);
            }
            Event::Timer {
                tag: tags::RECONCILE,
                ..
            } => {
                if self.recovering {
                    // The recovery dump is still outstanding (lost to
                    // faults, or rejected by a dark ToR): re-ask instead of
                    // sweeping — there is no bookkeeping to reconcile yet.
                    self.send_recovery_dump(api);
                } else {
                    self.start_reconcile_dump(api);
                }
                api.timer(
                    self.cfg.ctrl.reconcile_interval,
                    Event::Timer {
                        tag: tags::RECONCILE,
                        a: 0,
                        b: 0,
                    },
                );
            }
            Event::Timer {
                tag: tags::PROBE, ..
            } => {
                if self.pending_probe.is_none() {
                    let xid = self.next_xid;
                    self.next_xid += 1;
                    api.send(
                        self.cfg.tor,
                        SimDuration::from_micros(50),
                        Event::Ctl(CtlMsg::new(api.self_id, CtrlRequest::Probe { xid })),
                    );
                    let h = api.timer(
                        self.cfg.ctrl.install_timeout,
                        Event::Timer {
                            tag: tags::PROBE_TIMEOUT,
                            a: xid,
                            b: 0,
                        },
                    );
                    self.pending_probe = Some((xid, h));
                }
                api.timer(
                    self.cfg.ctrl.probe_interval,
                    Event::Timer {
                        tag: tags::PROBE,
                        a: 0,
                        b: 0,
                    },
                );
            }
            Event::Timer {
                tag: tags::PROBE_TIMEOUT,
                a,
                ..
            } if self.pending_probe.is_some_and(|(want, _)| want == a) => {
                self.pending_probe = None;
                self.consecutive_probe_failures += 1;
                api.ctx
                    .telemetry
                    .registry
                    .inc(self.cfg.counters.chaos_probe_timeouts);
                if self.consecutive_probe_failures >= self.cfg.ctrl.hw_failure_threshold {
                    self.mark_tor_down(api, "tor probes unanswered: offloads suspended");
                }
            }
            Event::Timer {
                tag: tags::PROBE_TIMEOUT,
                ..
            } => {} // timeout for a probe that was already answered or superseded
            Event::Ctl(msg) => {
                let msg = match msg.downcast::<CtrlReply>() {
                    Ok((_, CtrlReply::TorFlowStats { xid, entries })) => {
                        if xid % 2 == 0 {
                            self.hw.sample_a(&entries, &self.spec_to_agg);
                        } else {
                            let gap = self.cfg.timing.sample_gap.as_secs_f64();
                            let map = std::mem::take(&mut self.spec_to_agg);
                            self.hw.sample_b(&entries, &map, gap);
                            self.spec_to_agg = map;
                            if self.cfg.ctrl.blackhole_epochs > 0 {
                                self.check_blackholes(api);
                            }
                            self.epoch_in_interval += 1;
                            if self.epoch_in_interval >= self.cfg.timing.epochs_per_interval {
                                self.epoch_in_interval = 0;
                                self.interval += 1;
                                // Decide shortly after the epoch closes so
                                // local reports for the interval have landed.
                                api.timer(
                                    SimDuration::from_millis(10),
                                    Event::Timer {
                                        tag: tags::DECIDE,
                                        a: 0,
                                        b: 0,
                                    },
                                );
                            }
                        }
                        return;
                    }
                    Ok((_, CtrlReply::Ack { xid })) => {
                        self.on_install_ack(api, xid, true);
                        return;
                    }
                    Ok((_, CtrlReply::Error { xid, .. })) => {
                        if self.pending_probe.is_some_and(|(want, _)| want == xid) {
                            // A definitive Error to a probe is the ToR agent
                            // itself answering "rebooting": down immediately,
                            // no timeout threshold needed.
                            let (_, h) = self.pending_probe.take().expect("checked just above");
                            api.cancel(h);
                            self.consecutive_probe_failures = 0;
                            self.mark_tor_down(api, "tor reports rebooting: offloads suspended");
                            return;
                        }
                        if self.recovery_xid == Some(xid) {
                            // Recovery dump rejected (ToR still dark); the
                            // reconcile-cadence retry will re-ask.
                            return;
                        }
                        self.on_install_ack(api, xid, false);
                        return;
                    }
                    Ok((
                        _,
                        CtrlReply::ProbeReply {
                            xid,
                            boot_generation,
                        },
                    )) => {
                        self.on_probe_reply(api, xid, boot_generation);
                        return;
                    }
                    Ok((
                        _,
                        CtrlReply::TorRuleDump {
                            xid,
                            rules,
                            fastpath_used,
                            boot_generation,
                        },
                    )) => {
                        if self.recovery_xid == Some(xid) {
                            self.on_recovery_dump(api, rules, fastpath_used, boot_generation);
                            return;
                        }
                        if boot_generation < self.tor_generation {
                            // Snapshotted before a reboot the controller
                            // already knows about: using it would resurrect
                            // wiped rules in the bookkeeping. Discard, and
                            // re-sweep if it was the awaited reconcile dump.
                            api.ctx
                                .telemetry
                                .registry
                                .inc(self.cfg.counters.chaos_stale_dumps_discarded);
                            api.ctx.telemetry.flight.record(
                                api.now.as_nanos(),
                                "tor-ctrl",
                                Severity::Warn,
                                "stale pre-reboot rule dump discarded",
                                [xid, boot_generation, self.tor_generation],
                            );
                            if self
                                .pending_reconcile
                                .as_ref()
                                .is_some_and(|(want, _)| *want == xid)
                            {
                                self.pending_reconcile = None;
                                self.start_reconcile_dump(api);
                            }
                            return;
                        }
                        if boot_generation > self.tor_generation {
                            // This dump is post-reboot truth: note the wipe,
                            // then let the sweep demote everything the
                            // hardware lost.
                            self.note_tor_reboot(api, boot_generation);
                        }
                        self.on_reconcile_dump(api, xid, rules);
                        return;
                    }
                    Ok(_) => return,
                    Err(m) => m,
                };
                let msg = match msg.downcast::<DemandReport>() {
                    Ok((_, rep)) => {
                        self.reports.insert(rep.server_ip, rep);
                        return;
                    }
                    Err(m) => m,
                };
                let msg = match msg.downcast::<HwPathReport>() {
                    Ok((_, rep)) => {
                        self.on_hw_path_report(api, rep);
                        return;
                    }
                    Err(m) => m,
                };
                if let Ok((_, m)) = msg.downcast::<MigrationPrepare>() {
                    self.on_migration_prepare(api, m);
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "tor-ctrl"
    }
}
