//! The **TOR controller** (paper §4.3, §5.2: "a custom Floodlight controller
//! that issues OpenFlow table and flow stats requests").
//!
//! Each control interval it merges the local controllers' demand reports
//! with its own measurements of already-offloaded flows (from the ToR's
//! per-rule counters), runs the decision engine, and:
//!
//! 1. installs the synthesized rule bundles for new offloads at the ToR and
//!    waits for the Ack **before** telling local controllers to flip flow
//!    placers (no blackholing);
//! 2. broadcasts demotions immediately (placers flip back to the VIF) and
//!    garbage-collects the ToR rules after a grace period so in-flight
//!    hardware packets still match;
//! 3. tracks fast-path memory so it "offloads only as many flows as can be
//!    accommodated".

use std::collections::{HashMap, HashSet};

use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::ctrl::{CtrlReply, CtrlRequest, TorRule, TorStatEntry};
use fastrak_net::event::{CtlMsg, Event, NetCtx};
use fastrak_net::flow::{FlowAggregate, FlowSpec};
use fastrak_sim::kernel::{Api, EventHandle, Node, NodeId};
use fastrak_sim::time::{SimDuration, SimTime};
use fastrak_telemetry::recorder::{DecisionKind, Severity};
use fastrak_telemetry::span::SpanId;
use fastrak_telemetry::{CounterId, Registry};

use crate::de::{DeConfig, DecisionEngine};
#[cfg(feature = "full-scan-de")]
use crate::de_inc::DeEpochStats;
#[cfg(not(feature = "full-scan-de"))]
use crate::de_inc::IncrementalDecisionEngine;
use crate::me::AggDemand;
use crate::meter::{self, RateWindow};
use crate::protocol::{DemandReport, MigrationPrepare, OffloadDecision};
use crate::rules::RuleManager;

mod tags {
    /// Start of a ToR measurement epoch (sample A).
    pub const EPOCH: u64 = 1;
    /// Sample B, `t` later.
    pub const SAMPLE_B: u64 = 2;
    /// Run the decision round for a control interval.
    pub const DECIDE: u64 = 3;
    /// Garbage-collect demoted ToR rules (a = gc token).
    pub const GC: u64 = 4;
    /// Install transaction timeout (a = xid, b = attempt).
    pub const INSTALL_TIMEOUT: u64 = 5;
    /// Periodic reconciliation sweep against actual ToR rule state.
    pub const RECONCILE: u64 = 6;
}

/// Control-plane hardening knobs: install-transaction retry/backoff and the
/// periodic state reconciliation sweep. The defaults assume the testbed's
/// sub-millisecond control RTT (ToR agent latency 200 µs + 100 µs send
/// delay each way); real deployments would scale them with their RTT.
#[derive(Debug, Clone)]
pub struct CtrlPlaneConfig {
    /// Ack deadline for the first install attempt; doubles per retry
    /// (bounded exponential backoff) up to [`CtrlPlaneConfig::backoff_cap`].
    pub install_timeout: SimDuration,
    /// Retransmissions after the initial attempt before the transaction is
    /// abandoned (rolled back; reconciliation cleans hardware).
    pub max_install_retries: u32,
    /// Upper bound on the per-attempt timeout.
    pub backoff_cap: SimDuration,
    /// Period of the reconciliation sweep ([`SimDuration::ZERO`] disables).
    pub reconcile_interval: SimDuration,
    /// Consecutive install failures (Error replies or abandoned
    /// transactions) that trigger hardware suspension.
    pub hw_failure_threshold: u32,
    /// How long offloads stay suspended (traffic remains on the software
    /// path) after the failure threshold trips.
    pub hw_cooldown: SimDuration,
}

impl Default for CtrlPlaneConfig {
    fn default() -> Self {
        CtrlPlaneConfig {
            install_timeout: SimDuration::from_millis(10),
            max_install_retries: 5,
            backoff_cap: SimDuration::from_millis(160),
            reconcile_interval: SimDuration::from_secs(1),
            hw_failure_threshold: 3,
            hw_cooldown: SimDuration::from_secs(2),
        }
    }
}

/// Dense registry ids for the controller's fault/recovery counters,
/// registered once at deployment ([`crate::attach`]) so every increment on
/// the control path is a plain array write. The registry is the single
/// source of truth — the controller keeps no shadow fields.
#[derive(Debug, Clone, Copy)]
pub struct CtrlCounterIds {
    /// Installs rejected by the ToR (Error replies).
    pub install_failures: CounterId,
    /// Install batches retransmitted after an Ack timeout.
    pub install_retries: CounterId,
    /// Install timeout timers that fired on a still-pending transaction.
    pub install_timeouts: CounterId,
    /// Transactions abandoned after exhausting retries.
    pub installs_abandoned: CounterId,
    /// Reconciliation sweeps performed.
    pub reconcile_sweeps: CounterId,
    /// Untracked hardware rules removed by reconciliation.
    pub reconcile_stale_removed: CounterId,
    /// Offloaded aggregates demoted because the hardware lost their rule.
    pub reconcile_lost_demoted: CounterId,
    /// `entries_used` drift repairs performed by reconciliation.
    pub reconcile_counter_repairs: CounterId,
    /// Times the failure threshold tripped hardware suspension.
    pub hw_suspensions: CounterId,
    /// Decision-engine epochs executed.
    pub de_epochs: CounterId,
    /// Cumulative wall-clock nanoseconds spent inside decision epochs (the
    /// plane's one wall-clock metric: it never influences the simulation,
    /// but its exported value naturally varies run to run).
    pub de_epoch_ns: CounterId,
    /// Score-index mutations ingested by the incremental engine.
    pub de_deltas_ingested: CounterId,
    /// Aggregates that crossed the offload boundary (offloads + demotes).
    pub de_band_crossers: CounterId,
    /// Offloads suppressed by the hysteresis band (churn avoided).
    pub de_churn_suppressed: CounterId,
}

impl CtrlCounterIds {
    /// Register the `ctrl.*` counters (idempotent: the registry dedups
    /// by rendered name, so re-registration returns the same ids).
    pub fn register(reg: &mut Registry) -> CtrlCounterIds {
        CtrlCounterIds {
            install_failures: reg.counter("ctrl.install_failures", &[]),
            install_retries: reg.counter("ctrl.install_retries", &[]),
            install_timeouts: reg.counter("ctrl.install_timeouts", &[]),
            installs_abandoned: reg.counter("ctrl.installs_abandoned", &[]),
            reconcile_sweeps: reg.counter("ctrl.reconcile_sweeps", &[]),
            reconcile_stale_removed: reg.counter("ctrl.reconcile_stale_removed", &[]),
            reconcile_lost_demoted: reg.counter("ctrl.reconcile_lost_demoted", &[]),
            reconcile_counter_repairs: reg.counter("ctrl.reconcile_counter_repairs", &[]),
            hw_suspensions: reg.counter("ctrl.hw_suspensions", &[]),
            de_epochs: reg.counter("ctrl.de.epochs", &[]),
            de_epoch_ns: reg.counter("ctrl.de.epoch_ns", &[]),
            de_deltas_ingested: reg.counter("ctrl.de.deltas_ingested", &[]),
            de_band_crossers: reg.counter("ctrl.de.band_crossers", &[]),
            de_churn_suppressed: reg.counter("ctrl.de.churn_suppressed", &[]),
        }
    }
}

/// TOR controller configuration.
pub struct TorControllerConfig {
    /// The ToR switch node.
    pub tor: NodeId,
    /// Local controllers under this ToR.
    pub locals: Vec<NodeId>,
    /// Measurement timing (shared with the locals).
    pub timing: crate::local::Timing,
    /// Decision engine configuration.
    pub de: DeConfig,
    /// Fast-path entries the controller may use (≤ the ToR's capacity;
    /// an aggregate costs one ACL rule, plus one tunnel mapping per remote
    /// destination endpoint).
    pub budget: usize,
    /// Grace period before demoted ToR rules are removed.
    pub demote_grace: SimDuration,
    /// Tenant policies for rule synthesis.
    pub rule_manager: RuleManager,
    /// Failure-handling knobs (retry/backoff, reconciliation, cooldown).
    pub ctrl: CtrlPlaneConfig,
    /// Registry ids for the controller's counters (see
    /// [`CtrlCounterIds::register`]).
    pub counters: CtrlCounterIds,
}

/// Epoch-pair meter over the ToR's per-rule cumulative counters. The
/// Δcounter and history/median logic is [`crate::meter`]'s — shared with
/// the per-server measurement engine so the two planes cannot drift, and so
/// a rule removed + reinstalled (GC/reconciliation churn restarts its
/// counters) re-baselines instead of reading as a zero-rate epoch.
#[derive(Default)]
struct HwMeter {
    sample_a: HashMap<FlowAggregate, (u64, u64)>,
    /// Per-aggregate rate history.
    hist: HashMap<FlowAggregate, RateWindow>,
    cap: usize,
}

impl HwMeter {
    fn fold(
        entries: &[TorStatEntry],
        spec_to_agg: &HashMap<(TenantId, FlowSpec), FlowAggregate>,
    ) -> HashMap<FlowAggregate, (u64, u64)> {
        let mut m = HashMap::new();
        for e in entries {
            if let Some(agg) = spec_to_agg.get(&(e.tenant, e.spec)) {
                let v = m.entry(*agg).or_insert((0, 0));
                let (p, b): &mut (u64, u64) = v;
                *p += e.packets;
                *b += e.bytes;
            }
        }
        m
    }

    fn sample_a(
        &mut self,
        entries: &[TorStatEntry],
        map: &HashMap<(TenantId, FlowSpec), FlowAggregate>,
    ) {
        self.sample_a = Self::fold(entries, map);
    }

    fn sample_b(
        &mut self,
        entries: &[TorStatEntry],
        map: &HashMap<(TenantId, FlowSpec), FlowAggregate>,
        gap_secs: f64,
    ) {
        let folded = Self::fold(entries, map);
        for (agg, cur) in folded {
            // Unmeasurable epochs (no baseline, or counters restarted after
            // a rule reinstall) push nothing; see [`meter::epoch_rates`].
            let baseline = self.sample_a.get(&agg).copied();
            if let Some((pps, bps)) = meter::epoch_rates(baseline, cur, gap_secs) {
                self.hist.entry(agg).or_default().push(pps, bps, self.cap);
            }
        }
    }

    fn demand(&self, agg: &FlowAggregate) -> Option<AggDemand> {
        let s = self.hist.get(agg)?.summary()?;
        Some(AggDemand {
            agg: *agg,
            pps: s.pps,
            bps: s.bps,
            n_active: s.n_active,
            m_pps: s.m_pps,
            m_bps: s.m_bps,
        })
    }

    fn forget(&mut self, agg: &FlowAggregate) {
        self.hist.remove(agg);
        self.sample_a.remove(agg);
    }
}

/// An install transaction awaiting the ToR's Ack. Keeps everything needed
/// to retransmit: the batch is resent verbatim under the same xid, and the
/// ToR's idempotent install semantics make re-delivery harmless.
struct InstallTxn {
    /// Aggregates the batch offloads.
    aggs: Vec<FlowAggregate>,
    /// The synthesized rule bundle (kept for retransmission).
    rules: Vec<TorRule>,
    /// Decision broadcast deferred until the Ack lands.
    broadcast: OffloadDecision,
    /// 0 for the initial send; incremented per retransmission.
    attempt: u32,
    /// Handle of the armed timeout timer (cancelled when a reply lands).
    timeout: EventHandle,
    /// Open `offload-xact` telemetry span (None when tracing is disabled);
    /// closed when the transaction resolves (Ack, Error, or abandonment).
    span: Option<SpanId>,
}

/// The TOR controller node.
pub struct TorController {
    cfg: TorControllerConfig,
    de: DecisionEngine,
    /// The production decision engine: incremental top-k. The retained
    /// full-scan `de` doubles as the differential oracle; building with
    /// `--features full-scan-de` routes epochs through it instead.
    #[cfg(not(feature = "full-scan-de"))]
    inc: IncrementalDecisionEngine,
    /// Latest report per local controller.
    reports: HashMap<Ip, DemandReport>,
    /// Currently offloaded aggregates.
    offloaded: HashSet<FlowAggregate>,
    /// Installed ToR state per aggregate: the ACL spec (tunnel mappings are
    /// shared, refcounted separately).
    installed_spec: HashMap<FlowAggregate, (TenantId, FlowSpec)>,
    spec_to_agg: HashMap<(TenantId, FlowSpec), FlowAggregate>,
    hw: HwMeter,
    next_xid: u64,
    /// Offloads awaiting ToR Ack, keyed by xid.
    pending_install: HashMap<u64, InstallTxn>,
    /// Demoted rule sets awaiting GC.
    gc_queue: HashMap<u64, Vec<(TenantId, FlowSpec)>>,
    next_gc: u64,
    epoch_in_interval: u32,
    interval: u64,
    /// Outstanding reconciliation dump: (xid, offloaded set snapshotted at
    /// request time). The snapshot keeps installs acked while the dump was
    /// in flight from being misclassified as lost.
    pending_reconcile: Option<(u64, HashSet<FlowAggregate>)>,
    reconcile_armed: bool,
    /// Install failures in a row; resets on any successful Ack.
    consecutive_install_failures: u32,
    /// While set and in the future, no new offloads are attempted (traffic
    /// stays on the software path).
    hw_suspended_until: Option<SimTime>,
    /// Fast-path entries currently used by this controller.
    pub entries_used: usize,
    /// Decision rounds executed.
    pub rounds: u64,
    /// Tenants ever seen in the offloaded set — remembered so
    /// [`TorController::publish_telemetry`] can zero a tenant's occupancy
    /// gauges after its last entry is demoted (a stale last-nonzero gauge
    /// would misreport the fairness picture). BTreeSet: registration order
    /// must be deterministic.
    telemetry_tenants: std::collections::BTreeSet<TenantId>,
}

impl TorController {
    /// Build; post [`TorController::boot_event`] to start.
    pub fn new(cfg: TorControllerConfig) -> TorController {
        let hist_cap = (cfg.timing.epochs_per_interval * cfg.timing.history_intervals) as usize;
        TorController {
            de: DecisionEngine::new(cfg.de.clone()),
            #[cfg(not(feature = "full-scan-de"))]
            inc: IncrementalDecisionEngine::new(cfg.de.clone()),
            reports: HashMap::new(),
            offloaded: HashSet::new(),
            installed_spec: HashMap::new(),
            spec_to_agg: HashMap::new(),
            hw: HwMeter {
                cap: hist_cap,
                ..HwMeter::default()
            },
            next_xid: 1,
            pending_install: HashMap::new(),
            gc_queue: HashMap::new(),
            next_gc: 0,
            epoch_in_interval: 0,
            interval: 0,
            pending_reconcile: None,
            reconcile_armed: false,
            consecutive_install_failures: 0,
            hw_suspended_until: None,
            entries_used: 0,
            rounds: 0,
            telemetry_tenants: std::collections::BTreeSet::new(),
            cfg,
        }
    }

    /// Publish per-tenant fast-path occupancy into the registry
    /// (pull-model, like `Testbed::publish_telemetry` — call at collection
    /// points, never from the hot path): `ctrl.tenant.offloaded_entries`
    /// and `ctrl.tenant.occupancy_share` gauges, labelled by tenant.
    pub fn publish_telemetry(&mut self, reg: &mut Registry) {
        let mut per: std::collections::BTreeMap<TenantId, u64> = std::collections::BTreeMap::new();
        for a in &self.offloaded {
            *per.entry(a.tenant()).or_default() += 1;
        }
        self.telemetry_tenants.extend(per.keys().copied());
        let budget = self.cfg.budget.max(1) as f64;
        for &t in &self.telemetry_tenants {
            let n = per.get(&t).copied().unwrap_or(0);
            let label = t.0.to_string();
            let g = reg.gauge("ctrl.tenant.offloaded_entries", &[("tenant", &label)]);
            reg.gauge_set(g, n as f64);
            let g = reg.gauge("ctrl.tenant.occupancy_share", &[("tenant", &label)]);
            reg.gauge_set(g, n as f64 / budget);
        }
    }

    /// Wire the local controllers (deployment patches this after creating
    /// them, since the TOR controller is created first).
    pub fn set_locals(&mut self, locals: Vec<NodeId>) {
        self.cfg.locals = locals;
    }

    /// The timer event that starts the measurement/decision loop.
    pub fn boot_event() -> Event {
        Event::Timer {
            tag: tags::EPOCH,
            a: 0,
            b: 0,
        }
    }

    /// Currently offloaded aggregates (inspection).
    pub fn offloaded(&self) -> &HashSet<FlowAggregate> {
        &self.offloaded
    }

    /// Bump a per-tenant transition counter (`ctrl.tenant.offloads` /
    /// `ctrl.tenant.demotes`). Lazily registered — the registry dedups by
    /// (name, labels) — and only ever called on an actual offloaded-set
    /// transition, so rates derived from these counters are exact.
    fn count_tenant_transition(reg: &mut Registry, name: &str, t: TenantId) {
        let label = t.0.to_string();
        let id = reg.counter(name, &[("tenant", &label)]);
        reg.inc(id);
    }

    fn request_tor_dump(&mut self, api: &mut Api<'_, Event, NetCtx>, phase_b: bool) {
        let xid = self.next_xid;
        self.next_xid += 1;
        // Phase encoded in the low bit of the xid parity map: track via
        // pending_install? Simpler: even = A, odd = B.
        let xid = xid * 2 + if phase_b { 1 } else { 0 };
        api.send(
            self.cfg.tor,
            SimDuration::from_micros(50),
            Event::Ctl(CtlMsg::new(api.self_id, CtrlRequest::DumpFlowStats { xid })),
        );
    }

    fn merged_demands(&self) -> Vec<AggDemand> {
        // Merge software reports (sum across servers: src- and dst-side
        // aggregates are observed at both endpoints' vswitches, so take the
        // max per reporter pair instead of double counting).
        let mut merged: std::collections::BTreeMap<FlowAggregate, AggDemand> =
            std::collections::BTreeMap::new();
        for rep in self.reports.values() {
            for d in &rep.entries {
                merged
                    .entry(d.agg)
                    .and_modify(|m| {
                        m.pps = m.pps.max(d.pps);
                        m.bps = m.bps.max(d.bps);
                        m.n_active = m.n_active.max(d.n_active);
                        m.m_pps = m.m_pps.max(d.m_pps);
                        m.m_bps = m.m_bps.max(d.m_bps);
                    })
                    .or_insert(*d);
            }
        }
        // Fold in hardware-path measurements for offloaded aggregates.
        for agg in &self.offloaded {
            if let Some(hd) = self.hw.demand(agg) {
                merged
                    .entry(*agg)
                    .and_modify(|m| {
                        m.pps += hd.pps;
                        m.bps += hd.bps;
                        m.n_active = m.n_active.max(hd.n_active);
                        m.m_pps = m.m_pps.max(hd.m_pps);
                        m.m_bps = m.m_bps.max(hd.m_bps);
                    })
                    .or_insert(hd);
            }
        }
        merged.into_values().collect()
    }

    fn decide(&mut self, api: &mut Api<'_, Event, NetCtx>) {
        self.rounds += 1;
        let demands = self.merged_demands();

        // Run the epoch under a wall clock. The duration feeds only the
        // `ctrl.de.epoch_ns` counter — it never influences simulated time or
        // any decision, so determinism is preserved (the fingerprint used by
        // the determinism suite excludes the registry).
        let t0 = std::time::Instant::now();
        #[cfg(not(feature = "full-scan-de"))]
        let (decision, de_stats) = {
            let d = self
                .inc
                .decide_snapshot(&demands, &self.offloaded, self.cfg.budget);
            (d, self.inc.last_stats())
        };
        #[cfg(feature = "full-scan-de")]
        let (decision, de_stats) = {
            let d = self.de.decide(&demands, &self.offloaded, self.cfg.budget);
            // The oracle has no delta pipeline; synthesize the equivalents so
            // the metric names stay meaningful under either engine.
            let s = DeEpochStats {
                deltas_ingested: demands.len() as u64,
                entries_indexed: demands.len() as u64,
                scanned: demands.len() as u64,
                band_crossers: (d.offload.len() + d.demote.len()) as u64,
                churn_suppressed: 0,
            };
            (d, s)
        };
        let epoch_ns = t0.elapsed().as_nanos() as u64;

        {
            let reg = &mut api.ctx.telemetry.registry;
            let c = &self.cfg.counters;
            reg.inc(c.de_epochs);
            reg.add(c.de_epoch_ns, epoch_ns);
            reg.add(c.de_deltas_ingested, de_stats.deltas_ingested);
            reg.add(c.de_band_crossers, de_stats.band_crossers);
            reg.add(c.de_churn_suppressed, de_stats.churn_suppressed);
        }
        if api.ctx.telemetry.spans.enabled() {
            let spans = &mut api.ctx.telemetry.spans;
            let comp = spans.comp("tor-ctrl");
            // Zero-duration marker span: one per decision epoch, keyed by the
            // round number so epochs are distinguishable in a trace.
            if let Some(s) = spans.begin(api.now.as_nanos(), comp, "de-epoch", self.rounds) {
                spans.end(api.now.as_nanos(), s);
            }
        }

        // Hardware rates for the FPS splits (bits/sec). Sorted for
        // determinism (HashSet iteration order is randomized).
        let mut offl: Vec<FlowAggregate> = self.offloaded.iter().copied().collect();
        offl.sort();
        let hw_agg_bps: Vec<(FlowAggregate, f64)> = offl
            .iter()
            .filter_map(|a| self.hw.demand(a).map(|d| (*a, d.bps * 8.0)))
            .collect();

        // Demotions: broadcast now, GC the ToR rules after the grace.
        if !decision.demote.is_empty() {
            let mut specs = Vec::new();
            for agg in &decision.demote {
                if let Some(s) = self.installed_spec.remove(agg) {
                    self.spec_to_agg.remove(&s);
                    specs.push(s);
                }
                if self.offloaded.remove(agg) {
                    Self::count_tenant_transition(
                        &mut api.ctx.telemetry.registry,
                        "ctrl.tenant.demotes",
                        agg.tenant(),
                    );
                }
                self.hw.forget(agg);
            }
            if !specs.is_empty() {
                // Exact accounting: `specs` counts entries actually removed
                // from `installed_spec`, each of which incremented
                // `entries_used` exactly once.
                self.entries_used -= specs.len();
                let token = self.next_gc;
                self.next_gc += 1;
                self.gc_queue.insert(token, specs);
                api.timer(
                    self.cfg.demote_grace,
                    Event::Timer {
                        tag: tags::GC,
                        a: token,
                        b: 0,
                    },
                );
            }
        }

        // While the hardware is suspended (too many consecutive install
        // failures), attempt no offloads: traffic stays on the software
        // path until the cooldown expires.
        let hw_ok = match self.hw_suspended_until {
            Some(t) if api.now < t => false,
            Some(_) => {
                self.hw_suspended_until = None;
                true
            }
            None => true,
        };

        // Offloads: synthesize rules, install at the ToR, broadcast on Ack.
        let mut rules = Vec::new();
        let mut offloadable = Vec::new();
        if hw_ok {
            for agg in &decision.offload {
                if self.entries_used + rules.len() >= self.cfg.budget {
                    break;
                }
                match self.cfg.rule_manager.synthesize(agg, 10) {
                    Ok(rule) => {
                        rules.push(rule);
                        offloadable.push(*agg);
                    }
                    Err(_) => { /* deny-overlap: skip this aggregate */ }
                }
            }
        }
        // Audit every offload/demote with the score that ranked it, the
        // current software/hardware rate split, and fast-path occupancy.
        if api.ctx.telemetry.audit.enabled() {
            let by_agg: HashMap<FlowAggregate, &AggDemand> =
                demands.iter().map(|d| (d.agg, d)).collect();
            let hw_bps: HashMap<FlowAggregate, f64> = hw_agg_bps.iter().copied().collect();
            let now_ns = api.now.as_nanos();
            let (de, entries_used, budget) = (&self.de, self.entries_used, self.cfg.budget);
            let audit = &mut api.ctx.telemetry.audit;
            let decided = decision
                .demote
                .iter()
                .map(|a| (DecisionKind::Demote, a))
                .chain(offloadable.iter().map(|a| (DecisionKind::Offload, a)));
            for (kind, agg) in decided {
                let (score, total_bits) = by_agg
                    .get(agg)
                    .map(|d| (de.score(d), d.bps * 8.0))
                    .unwrap_or((0.0, 0.0));
                let hw_bits = hw_bps.get(agg).copied().unwrap_or(0.0);
                let sw_bits = (total_bits - hw_bits).max(0.0);
                audit.decision(
                    now_ns,
                    kind,
                    &format!("{agg:?}"),
                    score,
                    (sw_bits as u64, hw_bits as u64),
                    entries_used as u64,
                    budget as u64,
                );
            }
        }

        let broadcast = OffloadDecision {
            interval: self.interval,
            offload: offloadable.clone(),
            demote: decision.demote.clone(),
            hw_agg_bps,
        };
        if rules.is_empty() {
            // Nothing to install; broadcast demotions/rates immediately.
            self.broadcast(api, broadcast);
        } else {
            let xid = self.next_xid;
            self.next_xid += 1;
            for (agg, rule) in offloadable.iter().zip(&rules) {
                self.installed_spec.insert(*agg, (rule.tenant, rule.spec));
                self.spec_to_agg.insert((rule.tenant, rule.spec), *agg);
                // Re-offloading a spec whose demoted rule still awaits GC:
                // drop the GC token's claim so the grace-period sweep can't
                // delete a rule the hardware is about to need again (the
                // install itself is an idempotent no-op at the ToR).
                self.unqueue_gc(rule.tenant, &rule.spec);
            }
            self.entries_used += rules.len();
            // Trace the install transaction: opens here, closes on the Ack
            // (or Error/abandonment) so the span length is the offload
            // hand-shake latency.
            let span = if api.ctx.telemetry.spans.enabled() {
                let spans = &mut api.ctx.telemetry.spans;
                let comp = spans.comp("tor-ctrl");
                spans.begin(api.now.as_nanos(), comp, "offload-xact", xid)
            } else {
                None
            };
            self.pending_install.insert(
                xid,
                InstallTxn {
                    aggs: offloadable,
                    rules,
                    broadcast,
                    attempt: 0,
                    timeout: EventHandle::NULL,
                    span,
                },
            );
            self.send_install(api, xid);
        }
    }

    /// (Re)transmit a pending install batch and arm its Ack timeout with
    /// bounded exponential backoff (`install_timeout * 2^attempt`, capped).
    fn send_install(&mut self, api: &mut Api<'_, Event, NetCtx>, xid: u64) {
        let (rules, attempt) = match self.pending_install.get(&xid) {
            Some(t) => (t.rules.clone(), t.attempt),
            None => return,
        };
        api.send(
            self.cfg.tor,
            SimDuration::from_micros(100),
            Event::Ctl(CtlMsg::new(
                api.self_id,
                CtrlRequest::InstallTorRules { rules, xid },
            )),
        );
        let backoff = self
            .cfg
            .ctrl
            .install_timeout
            .0
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cfg.ctrl.backoff_cap.0);
        let h = api.timer(
            SimDuration(backoff),
            Event::Timer {
                tag: tags::INSTALL_TIMEOUT,
                a: xid,
                b: attempt as u64,
            },
        );
        if let Some(txn) = self.pending_install.get_mut(&xid) {
            txn.timeout = h;
        }
    }

    /// Ack-timeout handling: retransmit with backoff, or — once the retry
    /// budget is spent — abandon the transaction: roll the bookkeeping
    /// back, broadcast only the demotions (placers never flipped, so no
    /// traffic is blackholed), and count a hardware failure. Any rules a
    /// late-arriving attempt installs anyway become untracked hardware
    /// state that the reconciliation sweep removes.
    fn on_install_timeout(&mut self, api: &mut Api<'_, Event, NetCtx>, xid: u64, attempt: u64) {
        let current = match self.pending_install.get(&xid) {
            Some(t) => t.attempt,
            None => return,
        };
        if current as u64 != attempt {
            return; // stale timer from a superseded attempt
        }
        api.ctx
            .telemetry
            .registry
            .inc(self.cfg.counters.install_timeouts);
        if current >= self.cfg.ctrl.max_install_retries {
            let txn = self
                .pending_install
                .remove(&xid)
                .expect("checked just above");
            api.ctx
                .telemetry
                .registry
                .inc(self.cfg.counters.installs_abandoned);
            api.ctx.telemetry.flight.record(
                api.now.as_nanos(),
                "tor-ctrl",
                Severity::Error,
                "install transaction abandoned after retry budget",
                [xid, current as u64, txn.aggs.len() as u64],
            );
            if let Some(s) = txn.span {
                api.ctx.telemetry.spans.end(api.now.as_nanos(), s);
            }
            self.rollback_install(&txn.aggs);
            self.record_hw_failure(api);
            let mut b = txn.broadcast;
            b.offload.clear();
            self.broadcast(api, b);
        } else {
            if let Some(txn) = self.pending_install.get_mut(&xid) {
                txn.attempt += 1;
            }
            api.ctx
                .telemetry
                .registry
                .inc(self.cfg.counters.install_retries);
            self.send_install(api, xid);
        }
    }

    fn broadcast(&self, api: &mut Api<'_, Event, NetCtx>, d: OffloadDecision) {
        for &local in &self.cfg.locals {
            api.send(
                local,
                SimDuration::from_micros(100),
                Event::Ctl(CtlMsg::new(api.self_id, d.clone())),
            );
        }
    }

    fn on_install_ack(&mut self, api: &mut Api<'_, Event, NetCtx>, xid: u64, ok: bool) {
        let Some(txn) = self.pending_install.remove(&xid) else {
            return; // duplicate reply, or reply after abandonment
        };
        api.cancel(txn.timeout);
        if let Some(s) = txn.span {
            api.ctx.telemetry.spans.end(api.now.as_nanos(), s);
        }
        if ok {
            self.consecutive_install_failures = 0;
            for a in &txn.aggs {
                if self.offloaded.insert(*a) {
                    // Offloads commit here (on Ack): failed installs never
                    // count as transitions.
                    Self::count_tenant_transition(
                        &mut api.ctx.telemetry.registry,
                        "ctrl.tenant.offloads",
                        a.tenant(),
                    );
                }
            }
            self.broadcast(api, txn.broadcast);
        } else {
            // Definitive rejection (capacity exhausted / injected failure):
            // the ToR's atomic batch left no partial state, so roll back the
            // bookkeeping exactly and broadcast only the demotions.
            api.ctx
                .telemetry
                .registry
                .inc(self.cfg.counters.install_failures);
            self.rollback_install(&txn.aggs);
            self.record_hw_failure(api);
            let mut b = txn.broadcast;
            b.offload.clear();
            self.broadcast(api, b);
        }
    }

    /// Undo `decide()`'s eager bookkeeping for aggregates whose install
    /// never took effect. Exact accounting: `entries_used` is decremented
    /// only for entries actually still recorded (never a blanket
    /// `saturating_sub`, which masked double-frees against a concurrent
    /// demote-GC), and the reverse map entry is removed only while it still
    /// points at the same aggregate.
    fn rollback_install(&mut self, aggs: &[FlowAggregate]) {
        for a in aggs {
            if let Some(s) = self.installed_spec.remove(a) {
                debug_assert!(self.entries_used > 0, "entries_used underflow");
                self.entries_used -= 1;
                if self.spec_to_agg.get(&s) == Some(a) {
                    self.spec_to_agg.remove(&s);
                }
            }
        }
    }

    /// Count one hardware install failure; past the threshold, suspend
    /// offloads for the cooldown (graceful degradation to the software
    /// path — demand keeps being served via the vswitch).
    fn record_hw_failure(&mut self, api: &mut Api<'_, Event, NetCtx>) {
        self.consecutive_install_failures += 1;
        if self.consecutive_install_failures >= self.cfg.ctrl.hw_failure_threshold {
            self.consecutive_install_failures = 0;
            self.hw_suspended_until = Some(api.now + self.cfg.ctrl.hw_cooldown);
            api.ctx
                .telemetry
                .registry
                .inc(self.cfg.counters.hw_suspensions);
            api.ctx.telemetry.flight.record(
                api.now.as_nanos(),
                "tor-ctrl",
                Severity::Warn,
                "hardware path suspended (install-failure cooldown)",
                [
                    self.cfg.ctrl.hw_failure_threshold as u64,
                    self.cfg.ctrl.hw_cooldown.0,
                    0,
                ],
            );
        }
    }

    /// Remove `(tenant, spec)` from every pending demote-GC batch (called
    /// when the spec is re-offloaded during its grace period).
    fn unqueue_gc(&mut self, tenant: TenantId, spec: &FlowSpec) {
        for specs in self.gc_queue.values_mut() {
            specs.retain(|s| !(s.0 == tenant && s.1 == *spec));
        }
    }

    /// True when a demote-GC batch still claims this rule (it is within its
    /// grace period and must not be treated as untracked).
    fn gc_pending(&self, s: &(TenantId, FlowSpec)) -> bool {
        self.gc_queue.values().any(|v| v.contains(s))
    }

    /// Reconciliation: compare the ToR's actual rule inventory against the
    /// controller's bookkeeping and repair both sides. Three repairs:
    ///
    /// 1. hardware rules nobody tracks (left by abandoned transactions or
    ///    late retransmits) are removed immediately;
    /// 2. offloaded aggregates whose rule vanished from hardware are
    ///    demoted (placers flip back to the software path — better than
    ///    silently dropping at the ToR's default-deny VRF);
    /// 3. `entries_used` is re-derived from `installed_spec` if drifted.
    ///
    /// Only aggregates already offloaded when the dump was *requested* are
    /// eligible for (2): anything acked while the dump was in flight is
    /// legitimately absent from the reply.
    fn on_reconcile_dump(
        &mut self,
        api: &mut Api<'_, Event, NetCtx>,
        xid: u64,
        rules: Vec<(TenantId, FlowSpec)>,
    ) {
        let Some((want, snapshot)) = self.pending_reconcile.take() else {
            return; // duplicate reply
        };
        if xid != want {
            // A delayed reply to a superseded sweep; keep waiting.
            self.pending_reconcile = Some((want, snapshot));
            return;
        }

        let stale: Vec<(TenantId, FlowSpec)> = rules
            .iter()
            .filter(|rs| !self.spec_to_agg.contains_key(rs) && !self.gc_pending(rs))
            .copied()
            .collect();
        if !stale.is_empty() {
            api.ctx.telemetry.registry.add(
                self.cfg.counters.reconcile_stale_removed,
                stale.len() as u64,
            );
            api.send(
                self.cfg.tor,
                SimDuration::from_micros(100),
                Event::Ctl(CtlMsg::new(
                    api.self_id,
                    CtrlRequest::RemoveTorRules { rules: stale },
                )),
            );
        }

        let have: HashSet<(TenantId, FlowSpec)> = rules.into_iter().collect();
        let mut lost: Vec<FlowAggregate> = snapshot
            .into_iter()
            .filter(|a| self.offloaded.contains(a))
            .filter(|a| {
                self.installed_spec
                    .get(a)
                    .is_some_and(|s| !have.contains(s))
            })
            .collect();
        lost.sort();
        if !lost.is_empty() {
            api.ctx
                .telemetry
                .registry
                .add(self.cfg.counters.reconcile_lost_demoted, lost.len() as u64);
            for a in &lost {
                if self.offloaded.remove(a) {
                    Self::count_tenant_transition(
                        &mut api.ctx.telemetry.registry,
                        "ctrl.tenant.demotes",
                        a.tenant(),
                    );
                }
                self.hw.forget(a);
            }
            self.rollback_install(&lost);
            self.broadcast(
                api,
                OffloadDecision {
                    interval: self.interval,
                    offload: Vec::new(),
                    demote: lost,
                    hw_agg_bps: Vec::new(),
                },
            );
        }

        let expect = self.installed_spec.len();
        if self.entries_used != expect {
            api.ctx
                .telemetry
                .registry
                .inc(self.cfg.counters.reconcile_counter_repairs);
            api.ctx.telemetry.flight.record(
                api.now.as_nanos(),
                "tor-ctrl",
                Severity::Warn,
                "entries_used drift repaired by reconciliation",
                [self.entries_used as u64, expect as u64, 0],
            );
            self.entries_used = expect;
        }
    }

    fn on_migration_prepare(&mut self, api: &mut Api<'_, Event, NetCtx>, m: MigrationPrepare) {
        // Demote every aggregate touching the migrating VM (paper §4.1.2:
        // "any offloaded flows must be returned back to the VM's hypervisor
        // before the migration can occur").
        let mut affected: Vec<FlowAggregate> = self
            .offloaded
            .iter()
            .copied()
            .filter(|a| match *a {
                FlowAggregate::SrcApp { tenant, ip, .. }
                | FlowAggregate::DstApp { tenant, ip, .. } => tenant == m.tenant && ip == m.vm_ip,
                FlowAggregate::Exact(k) => {
                    k.tenant == m.tenant && (k.src_ip == m.vm_ip || k.dst_ip == m.vm_ip)
                }
            })
            .collect();
        affected.sort();
        if affected.is_empty() {
            return;
        }
        let mut specs = Vec::new();
        for agg in &affected {
            if let Some(s) = self.installed_spec.remove(agg) {
                self.spec_to_agg.remove(&s);
                specs.push(s);
            }
            if self.offloaded.remove(agg) {
                Self::count_tenant_transition(
                    &mut api.ctx.telemetry.registry,
                    "ctrl.tenant.demotes",
                    agg.tenant(),
                );
            }
            self.hw.forget(agg);
        }
        self.entries_used -= specs.len();
        self.broadcast(
            api,
            OffloadDecision {
                interval: self.interval,
                offload: Vec::new(),
                demote: affected,
                hw_agg_bps: Vec::new(),
            },
        );
        // Remove ToR rules after the usual grace.
        let token = self.next_gc;
        self.next_gc += 1;
        self.gc_queue.insert(token, specs);
        api.timer(
            self.cfg.demote_grace,
            Event::Timer {
                tag: tags::GC,
                a: token,
                b: 0,
            },
        );
    }
}

impl Node<Event, NetCtx> for TorController {
    fn on_event(&mut self, ev: Event, api: &mut Api<'_, Event, NetCtx>) {
        match ev {
            Event::Timer {
                tag: tags::EPOCH, ..
            } => {
                if !self.reconcile_armed && self.cfg.ctrl.reconcile_interval > SimDuration::ZERO {
                    self.reconcile_armed = true;
                    api.timer(
                        self.cfg.ctrl.reconcile_interval,
                        Event::Timer {
                            tag: tags::RECONCILE,
                            a: 0,
                            b: 0,
                        },
                    );
                }
                self.request_tor_dump(api, false);
                api.timer(
                    self.cfg.timing.sample_gap,
                    Event::Timer {
                        tag: tags::SAMPLE_B,
                        a: 0,
                        b: 0,
                    },
                );
                api.timer(self.cfg.timing.epoch, TorController::boot_event());
            }
            Event::Timer {
                tag: tags::SAMPLE_B,
                ..
            } => {
                self.request_tor_dump(api, true);
            }
            Event::Timer {
                tag: tags::DECIDE, ..
            } => {
                self.decide(api);
            }
            Event::Timer {
                tag: tags::GC, a, ..
            } => {
                // A batch can drain to empty if every spec was re-offloaded
                // during the grace period (see `unqueue_gc`).
                if let Some(specs) = self.gc_queue.remove(&a) {
                    if !specs.is_empty() {
                        api.send(
                            self.cfg.tor,
                            SimDuration::from_micros(100),
                            Event::Ctl(CtlMsg::new(
                                api.self_id,
                                CtrlRequest::RemoveTorRules { rules: specs },
                            )),
                        );
                    }
                }
            }
            Event::Timer {
                tag: tags::INSTALL_TIMEOUT,
                a,
                b,
            } => {
                self.on_install_timeout(api, a, b);
            }
            Event::Timer {
                tag: tags::RECONCILE,
                ..
            } => {
                api.ctx
                    .telemetry
                    .registry
                    .inc(self.cfg.counters.reconcile_sweeps);
                let xid = self.next_xid;
                self.next_xid += 1;
                // A still-outstanding previous sweep (dump or reply lost to
                // faults) is superseded: its snapshot is replaced wholesale.
                self.pending_reconcile = Some((xid, self.offloaded.clone()));
                api.send(
                    self.cfg.tor,
                    SimDuration::from_micros(50),
                    Event::Ctl(CtlMsg::new(api.self_id, CtrlRequest::DumpTorRules { xid })),
                );
                api.timer(
                    self.cfg.ctrl.reconcile_interval,
                    Event::Timer {
                        tag: tags::RECONCILE,
                        a: 0,
                        b: 0,
                    },
                );
            }
            Event::Ctl(msg) => {
                let msg = match msg.downcast::<CtrlReply>() {
                    Ok((_, CtrlReply::TorFlowStats { xid, entries })) => {
                        if xid % 2 == 0 {
                            self.hw.sample_a(&entries, &self.spec_to_agg);
                        } else {
                            let gap = self.cfg.timing.sample_gap.as_secs_f64();
                            let map = std::mem::take(&mut self.spec_to_agg);
                            self.hw.sample_b(&entries, &map, gap);
                            self.spec_to_agg = map;
                            self.epoch_in_interval += 1;
                            if self.epoch_in_interval >= self.cfg.timing.epochs_per_interval {
                                self.epoch_in_interval = 0;
                                self.interval += 1;
                                // Decide shortly after the epoch closes so
                                // local reports for the interval have landed.
                                api.timer(
                                    SimDuration::from_millis(10),
                                    Event::Timer {
                                        tag: tags::DECIDE,
                                        a: 0,
                                        b: 0,
                                    },
                                );
                            }
                        }
                        return;
                    }
                    Ok((_, CtrlReply::Ack { xid })) => {
                        self.on_install_ack(api, xid, true);
                        return;
                    }
                    Ok((_, CtrlReply::Error { xid, .. })) => {
                        self.on_install_ack(api, xid, false);
                        return;
                    }
                    Ok((_, CtrlReply::TorRuleDump { xid, rules, .. })) => {
                        self.on_reconcile_dump(api, xid, rules);
                        return;
                    }
                    Ok(_) => return,
                    Err(m) => m,
                };
                let msg = match msg.downcast::<DemandReport>() {
                    Ok((_, rep)) => {
                        self.reports.insert(rep.server_ip, rep);
                        return;
                    }
                    Err(m) => m,
                };
                if let Ok((_, m)) = msg.downcast::<MigrationPrepare>() {
                    self.on_migration_prepare(api, m);
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "tor-ctrl"
    }
}
