//! The **TOR controller** (paper §4.3, §5.2: "a custom Floodlight controller
//! that issues OpenFlow table and flow stats requests").
//!
//! Each control interval it merges the local controllers' demand reports
//! with its own measurements of already-offloaded flows (from the ToR's
//! per-rule counters), runs the decision engine, and:
//!
//! 1. installs the synthesized rule bundles for new offloads at the ToR and
//!    waits for the Ack **before** telling local controllers to flip flow
//!    placers (no blackholing);
//! 2. broadcasts demotions immediately (placers flip back to the VIF) and
//!    garbage-collects the ToR rules after a grace period so in-flight
//!    hardware packets still match;
//! 3. tracks fast-path memory so it "offloads only as many flows as can be
//!    accommodated".

use std::collections::{HashMap, HashSet};

use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::ctrl::{CtrlReply, CtrlRequest, TorStatEntry};
use fastrak_net::event::{CtlMsg, Event, NetCtx};
use fastrak_net::flow::{FlowAggregate, FlowSpec};
use fastrak_sim::kernel::{Api, Node, NodeId};
use fastrak_sim::time::SimDuration;

use crate::de::{DeConfig, DecisionEngine};
use crate::me::AggDemand;
use crate::protocol::{DemandReport, MigrationPrepare, OffloadDecision};
use crate::rules::RuleManager;

mod tags {
    /// Start of a ToR measurement epoch (sample A).
    pub const EPOCH: u64 = 1;
    /// Sample B, `t` later.
    pub const SAMPLE_B: u64 = 2;
    /// Run the decision round for a control interval.
    pub const DECIDE: u64 = 3;
    /// Garbage-collect demoted ToR rules (a = gc token).
    pub const GC: u64 = 4;
}

/// TOR controller configuration.
pub struct TorControllerConfig {
    /// The ToR switch node.
    pub tor: NodeId,
    /// Local controllers under this ToR.
    pub locals: Vec<NodeId>,
    /// Measurement timing (shared with the locals).
    pub timing: crate::local::Timing,
    /// Decision engine configuration.
    pub de: DeConfig,
    /// Fast-path entries the controller may use (≤ the ToR's capacity;
    /// an aggregate costs one ACL rule, plus one tunnel mapping per remote
    /// destination endpoint).
    pub budget: usize,
    /// Grace period before demoted ToR rules are removed.
    pub demote_grace: SimDuration,
    /// Tenant policies for rule synthesis.
    pub rule_manager: RuleManager,
}

/// Epoch-pair meter over the ToR's per-rule cumulative counters.
#[derive(Default)]
struct HwMeter {
    sample_a: HashMap<FlowAggregate, (u64, u64)>,
    /// Per-aggregate (pps, Bps) history.
    hist: HashMap<FlowAggregate, Vec<(f64, f64)>>,
    cap: usize,
}

impl HwMeter {
    fn fold(
        entries: &[TorStatEntry],
        spec_to_agg: &HashMap<(TenantId, FlowSpec), FlowAggregate>,
    ) -> HashMap<FlowAggregate, (u64, u64)> {
        let mut m = HashMap::new();
        for e in entries {
            if let Some(agg) = spec_to_agg.get(&(e.tenant, e.spec)) {
                let v = m.entry(*agg).or_insert((0, 0));
                let (p, b): &mut (u64, u64) = v;
                *p += e.packets;
                *b += e.bytes;
            }
        }
        m
    }

    fn sample_a(
        &mut self,
        entries: &[TorStatEntry],
        map: &HashMap<(TenantId, FlowSpec), FlowAggregate>,
    ) {
        self.sample_a = Self::fold(entries, map);
    }

    fn sample_b(
        &mut self,
        entries: &[TorStatEntry],
        map: &HashMap<(TenantId, FlowSpec), FlowAggregate>,
        gap_secs: f64,
    ) {
        let folded = Self::fold(entries, map);
        for (agg, (p2, b2)) in folded {
            let (p1, b1) = self.sample_a.get(&agg).copied().unwrap_or((p2, b2));
            let h = self.hist.entry(agg).or_default();
            h.push((
                p2.saturating_sub(p1) as f64 / gap_secs,
                b2.saturating_sub(b1) as f64 / gap_secs,
            ));
            let cap = self.cap.max(1);
            if h.len() > cap {
                h.remove(0);
            }
        }
    }

    fn demand(&self, agg: &FlowAggregate) -> Option<AggDemand> {
        let h = self.hist.get(agg)?;
        if h.is_empty() {
            return None;
        }
        let mut pps: Vec<f64> = h.iter().map(|&(p, _)| p).collect();
        pps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let last = *h.last().unwrap();
        Some(AggDemand {
            agg: *agg,
            pps: last.0,
            bps: last.1,
            n_active: h.iter().filter(|&&(p, _)| p > 0.0).count() as u32,
            m_pps: pps[pps.len() / 2],
            m_bps: last.1,
        })
    }

    fn forget(&mut self, agg: &FlowAggregate) {
        self.hist.remove(agg);
        self.sample_a.remove(agg);
    }
}

/// The TOR controller node.
pub struct TorController {
    cfg: TorControllerConfig,
    de: DecisionEngine,
    /// Latest report per local controller.
    reports: HashMap<Ip, DemandReport>,
    /// Currently offloaded aggregates.
    offloaded: HashSet<FlowAggregate>,
    /// Installed ToR state per aggregate: the ACL spec (tunnel mappings are
    /// shared, refcounted separately).
    installed_spec: HashMap<FlowAggregate, (TenantId, FlowSpec)>,
    spec_to_agg: HashMap<(TenantId, FlowSpec), FlowAggregate>,
    hw: HwMeter,
    next_xid: u64,
    /// Offloads awaiting ToR Ack: xid → (aggregates, decision skeleton).
    pending_install: HashMap<u64, (Vec<FlowAggregate>, OffloadDecision)>,
    /// Demoted rule sets awaiting GC.
    gc_queue: HashMap<u64, Vec<(TenantId, FlowSpec)>>,
    next_gc: u64,
    epoch_in_interval: u32,
    interval: u64,
    /// Fast-path entries currently used by this controller.
    pub entries_used: usize,
    /// Decision rounds executed.
    pub rounds: u64,
    /// Installs rejected by the ToR (fast-path exhaustion races).
    pub install_failures: u64,
}

impl TorController {
    /// Build; post [`TorController::boot_event`] to start.
    pub fn new(cfg: TorControllerConfig) -> TorController {
        let hist_cap = (cfg.timing.epochs_per_interval * cfg.timing.history_intervals) as usize;
        TorController {
            de: DecisionEngine::new(cfg.de.clone()),
            reports: HashMap::new(),
            offloaded: HashSet::new(),
            installed_spec: HashMap::new(),
            spec_to_agg: HashMap::new(),
            hw: HwMeter {
                cap: hist_cap,
                ..HwMeter::default()
            },
            next_xid: 1,
            pending_install: HashMap::new(),
            gc_queue: HashMap::new(),
            next_gc: 0,
            epoch_in_interval: 0,
            interval: 0,
            entries_used: 0,
            rounds: 0,
            install_failures: 0,
            cfg,
        }
    }

    /// Wire the local controllers (deployment patches this after creating
    /// them, since the TOR controller is created first).
    pub fn set_locals(&mut self, locals: Vec<NodeId>) {
        self.cfg.locals = locals;
    }

    /// The timer event that starts the measurement/decision loop.
    pub fn boot_event() -> Event {
        Event::Timer {
            tag: tags::EPOCH,
            a: 0,
            b: 0,
        }
    }

    /// Currently offloaded aggregates (inspection).
    pub fn offloaded(&self) -> &HashSet<FlowAggregate> {
        &self.offloaded
    }

    fn request_tor_dump(&mut self, api: &mut Api<'_, Event, NetCtx>, phase_b: bool) {
        let xid = self.next_xid;
        self.next_xid += 1;
        // Phase encoded in the low bit of the xid parity map: track via
        // pending_install? Simpler: even = A, odd = B.
        let xid = xid * 2 + if phase_b { 1 } else { 0 };
        api.send(
            self.cfg.tor,
            SimDuration::from_micros(50),
            Event::Ctl(CtlMsg::new(api.self_id, CtrlRequest::DumpFlowStats { xid })),
        );
    }

    fn merged_demands(&self) -> Vec<AggDemand> {
        // Merge software reports (sum across servers: src- and dst-side
        // aggregates are observed at both endpoints' vswitches, so take the
        // max per reporter pair instead of double counting).
        let mut merged: std::collections::BTreeMap<FlowAggregate, AggDemand> =
            std::collections::BTreeMap::new();
        for rep in self.reports.values() {
            for d in &rep.entries {
                merged
                    .entry(d.agg)
                    .and_modify(|m| {
                        m.pps = m.pps.max(d.pps);
                        m.bps = m.bps.max(d.bps);
                        m.n_active = m.n_active.max(d.n_active);
                        m.m_pps = m.m_pps.max(d.m_pps);
                        m.m_bps = m.m_bps.max(d.m_bps);
                    })
                    .or_insert(*d);
            }
        }
        // Fold in hardware-path measurements for offloaded aggregates.
        for agg in &self.offloaded {
            if let Some(hd) = self.hw.demand(agg) {
                merged
                    .entry(*agg)
                    .and_modify(|m| {
                        m.pps += hd.pps;
                        m.bps += hd.bps;
                        m.n_active = m.n_active.max(hd.n_active);
                        m.m_pps = m.m_pps.max(hd.m_pps);
                        m.m_bps = m.m_bps.max(hd.m_bps);
                    })
                    .or_insert(hd);
            }
        }
        merged.into_values().collect()
    }

    fn decide(&mut self, api: &mut Api<'_, Event, NetCtx>) {
        self.rounds += 1;
        let demands = self.merged_demands();
        let decision = self.de.decide(&demands, &self.offloaded, self.cfg.budget);

        // Hardware rates for the FPS splits (bits/sec). Sorted for
        // determinism (HashSet iteration order is randomized).
        let mut offl: Vec<FlowAggregate> = self.offloaded.iter().copied().collect();
        offl.sort();
        let hw_agg_bps: Vec<(FlowAggregate, f64)> = offl
            .iter()
            .filter_map(|a| self.hw.demand(a).map(|d| (*a, d.bps * 8.0)))
            .collect();

        // Demotions: broadcast now, GC the ToR rules after the grace.
        if !decision.demote.is_empty() {
            let mut specs = Vec::new();
            for agg in &decision.demote {
                if let Some(s) = self.installed_spec.remove(agg) {
                    self.spec_to_agg.remove(&s);
                    specs.push(s);
                }
                self.offloaded.remove(agg);
                self.hw.forget(agg);
            }
            if !specs.is_empty() {
                self.entries_used = self.entries_used.saturating_sub(specs.len());
                let token = self.next_gc;
                self.next_gc += 1;
                self.gc_queue.insert(token, specs);
                api.timer(
                    self.cfg.demote_grace,
                    Event::Timer {
                        tag: tags::GC,
                        a: token,
                        b: 0,
                    },
                );
            }
        }

        // Offloads: synthesize rules, install at the ToR, broadcast on Ack.
        let mut rules = Vec::new();
        let mut offloadable = Vec::new();
        for agg in &decision.offload {
            if self.entries_used + rules.len() >= self.cfg.budget {
                break;
            }
            match self.cfg.rule_manager.synthesize(agg, 10) {
                Ok(rule) => {
                    rules.push(rule);
                    offloadable.push(*agg);
                }
                Err(_) => { /* deny-overlap: skip this aggregate */ }
            }
        }
        let broadcast = OffloadDecision {
            interval: self.interval,
            offload: offloadable.clone(),
            demote: decision.demote.clone(),
            hw_agg_bps,
        };
        if rules.is_empty() {
            // Nothing to install; broadcast demotions/rates immediately.
            self.broadcast(api, broadcast);
        } else {
            let xid = self.next_xid;
            self.next_xid += 1;
            for (agg, rule) in offloadable.iter().zip(&rules) {
                self.installed_spec.insert(*agg, (rule.tenant, rule.spec));
                self.spec_to_agg.insert((rule.tenant, rule.spec), *agg);
            }
            self.entries_used += rules.len();
            self.pending_install.insert(xid, (offloadable, broadcast));
            api.send(
                self.cfg.tor,
                SimDuration::from_micros(100),
                Event::Ctl(CtlMsg::new(
                    api.self_id,
                    CtrlRequest::InstallTorRules { rules, xid },
                )),
            );
        }
    }

    fn broadcast(&self, api: &mut Api<'_, Event, NetCtx>, d: OffloadDecision) {
        for &local in &self.cfg.locals {
            api.send(
                local,
                SimDuration::from_micros(100),
                Event::Ctl(CtlMsg::new(api.self_id, d.clone())),
            );
        }
    }

    fn on_install_ack(&mut self, api: &mut Api<'_, Event, NetCtx>, xid: u64, ok: bool) {
        let Some((aggs, broadcast)) = self.pending_install.remove(&xid) else {
            return;
        };
        if ok {
            for a in &aggs {
                self.offloaded.insert(*a);
            }
            self.broadcast(api, broadcast);
        } else {
            // Roll back bookkeeping; broadcast only the demotions.
            self.install_failures += 1;
            self.entries_used = self.entries_used.saturating_sub(aggs.len());
            for a in &aggs {
                if let Some(s) = self.installed_spec.remove(a) {
                    self.spec_to_agg.remove(&s);
                }
            }
            let mut b = broadcast;
            b.offload.clear();
            self.broadcast(api, b);
        }
    }

    fn on_migration_prepare(&mut self, api: &mut Api<'_, Event, NetCtx>, m: MigrationPrepare) {
        // Demote every aggregate touching the migrating VM (paper §4.1.2:
        // "any offloaded flows must be returned back to the VM's hypervisor
        // before the migration can occur").
        let mut affected: Vec<FlowAggregate> = self
            .offloaded
            .iter()
            .copied()
            .filter(|a| match *a {
                FlowAggregate::SrcApp { tenant, ip, .. }
                | FlowAggregate::DstApp { tenant, ip, .. } => tenant == m.tenant && ip == m.vm_ip,
                FlowAggregate::Exact(k) => {
                    k.tenant == m.tenant && (k.src_ip == m.vm_ip || k.dst_ip == m.vm_ip)
                }
            })
            .collect();
        affected.sort();
        if affected.is_empty() {
            return;
        }
        let mut specs = Vec::new();
        for agg in &affected {
            if let Some(s) = self.installed_spec.remove(agg) {
                self.spec_to_agg.remove(&s);
                specs.push(s);
            }
            self.offloaded.remove(agg);
            self.hw.forget(agg);
        }
        self.entries_used = self.entries_used.saturating_sub(specs.len());
        self.broadcast(
            api,
            OffloadDecision {
                interval: self.interval,
                offload: Vec::new(),
                demote: affected,
                hw_agg_bps: Vec::new(),
            },
        );
        // Remove ToR rules after the usual grace.
        let token = self.next_gc;
        self.next_gc += 1;
        self.gc_queue.insert(token, specs);
        api.timer(
            self.cfg.demote_grace,
            Event::Timer {
                tag: tags::GC,
                a: token,
                b: 0,
            },
        );
    }
}

impl Node<Event, NetCtx> for TorController {
    fn on_event(&mut self, ev: Event, api: &mut Api<'_, Event, NetCtx>) {
        match ev {
            Event::Timer {
                tag: tags::EPOCH, ..
            } => {
                self.request_tor_dump(api, false);
                api.timer(
                    self.cfg.timing.sample_gap,
                    Event::Timer {
                        tag: tags::SAMPLE_B,
                        a: 0,
                        b: 0,
                    },
                );
                api.timer(self.cfg.timing.epoch, TorController::boot_event());
            }
            Event::Timer {
                tag: tags::SAMPLE_B,
                ..
            } => {
                self.request_tor_dump(api, true);
            }
            Event::Timer {
                tag: tags::DECIDE, ..
            } => {
                self.decide(api);
            }
            Event::Timer {
                tag: tags::GC, a, ..
            } => {
                if let Some(specs) = self.gc_queue.remove(&a) {
                    api.send(
                        self.cfg.tor,
                        SimDuration::from_micros(100),
                        Event::Ctl(CtlMsg::new(
                            api.self_id,
                            CtrlRequest::RemoveTorRules { rules: specs },
                        )),
                    );
                }
            }
            Event::Ctl(msg) => {
                let msg = match msg.downcast::<CtrlReply>() {
                    Ok((_, CtrlReply::TorFlowStats { xid, entries })) => {
                        if xid % 2 == 0 {
                            self.hw.sample_a(&entries, &self.spec_to_agg);
                        } else {
                            let gap = self.cfg.timing.sample_gap.as_secs_f64();
                            let map = std::mem::take(&mut self.spec_to_agg);
                            self.hw.sample_b(&entries, &map, gap);
                            self.spec_to_agg = map;
                            self.epoch_in_interval += 1;
                            if self.epoch_in_interval >= self.cfg.timing.epochs_per_interval {
                                self.epoch_in_interval = 0;
                                self.interval += 1;
                                // Decide shortly after the epoch closes so
                                // local reports for the interval have landed.
                                api.timer(
                                    SimDuration::from_millis(10),
                                    Event::Timer {
                                        tag: tags::DECIDE,
                                        a: 0,
                                        b: 0,
                                    },
                                );
                            }
                        }
                        return;
                    }
                    Ok((_, CtrlReply::Ack { xid })) => {
                        self.on_install_ack(api, xid, true);
                        return;
                    }
                    Ok((_, CtrlReply::Error { xid, .. })) => {
                        self.on_install_ack(api, xid, false);
                        return;
                    }
                    Ok(_) => return,
                    Err(m) => m,
                };
                let msg = match msg.downcast::<DemandReport>() {
                    Ok((_, rep)) => {
                        self.reports.insert(rep.server_ip, rep);
                        return;
                    }
                    Err(m) => m,
                };
                if let Ok((_, m)) = msg.downcast::<MigrationPrepare>() {
                    self.on_migration_prepare(api, m);
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "tor-ctrl"
    }
}
