//! The Decision Engine (paper §4.3.2).
//!
//! Scores every active flow aggregate — software **and** already-offloaded —
//! with `S = n × m_pps × c` (epochs active × median pps × tenant priority),
//! then selects the highest-scoring set that fits the ToR's fast-path
//! budget. Aggregates currently offloaded but no longer in the winning set
//! are demoted back to the vswitch. Partition-aggregate applications can be
//! declared as all-or-nothing **groups**: either every member aggregate is
//! offloaded or none is.

use std::collections::{HashMap, HashSet};

use fastrak_net::addr::TenantId;
use fastrak_net::flow::FlowAggregate;
use fastrak_sim::FxHashMap;

use crate::me::AggDemand;
use crate::policy::{self, FastPathPolicy};

/// Decision engine configuration.
#[derive(Debug, Clone, Default)]
pub struct DeConfig {
    /// Tenant priority multipliers `c` (default 1.0).
    pub tenant_priority: HashMap<TenantId, f64>,
    /// Optional cap on the number of offloaded aggregates (used by the
    /// paper's Table-4 experiment, which restricts FasTrak to one
    /// application).
    pub max_offloaded: Option<usize>,
    /// Ignore aggregates below this median pps (offloading idle flows wastes
    /// fast-path memory and churns rules).
    pub min_median_pps: f64,
    /// Hysteresis factor: an offloaded aggregate is only demoted in favour
    /// of a software aggregate scoring at least this multiple of its score.
    pub hysteresis: f64,
    /// All-or-nothing groups.
    pub groups: Vec<Vec<FlowAggregate>>,
    /// How fast-path entries are shared across tenants (see
    /// [`crate::policy`]). `Unrestricted` is the paper's behaviour and
    /// adds no per-epoch cost.
    pub policy: FastPathPolicy,
}

impl DeConfig {
    /// Paper defaults: no priorities, tiny pps floor, mild hysteresis.
    pub fn paper() -> DeConfig {
        DeConfig {
            tenant_priority: HashMap::new(),
            max_offloaded: None,
            min_median_pps: 1.0,
            hysteresis: 1.2,
            groups: Vec::new(),
            policy: FastPathPolicy::Unrestricted,
        }
    }

    /// The paper's ranking function `S = n × m_pps × c`, shared by the
    /// full-scan and incremental engines so their orders agree exactly.
    pub fn score(&self, d: &AggDemand) -> f64 {
        let c = self
            .tenant_priority
            .get(&d.agg.tenant())
            .copied()
            .unwrap_or(1.0);
        d.n_active as f64 * d.m_pps * c
    }

    /// An aggregate is eligible for ranking when its median rate clears the
    /// pps floor and its score is positive (both engines apply this filter).
    pub fn eligible(&self, d: &AggDemand) -> bool {
        d.m_pps >= self.min_median_pps && self.score(d) > 0.0
    }

    /// Precompute the aggregate→group index (first containing group wins,
    /// matching the old linear `Vec::contains` scan order).
    pub(crate) fn group_index(&self) -> FxHashMap<FlowAggregate, usize> {
        let mut idx = FxHashMap::default();
        for (gi, g) in self.groups.iter().enumerate() {
            for a in g {
                idx.entry(*a).or_insert(gi);
            }
        }
        idx
    }
}

/// The outcome of one decision round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Decision {
    /// Aggregates to newly offload (not currently in hardware).
    pub offload: Vec<FlowAggregate>,
    /// Aggregates to demote back to software.
    pub demote: Vec<FlowAggregate>,
    /// The full target hardware set after applying this decision.
    pub target: Vec<FlowAggregate>,
}

/// One scored aggregate (exposed for ablation benches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    /// The aggregate.
    pub agg: FlowAggregate,
    /// Its score `S = n × m_pps × c`.
    pub score: f64,
}

/// The full-scan decision engine: re-ranks the world every round. Retained
/// as the differential oracle for [`crate::de_inc::IncrementalDecisionEngine`]
/// (and selected for the controller by the `full-scan-de` feature, mirroring
/// the scheduler's `heap-sched` pattern).
#[derive(Debug)]
pub struct DecisionEngine {
    /// Configuration.
    pub cfg: DeConfig,
    /// Aggregate → index into `cfg.groups` (first containing group wins),
    /// built once so group membership is an O(1) probe instead of a linear
    /// scan over every group per ranked item.
    group_idx: FxHashMap<FlowAggregate, usize>,
}

impl DecisionEngine {
    /// Build from config.
    pub fn new(cfg: DeConfig) -> DecisionEngine {
        let group_idx = cfg.group_index();
        DecisionEngine { cfg, group_idx }
    }

    /// The paper's ranking function.
    pub fn score(&self, d: &AggDemand) -> f64 {
        self.cfg.score(d)
    }

    /// Score all demands, descending.
    pub fn rank(&self, demands: &[AggDemand]) -> Vec<Scored> {
        let mut v: Vec<Scored> = demands
            .iter()
            .filter(|d| d.m_pps >= self.cfg.min_median_pps)
            .map(|d| Scored {
                agg: d.agg,
                score: self.score(d),
            })
            .filter(|s| s.score > 0.0)
            .collect();
        // Stable ordering: break score ties on the aggregate identity so
        // decisions do not depend on hash-map iteration order.
        v.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap()
                .then_with(|| a.agg.cmp(&b.agg))
        });
        v
    }

    fn group_of(&self, agg: &FlowAggregate) -> Option<&[FlowAggregate]> {
        self.group_idx
            .get(agg)
            .map(|&gi| self.cfg.groups[gi].as_slice())
    }

    /// Decide the hardware set.
    ///
    /// * `demands` — the merged demand reports (software + hardware rates).
    /// * `offloaded` — the currently offloaded set.
    /// * `budget` — free fast-path entries **plus** the entries the current
    ///   offloaded set occupies (i.e. the total the DE may use).
    pub fn decide(
        &self,
        demands: &[AggDemand],
        offloaded: &HashSet<FlowAggregate>,
        budget: usize,
    ) -> Decision {
        let ranked = self.rank(demands);
        let cap = self.cfg.max_offloaded.map_or(budget, |m| m.min(budget));
        // Per-tenant fairness caps for this walk (no-op — and no cost —
        // under `Unrestricted`; `WeightedScore` consumes the rank order to
        // build bit-identical score masses in both engines).
        let mut tcaps = policy::caps_for_walk(
            &self.cfg.policy,
            cap,
            ranked.iter().map(|s| (s.agg.tenant(), s.score)),
        );

        let mut target: Vec<FlowAggregate> = Vec::new();
        let mut chosen: HashSet<FlowAggregate> = HashSet::new();
        for s in &ranked {
            if target.len() >= cap {
                break;
            }
            if chosen.contains(&s.agg) {
                continue;
            }
            // Hysteresis: a software aggregate must beat an incumbent by a
            // margin to evict it once the table would overflow. We apply it
            // cheaply: scale down challenger scores when the table is full.
            // (Selection is top-k, so applying the margin at the boundary
            // suffices; see tests.)
            match self.group_of(&s.agg) {
                Some(group) => {
                    if target.len() + group.len() <= cap
                        && tcaps.admit(
                            group
                                .iter()
                                .filter(|g| !chosen.contains(*g))
                                .map(|g| g.tenant()),
                        )
                    {
                        for g in group {
                            if chosen.insert(*g) {
                                target.push(*g);
                            }
                        }
                    }
                    // else: all-or-nothing — skip the whole group (budget
                    // overflow or a member tenant at cap).
                }
                None => {
                    if tcaps.admit([s.agg.tenant()]) {
                        chosen.insert(s.agg);
                        target.push(s.agg);
                    }
                    // else: tenant at cap — the walk continues so lower-
                    // scored tenants with headroom can still fill the table.
                }
            }
        }

        // Apply hysteresis at the boundary: if an incumbent fell just
        // outside the target while a newcomer squeaked in with less than
        // `hysteresis` advantage, keep the incumbent instead (avoids rule
        // churn when scores are noisy). The best displaced incumbent is the
        // same for every newcomer (neither `target` nor `offloaded` changes
        // during the pass), so it is computed once — the old per-newcomer
        // rescan of `offloaded` with a `target.contains` probe inside was
        // O(|target|·|offloaded|·|target|). Score ties between displaced
        // incumbents break toward the smaller aggregate (the one `rank`
        // orders first); the old `max_by` over a `HashSet` left ties to
        // iteration order, i.e. nondeterministic.
        let target_set: HashSet<FlowAggregate> = target.iter().copied().collect();
        if self.cfg.hysteresis > 1.0 {
            let score_of: HashMap<FlowAggregate, f64> =
                ranked.iter().map(|s| (s.agg, s.score)).collect();
            let displaced: Option<(f64, FlowAggregate)> = offloaded
                .iter()
                .filter(|o| !target_set.contains(o))
                .map(|o| (score_of.get(o).copied().unwrap_or(0.0), *o))
                .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then_with(|| b.1.cmp(&a.1)));
            if let Some((s_inc, inc)) = displaced {
                if s_inc > 0.0 {
                    let mut stable = target.clone();
                    for (i, t) in target.iter().enumerate() {
                        if offloaded.contains(t) {
                            continue; // already in hardware: no churn
                        }
                        let s_new = score_of.get(t).copied().unwrap_or(0.0);
                        if s_new < self.cfg.hysteresis * s_inc {
                            stable[i] = inc;
                        }
                    }
                    // De-duplicate while preserving order.
                    let mut seen = HashSet::new();
                    target = stable.into_iter().filter(|a| seen.insert(*a)).collect();
                }
            }
        }

        let target_set: HashSet<FlowAggregate> = target.iter().copied().collect();
        let offload = target
            .iter()
            .filter(|a| !offloaded.contains(a))
            .copied()
            .collect();
        let mut demote: Vec<FlowAggregate> = offloaded
            .iter()
            .filter(|a| !target_set.contains(a))
            .copied()
            .collect();
        demote.sort(); // HashSet order is nondeterministic
        Decision {
            offload,
            demote,
            target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastrak_net::addr::Ip;

    fn agg(port: u16) -> FlowAggregate {
        FlowAggregate::DstApp {
            tenant: TenantId(1),
            ip: Ip::tenant_vm(9),
            port,
        }
    }

    fn demand(port: u16, m_pps: f64, n: u32) -> AggDemand {
        AggDemand {
            agg: agg(port),
            pps: m_pps,
            bps: m_pps * 1000.0,
            n_active: n,
            m_pps,
            m_bps: m_pps * 1000.0,
        }
    }

    fn de() -> DecisionEngine {
        DecisionEngine::new(DeConfig::paper())
    }

    #[test]
    fn score_is_n_times_median_pps() {
        let d = de();
        assert_eq!(d.score(&demand(1, 100.0, 3)), 300.0);
    }

    #[test]
    fn tenant_priority_scales_score() {
        let mut cfg = DeConfig::paper();
        cfg.tenant_priority.insert(TenantId(1), 2.5);
        let d = DecisionEngine::new(cfg);
        assert_eq!(d.score(&demand(1, 100.0, 2)), 500.0);
    }

    #[test]
    fn top_k_by_budget() {
        let d = de();
        let demands = vec![
            demand(1, 1000.0, 2),
            demand(2, 10.0, 2),
            demand(3, 500.0, 2),
        ];
        let dec = d.decide(&demands, &HashSet::new(), 2);
        assert_eq!(dec.target, vec![agg(1), agg(3)]);
        assert_eq!(dec.offload, vec![agg(1), agg(3)]);
        assert!(dec.demote.is_empty());
    }

    #[test]
    fn low_rate_aggregates_filtered() {
        let mut cfg = DeConfig::paper();
        cfg.min_median_pps = 50.0;
        let d = DecisionEngine::new(cfg);
        let dec = d.decide(&[demand(1, 10.0, 5)], &HashSet::new(), 10);
        assert!(dec.target.is_empty());
    }

    #[test]
    fn demotes_aggregates_that_fell_out() {
        let d = de();
        let mut offloaded = HashSet::new();
        offloaded.insert(agg(9)); // was hot, now cold (absent from demands)
        let dec = d.decide(&[demand(1, 1000.0, 3)], &offloaded, 1);
        assert_eq!(dec.offload, vec![agg(1)]);
        assert_eq!(dec.demote, vec![agg(9)]);
    }

    #[test]
    fn hysteresis_keeps_marginal_incumbent() {
        let mut cfg = DeConfig::paper();
        cfg.hysteresis = 1.5;
        let d = DecisionEngine::new(cfg);
        let mut offloaded = HashSet::new();
        offloaded.insert(agg(2));
        // Challenger scores 1.1x the incumbent: below the 1.5 margin.
        let demands = vec![demand(1, 110.0, 1), demand(2, 100.0, 1)];
        let dec = d.decide(&demands, &offloaded, 1);
        assert_eq!(dec.target, vec![agg(2)], "incumbent survives");
        assert!(dec.offload.is_empty());
        assert!(dec.demote.is_empty());
    }

    #[test]
    fn hysteresis_yields_to_clear_winner() {
        let mut cfg = DeConfig::paper();
        cfg.hysteresis = 1.5;
        let d = DecisionEngine::new(cfg);
        let mut offloaded = HashSet::new();
        offloaded.insert(agg(2));
        let demands = vec![demand(1, 1000.0, 1), demand(2, 100.0, 1)];
        let dec = d.decide(&demands, &offloaded, 1);
        assert_eq!(dec.target, vec![agg(1)]);
        assert_eq!(dec.demote, vec![agg(2)]);
    }

    #[test]
    fn max_offloaded_caps_selection() {
        let mut cfg = DeConfig::paper();
        cfg.max_offloaded = Some(1);
        let d = DecisionEngine::new(cfg);
        let demands = vec![demand(1, 1000.0, 2), demand(2, 900.0, 2)];
        let dec = d.decide(&demands, &HashSet::new(), 100);
        assert_eq!(dec.target.len(), 1);
    }

    #[test]
    fn groups_all_or_nothing() {
        let mut cfg = DeConfig::paper();
        cfg.groups = vec![vec![agg(1), agg(2)]];
        let d = DecisionEngine::new(cfg);
        let demands = vec![demand(1, 1000.0, 2), demand(2, 1.5, 2), demand(3, 500.0, 2)];
        // Budget 2: the group fits (2 entries) and outranks agg(3).
        let dec = d.decide(&demands, &HashSet::new(), 2);
        assert!(dec.target.contains(&agg(1)) && dec.target.contains(&agg(2)));
        // Budget 1: the group cannot fit; agg(3) wins alone.
        let dec = d.decide(&demands, &HashSet::new(), 1);
        assert_eq!(dec.target, vec![agg(3)]);
    }

    fn tagg(tenant: u32, port: u16) -> FlowAggregate {
        FlowAggregate::DstApp {
            tenant: TenantId(tenant),
            ip: Ip::tenant_vm(9),
            port,
        }
    }

    fn tdemand(tenant: u32, port: u16, m_pps: f64) -> AggDemand {
        AggDemand {
            agg: tagg(tenant, port),
            pps: m_pps,
            bps: m_pps * 1000.0,
            n_active: 1,
            m_pps,
            m_bps: m_pps * 1000.0,
        }
    }

    #[test]
    fn static_quota_caps_a_dominating_tenant() {
        // Tenant 1's three aggregates outscore everything; unrestricted, it
        // takes 3 of the 4 entries.
        let demands = vec![
            tdemand(1, 1, 1000.0),
            tdemand(1, 2, 900.0),
            tdemand(1, 3, 800.0),
            tdemand(2, 4, 100.0),
            tdemand(2, 5, 90.0),
        ];
        let dec = de().decide(&demands, &HashSet::new(), 4);
        assert_eq!(
            dec.target,
            vec![tagg(1, 1), tagg(1, 2), tagg(1, 3), tagg(2, 4)]
        );
        // A 2-entry quota holds tenant 1 to its share; tenant 2's second
        // aggregate fills the freed entry.
        let mut cfg = DeConfig::paper();
        cfg.policy = FastPathPolicy::StaticQuota {
            default_cap: 2,
            caps: HashMap::new(),
        };
        let dec = DecisionEngine::new(cfg).decide(&demands, &HashSet::new(), 4);
        assert_eq!(
            dec.target,
            vec![tagg(1, 1), tagg(1, 2), tagg(2, 4), tagg(2, 5)]
        );
    }

    #[test]
    fn static_quota_is_not_work_conserving() {
        // Only tenant 1 has demand; its quota leaves the rest of the table
        // empty even though nobody else wants it.
        let demands: Vec<AggDemand> = (0..5).map(|p| tdemand(1, p, 500.0 + p as f64)).collect();
        let mut cfg = DeConfig::paper();
        cfg.policy = FastPathPolicy::StaticQuota {
            default_cap: 3,
            caps: HashMap::new(),
        };
        let dec = DecisionEngine::new(cfg).decide(&demands, &HashSet::new(), 6);
        assert_eq!(dec.target.len(), 3);
    }

    #[test]
    fn weighted_score_redistributes_unused_share() {
        // Tenant 1 holds most of the score mass but can only use one entry;
        // water-filling hands its leftover share to tenant 2.
        let mut demands = vec![tdemand(1, 1, 10_000.0)];
        demands.extend((0..6).map(|p| tdemand(2, 10 + p, 100.0)));
        let mut cfg = DeConfig::paper();
        cfg.policy = FastPathPolicy::WeightedScore {
            weights: HashMap::new(),
        };
        let dec = DecisionEngine::new(cfg).decide(&demands, &HashSet::new(), 6);
        assert_eq!(dec.target.len(), 6, "work-conserving: the table fills");
        let t2 = dec
            .target
            .iter()
            .filter(|a| a.tenant() == TenantId(2))
            .count();
        assert_eq!(t2, 5);
    }

    #[test]
    fn weighted_score_respects_weights() {
        // Equal per-aggregate scores; tenant 2 weighted 3×: of 4 entries it
        // gets 3.
        let demands: Vec<AggDemand> = (0..4)
            .map(|p| tdemand(1, p, 100.0))
            .chain((0..4).map(|p| tdemand(2, 10 + p, 100.0)))
            .collect();
        let mut cfg = DeConfig::paper();
        cfg.policy = FastPathPolicy::WeightedScore {
            weights: HashMap::from([(TenantId(2), 3.0)]),
        };
        let dec = DecisionEngine::new(cfg).decide(&demands, &HashSet::new(), 4);
        let t2 = dec
            .target
            .iter()
            .filter(|a| a.tenant() == TenantId(2))
            .count();
        assert_eq!(t2, 3, "3:1 weights over 4 entries: {:?}", dec.target);
    }

    #[test]
    fn already_offloaded_stays_without_churn() {
        let d = de();
        let mut offloaded = HashSet::new();
        offloaded.insert(agg(1));
        let dec = d.decide(&[demand(1, 1000.0, 3)], &offloaded, 4);
        assert!(dec.offload.is_empty());
        assert!(dec.demote.is_empty());
        assert_eq!(dec.target, vec![agg(1)]);
    }
}
