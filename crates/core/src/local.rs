//! The per-server **local controller** (paper §4.3, §5.2: "a python script
//! that queries the OVS datapath for active flow statistics twice within a
//! period of t = 100 ms ... repeated once every T seconds ... aggregated for
//! N epochs" and sent to the TOR controller).
//!
//! Responsibilities:
//! * run the Measurement Engine against the server's vswitch stats;
//! * ship demand reports to the TOR controller each control interval;
//! * on decisions, program the flow placers of co-resident VMs over the
//!   OpenFlow-style interface;
//! * recompute the FPS rate split for each limited VM and push the VIF half
//!   to the vswitch and the hardware half to the ToR (§4.1.4).

use std::collections::HashMap;

use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::ctrl::{CtrlReply, CtrlRequest, Dir};
use fastrak_net::event::{CtlMsg, Event, NetCtx};
use fastrak_net::flow::FlowAggregate;
use fastrak_net::packet::PathTag;
use fastrak_sim::kernel::{Api, Node, NodeId};
use fastrak_sim::time::SimDuration;

use crate::fps::{fps_split, is_maxed, FpsConfig, FpsInput};
use crate::me::{MeasurementEngine, VmDemandProfile};
use crate::protocol::{DemandReport, HwPathReport, OffloadDecision, VmLimit};

/// Timer tags.
mod tags {
    /// Start of an epoch: take sample A.
    pub const EPOCH: u64 = 1;
    /// `t` later: take sample B.
    pub const SAMPLE_B: u64 = 2;
}

/// Measurement timing (paper §5.2 defaults).
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Gap between the two samples of an epoch (`t`, 100 ms).
    pub sample_gap: SimDuration,
    /// Epoch period (`T`; the paper uses 5 s and 0.5 s).
    pub epoch: SimDuration,
    /// Epochs per control interval (`N`, 2).
    pub epochs_per_interval: u32,
    /// Control intervals of history (`M`, 3).
    pub history_intervals: u32,
}

impl Timing {
    /// T = 5 s (the paper's coarse setting).
    pub fn coarse() -> Timing {
        Timing {
            sample_gap: SimDuration::from_millis(100),
            epoch: SimDuration::from_secs(5),
            epochs_per_interval: 2,
            history_intervals: 3,
        }
    }

    /// T = 0.5 s (the paper's fine setting).
    pub fn fine() -> Timing {
        Timing {
            epoch: SimDuration::from_millis(500),
            ..Timing::coarse()
        }
    }

    /// Length of one control interval `C = N × T`.
    pub fn control_interval(&self) -> SimDuration {
        self.epoch * self.epochs_per_interval as u64
    }
}

/// Local controller configuration.
pub struct LocalControllerConfig {
    /// The server this controller manages.
    pub server: NodeId,
    /// That server's provider IP (report identity).
    pub server_ip: Ip,
    /// The TOR controller node.
    pub tor_ctrl: NodeId,
    /// The ToR switch node (for hardware rate-limit installs).
    pub tor: NodeId,
    /// Measurement timing.
    pub timing: Timing,
    /// VMs hosted on the server: (tenant, ip).
    pub vms: Vec<(TenantId, Ip)>,
    /// Rate limits to enforce.
    pub limits: Vec<VmLimit>,
    /// FPS tuning.
    pub fps: FpsConfig,
}

/// The local controller node.
pub struct LocalController {
    cfg: LocalControllerConfig,
    /// Cached display name (`Node::name` returns a borrow, not an allocation).
    name: String,
    me: MeasurementEngine,
    epoch_in_interval: u32,
    interval: u64,
    next_xid: u64,
    /// xid → phase (A/B) so async stat replies land in the right sample.
    pending: HashMap<u64, Phase>,
    /// Latest hardware rates per aggregate from the TOR controller.
    hw_rates: HashMap<FlowAggregate, f64>,
    /// Last configured splits per (vm, dir): (sw_bps, hw_bps).
    last_split: HashMap<(Ip, u8), (u64, u64)>,
    /// Placer rules currently installed: aggregate → installed on which VMs.
    installed: HashMap<FlowAggregate, Vec<(TenantId, Ip)>>,
    /// Last observed liveness of the server's SR-IOV hardware path (polled
    /// each measurement epoch; reports to the TOR controller only on
    /// transitions, so a healthy path generates no control traffic).
    hw_path_down: bool,
    /// Decisions applied.
    pub decisions_applied: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    A,
    B,
}

impl LocalController {
    /// Build; call [`LocalController::boot`] (or post an EPOCH timer) after
    /// adding to the kernel.
    pub fn new(cfg: LocalControllerConfig) -> LocalController {
        let hist = (cfg.timing.epochs_per_interval * cfg.timing.history_intervals) as usize;
        LocalController {
            name: format!("local-ctrl@{}", cfg.server_ip),
            me: MeasurementEngine::new(cfg.timing.sample_gap.as_secs_f64(), hist),
            epoch_in_interval: 0,
            interval: 0,
            next_xid: 1,
            pending: HashMap::new(),
            hw_rates: HashMap::new(),
            last_split: HashMap::new(),
            installed: HashMap::new(),
            hw_path_down: false,
            decisions_applied: 0,
            cfg,
        }
    }

    /// The first event to post: start the epoch loop at `at`.
    pub fn boot_event() -> Event {
        Event::Timer {
            tag: tags::EPOCH,
            a: 0,
            b: 0,
        }
    }

    /// Export a VM's demand profile (VM migration support, S4).
    pub fn export_profile(&self, tenant: TenantId, vm_ip: Ip) -> VmDemandProfile {
        self.me.export_profile(tenant, vm_ip)
    }

    /// Import a migrated VM's profile and start managing the VM.
    pub fn adopt_vm(&mut self, profile: VmDemandProfile, limit: Option<VmLimit>) {
        self.cfg.vms.push((profile.tenant, profile.vm_ip));
        if let Some(l) = limit {
            self.cfg.limits.push(l);
        }
        self.me.import_profile(profile);
    }

    /// Stop managing a VM (it migrated away).
    pub fn release_vm(&mut self, tenant: TenantId, vm_ip: Ip) {
        self.cfg
            .vms
            .retain(|&(t, ip)| !(t == tenant && ip == vm_ip));
        self.cfg
            .limits
            .retain(|l| !(l.tenant == tenant && l.vm_ip == vm_ip));
    }

    fn request_dump(&mut self, api: &mut Api<'_, Event, NetCtx>, phase: Phase) {
        let xid = self.next_xid;
        self.next_xid += 1;
        self.pending.insert(xid, phase);
        api.send(
            self.cfg.server,
            SimDuration::from_micros(20),
            Event::Ctl(CtlMsg::new(api.self_id, CtrlRequest::DumpFlowStats { xid })),
        );
    }

    /// Poll the server's SR-IOV path liveness (the NIC driver knows
    /// immediately; the epoch cadence models the health-check loop) and
    /// report transitions to the TOR controller so it can demote / readmit
    /// this server's offloaded aggregates.
    fn poll_hw_path(&mut self, api: &mut Api<'_, Event, NetCtx>) {
        let down = api.chaos_vf_down_at(self.cfg.server);
        if down == self.hw_path_down {
            return;
        }
        self.hw_path_down = down;
        api.ctx.telemetry.flight.record(
            api.now.as_nanos(),
            "local-ctrl",
            if down {
                fastrak_telemetry::Severity::Error
            } else {
                fastrak_telemetry::Severity::Info
            },
            if down {
                "sriov path down: reporting to tor controller"
            } else {
                "sriov path recovered: reporting to tor controller"
            },
            [u64::from(self.cfg.server_ip.0), 0, 0],
        );
        api.send(
            self.cfg.tor_ctrl,
            SimDuration::from_micros(100),
            Event::Ctl(CtlMsg::new(
                api.self_id,
                HwPathReport {
                    server_ip: self.cfg.server_ip,
                    up: !down,
                    vms: self.cfg.vms.clone(),
                },
            )),
        );
    }

    fn on_sample_b_done(&mut self, api: &mut Api<'_, Event, NetCtx>) {
        self.epoch_in_interval += 1;
        if self.epoch_in_interval >= self.cfg.timing.epochs_per_interval {
            self.epoch_in_interval = 0;
            self.interval += 1;
            let report = DemandReport {
                interval: self.interval,
                server_ip: self.cfg.server_ip,
                entries: self.me.report(),
            };
            api.send(
                self.cfg.tor_ctrl,
                SimDuration::from_micros(100),
                Event::Ctl(CtlMsg::new(api.self_id, report)),
            );
        }
    }

    /// Which hosted VMs need a placer rule for this aggregate?
    ///
    /// * `SrcApp` — only the VM that *is* the source endpoint;
    /// * `DstApp` — every hosted VM of the tenant (any of them may send to
    ///   the destination endpoint);
    /// * `Exact` — the VM owning the source address.
    fn placer_targets(&self, agg: &FlowAggregate) -> Vec<(TenantId, Ip)> {
        match *agg {
            FlowAggregate::SrcApp { tenant, ip, .. } => self
                .cfg
                .vms
                .iter()
                .copied()
                .filter(|&(t, vip)| t == tenant && vip == ip)
                .collect(),
            FlowAggregate::DstApp { tenant, .. } => self
                .cfg
                .vms
                .iter()
                .copied()
                .filter(|&(t, _)| t == tenant)
                .collect(),
            FlowAggregate::Exact(k) => self
                .cfg
                .vms
                .iter()
                .copied()
                .filter(|&(t, vip)| t == k.tenant && vip == k.src_ip)
                .collect(),
        }
    }

    fn apply_decision(&mut self, api: &mut Api<'_, Event, NetCtx>, d: OffloadDecision) {
        self.decisions_applied += 1;
        self.hw_rates = d.hw_agg_bps.iter().copied().collect();
        // Demotions first: pull traffic back into software.
        for agg in &d.demote {
            if let Some(targets) = self.installed.remove(agg) {
                for (tenant, vm_ip) in targets {
                    api.send(
                        self.cfg.server,
                        SimDuration::from_micros(20),
                        Event::Ctl(CtlMsg::new(
                            api.self_id,
                            CtrlRequest::RemovePlacerRule {
                                vm_ip,
                                tenant,
                                spec: agg.to_spec(),
                            },
                        )),
                    );
                }
            }
            self.hw_rates.remove(agg);
        }
        // Then offloads: ToR rules are already in place (the TOR controller
        // installs before broadcasting), so flipping placers is safe.
        for agg in &d.offload {
            let targets = self.placer_targets(agg);
            for &(tenant, vm_ip) in &targets {
                api.send(
                    self.cfg.server,
                    SimDuration::from_micros(20),
                    Event::Ctl(CtlMsg::new(
                        api.self_id,
                        CtrlRequest::InstallPlacerRule {
                            vm_ip,
                            tenant,
                            spec: agg.to_spec(),
                            priority: 10,
                            path: PathTag::SrIov,
                        },
                    )),
                );
            }
            if !targets.is_empty() {
                self.installed.insert(*agg, targets);
            }
        }
        self.refresh_rate_splits(api);
    }

    /// Per-VM software/hardware demand, from the ME report + hw rates.
    fn vm_demand(&self, tenant: TenantId, vm_ip: Ip, dir: Dir) -> (f64, f64) {
        let mut sw = 0.0;
        let mut hw = 0.0;
        let owned = |agg: &FlowAggregate| match (*agg, dir) {
            (FlowAggregate::SrcApp { tenant: t, ip, .. }, Dir::Egress) => {
                t == tenant && ip == vm_ip
            }
            (FlowAggregate::DstApp { tenant: t, ip, .. }, Dir::Ingress) => {
                t == tenant && ip == vm_ip
            }
            (FlowAggregate::Exact(k), Dir::Egress) => k.tenant == tenant && k.src_ip == vm_ip,
            (FlowAggregate::Exact(k), Dir::Ingress) => k.tenant == tenant && k.dst_ip == vm_ip,
            _ => false,
        };
        for d in self.me.report() {
            if owned(&d.agg) {
                sw += d.bps * 8.0; // ME reports bytes/sec; demand in bits/sec
            }
        }
        for (agg, bps) in &self.hw_rates {
            if owned(agg) {
                hw += bps;
            }
        }
        (sw, hw)
    }

    fn refresh_rate_splits(&mut self, api: &mut Api<'_, Event, NetCtx>) {
        let limits = self.cfg.limits.clone();
        for l in limits {
            for (dir, dtag, total) in [
                (Dir::Egress, 0u8, l.egress_bps),
                (Dir::Ingress, 1u8, l.ingress_bps),
            ] {
                let Some(total) = total else { continue };
                let (sw_demand, hw_demand) = self.vm_demand(l.tenant, l.vm_ip, dir);
                let prev = self.last_split.get(&(l.vm_ip, dtag)).copied();
                let (sw_maxed, hw_maxed) = match prev {
                    Some((ps, ph)) => {
                        (is_maxed(sw_demand, ps, 0.95), is_maxed(hw_demand, ph, 0.95))
                    }
                    None => (false, false),
                };
                let split = fps_split(
                    &self.cfg.fps,
                    FpsInput {
                        limit_bps: total,
                        sw_demand_bps: sw_demand,
                        hw_demand_bps: hw_demand,
                        sw_maxed,
                        hw_maxed,
                    },
                );
                self.last_split
                    .insert((l.vm_ip, dtag), (split.sw_bps, split.hw_bps));
                api.send(
                    self.cfg.server,
                    SimDuration::from_micros(20),
                    Event::Ctl(CtlMsg::new(
                        api.self_id,
                        CtrlRequest::SetVifRate {
                            vm_ip: l.vm_ip,
                            dir,
                            bps: split.sw_bps,
                        },
                    )),
                );
                api.send(
                    self.cfg.tor,
                    SimDuration::from_micros(100),
                    Event::Ctl(CtlMsg::new(
                        api.self_id,
                        CtrlRequest::SetHwRate {
                            tenant: l.tenant,
                            vm_ip: l.vm_ip,
                            dir,
                            bps: split.hw_bps,
                        },
                    )),
                );
            }
        }
    }

    /// Per-tenant (sw_bps, hw_bps) FPS-split totals over this server's
    /// rate-limited VMs, both directions summed — the deployment layer
    /// aggregates these across servers into the `ctrl.tenant.fps_*_bps`
    /// gauges (pull-model; sorted map so publication order is
    /// deterministic).
    pub fn tenant_fps_totals(&self) -> std::collections::BTreeMap<TenantId, (u64, u64)> {
        let mut per: std::collections::BTreeMap<TenantId, (u64, u64)> =
            std::collections::BTreeMap::new();
        for l in &self.cfg.limits {
            for d in [0u8, 1u8] {
                if let Some(&(sw, hw)) = self.last_split.get(&(l.vm_ip, d)) {
                    let e = per.entry(l.tenant).or_default();
                    e.0 += sw;
                    e.1 += hw;
                }
            }
        }
        per
    }

    /// Current split for a (vm, dir) — test/inspection hook.
    pub fn split_of(&self, vm_ip: Ip, dir: Dir) -> Option<(u64, u64)> {
        let d = match dir {
            Dir::Egress => 0,
            Dir::Ingress => 1,
        };
        self.last_split.get(&(vm_ip, d)).copied()
    }
}

impl Node<Event, NetCtx> for LocalController {
    fn on_event(&mut self, ev: Event, api: &mut Api<'_, Event, NetCtx>) {
        match ev {
            Event::Timer {
                tag: tags::EPOCH, ..
            } => {
                self.poll_hw_path(api);
                self.request_dump(api, Phase::A);
                api.timer(
                    self.cfg.timing.sample_gap,
                    Event::Timer {
                        tag: tags::SAMPLE_B,
                        a: 0,
                        b: 0,
                    },
                );
                api.timer(self.cfg.timing.epoch, LocalController::boot_event());
            }
            Event::Timer {
                tag: tags::SAMPLE_B,
                ..
            } => {
                self.request_dump(api, Phase::B);
            }
            Event::Ctl(msg) => {
                let msg = match msg.downcast::<CtrlReply>() {
                    Ok((_, CtrlReply::FlowStats { xid, entries })) => {
                        match self.pending.remove(&xid) {
                            Some(Phase::A) => self.me.epoch_sample_a(&entries),
                            Some(Phase::B) => {
                                self.me.epoch_sample_b(&entries);
                                self.on_sample_b_done(api);
                            }
                            None => {}
                        }
                        return;
                    }
                    Ok(_) => return,
                    Err(m) => m,
                };
                if let Ok((_, d)) = msg.downcast::<OffloadDecision>() {
                    self.apply_decision(api, d);
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}
