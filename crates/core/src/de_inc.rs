//! Incremental decision engine: near-linear epochs at fleet scale.
//!
//! The full-scan [`DecisionEngine`](crate::de::DecisionEngine) re-ranks the
//! world every round — a sort over every active aggregate plus a boundary
//! hysteresis pass — which goes superlinear in the aggregate count (99 µs at
//! 100 aggregates, 68.9 ms at 10 k in `BENCH_baseline.json`). The paper's
//! §4.3.2 ranking only needs the *top-k by budget*, not a total order, and
//! between epochs almost nothing moves: demand medians are stable by
//! construction (they are medians over N×M epochs).
//!
//! [`IncrementalDecisionEngine`] therefore keeps a **persistent score
//! index** between rounds:
//!
//! * `scores` — a dense FxHash aggregate→score index (the authoritative
//!   membership set, mirroring the full-scan engine's eligibility filter);
//! * `ord` — a score-ordered [`BTreeSet`] of [`OrdKey`]s whose ascending
//!   order is exactly the full-scan `rank` order (score descending, then
//!   aggregate ascending), so walking it from the front reproduces the
//!   oracle's greedy selection bit for bit.
//!
//! Each epoch the measurement plane feeds only the **demand deltas**
//! (changed/new/expired aggregates); a delta costs one hash probe plus at
//! most two `O(log n)` ordered-index edits. `decide` then walks the top of
//! the order until the budget is filled — `O(k)` for the walk plus `O(k)`
//! for the hysteresis band and demotion sweep — so a low-churn epoch costs
//! `O(Δ·log n + k)` regardless of how many aggregates exist.
//!
//! **Band semantics.** Hysteresis is a score *band* at the k-th boundary:
//! with factor `h`, the best-scoring displaced incumbent `inc` suppresses
//! every newcomer whose score falls inside `[0, h·S(inc))` — those
//! band-crossers keep `inc` offloaded instead of churning rules. This is
//! exactly the full-scan pass's semantics (the displaced incumbent there is
//! loop-invariant), with one documented refinement shared by both engines:
//! score ties between displaced incumbents break toward the smaller
//! aggregate, where the old code left ties to `HashSet` iteration order.
//!
//! [`ShardedDecisionEngine`] runs one independent engine per ToR: rack
//! decisions share no state (each rack has its own budget and offloaded
//! set), so a fleet controller scores racks in parallel with scoped threads
//! and still gets deterministic, shard-ordered results.

use std::collections::{BTreeSet, HashSet};

use fastrak_net::flow::FlowAggregate;
use fastrak_sim::FxHashMap;

use crate::de::{DeConfig, Decision};
use crate::me::AggDemand;
use crate::policy;

/// Ordered-index key. `BTreeSet`'s ascending order must equal the full-scan
/// `rank` order (score descending, aggregate ascending), so the score is
/// stored as the bitwise NOT of its IEEE-754 bits: for the positive, finite
/// scores the eligibility filter admits, `f64::to_bits` is monotone, and
/// inverting flips the direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct OrdKey {
    inv_bits: u64,
    agg: FlowAggregate,
}

impl OrdKey {
    fn new(score: f64, agg: FlowAggregate) -> OrdKey {
        debug_assert!(score > 0.0, "only positive scores are indexed");
        OrdKey {
            inv_bits: !score.to_bits(),
            agg,
        }
    }
}

/// Observability counters for one decide epoch (see `ctrl.de.*` metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeEpochStats {
    /// Index mutations (inserts, score moves, removals) ingested since the
    /// previous decide. Unchanged-score rows cost a hash probe but are not
    /// deltas.
    pub deltas_ingested: u64,
    /// Aggregates currently indexed (eligible set size).
    pub entries_indexed: u64,
    /// Ordered-index entries visited by the selection walk (the "top-k
    /// fringe": ≈ budget + group skips, independent of the index size).
    pub scanned: u64,
    /// Aggregates that crossed the offload boundary this epoch
    /// (offloads + demotions actually decided).
    pub band_crossers: u64,
    /// Newcomers inside the hysteresis band whose offload was suppressed in
    /// favour of the displaced incumbent (churn avoided).
    pub churn_suppressed: u64,
}

/// The incremental decision engine. Produces decisions identical to
/// [`DecisionEngine::decide`](crate::de::DecisionEngine::decide) on the
/// same demand history (asserted by the `de_differential` suite) while
/// doing per-epoch work proportional to the change set, not the world.
#[derive(Debug)]
pub struct IncrementalDecisionEngine {
    /// Configuration (shared semantics with the full-scan engine).
    pub cfg: DeConfig,
    /// Aggregate → index into `cfg.groups` (first containing group wins).
    group_idx: FxHashMap<FlowAggregate, usize>,
    /// Aggregate → current score, for every eligible aggregate.
    scores: FxHashMap<FlowAggregate, f64>,
    /// Score-ordered view of `scores` (see [`OrdKey`]).
    ord: BTreeSet<OrdKey>,
    /// Mutations since the last decide (rolled into [`DeEpochStats`]).
    pending_deltas: u64,
    /// Stats of the most recent decide epoch.
    stats: DeEpochStats,
}

impl IncrementalDecisionEngine {
    /// Build an empty engine from config.
    pub fn new(cfg: DeConfig) -> IncrementalDecisionEngine {
        let group_idx = cfg.group_index();
        IncrementalDecisionEngine {
            group_idx,
            scores: FxHashMap::default(),
            ord: BTreeSet::new(),
            pending_deltas: 0,
            stats: DeEpochStats::default(),
            cfg,
        }
    }

    /// Number of aggregates currently indexed.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when no aggregate is indexed.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Stats of the most recent [`IncrementalDecisionEngine::decide`] epoch.
    pub fn last_stats(&self) -> DeEpochStats {
        self.stats
    }

    /// Upsert one demand row: indexes it when eligible (same filter as the
    /// full-scan `rank`), removes it otherwise.
    fn upsert(&mut self, d: &AggDemand) {
        if !self.cfg.eligible(d) {
            self.remove(&d.agg);
            return;
        }
        let score = self.cfg.score(d);
        if let Some(old) = self.scores.insert(d.agg, score) {
            if old == score {
                return; // no movement: not a delta
            }
            self.ord.remove(&OrdKey::new(old, d.agg));
        }
        self.ord.insert(OrdKey::new(score, d.agg));
        self.pending_deltas += 1;
    }

    /// Drop one aggregate from the index (expired / no longer eligible).
    fn remove(&mut self, agg: &FlowAggregate) {
        if let Some(old) = self.scores.remove(agg) {
            self.ord.remove(&OrdKey::new(old, *agg));
            self.pending_deltas += 1;
        }
    }

    /// Ingest one epoch's demand deltas: `changed` carries new and updated
    /// rows (rows falling below the eligibility filter count as removals),
    /// `removed` the aggregates that expired from measurement entirely.
    pub fn ingest(&mut self, changed: &[AggDemand], removed: &[FlowAggregate]) {
        for d in changed {
            self.upsert(d);
        }
        for a in removed {
            self.remove(a);
        }
    }

    /// Ingest a *full* demand snapshot: upserts every row and sweeps
    /// indexed aggregates absent from the snapshot. O(total) — this is the
    /// compatibility path for callers that still materialize full reports
    /// (it skips the sort and the quadratic hysteresis of the full-scan
    /// engine); delta feeding via [`IncrementalDecisionEngine::ingest`] is
    /// the near-linear path.
    pub fn ingest_snapshot(&mut self, demands: &[AggDemand]) {
        let mut seen: HashSet<FlowAggregate> = HashSet::with_capacity(demands.len());
        for d in demands {
            seen.insert(d.agg);
            self.upsert(d);
        }
        // No size shortcut: `upsert` drops ineligible rows, so `seen` and
        // `scores` can have equal sizes while a stale entry lingers.
        let stale: Vec<FlowAggregate> = self
            .scores
            .keys()
            .filter(|a| !seen.contains(*a))
            .copied()
            .collect();
        for a in &stale {
            self.remove(a);
        }
    }

    /// Decide the hardware set from the current index (same contract as the
    /// full-scan [`DecisionEngine::decide`](crate::de::DecisionEngine::decide):
    /// `offloaded` is the currently offloaded set, `budget` the total
    /// fast-path entries the DE may use).
    pub fn decide(&mut self, offloaded: &HashSet<FlowAggregate>, budget: usize) -> Decision {
        let cap = self.cfg.max_offloaded.map_or(budget, |m| m.min(budget));
        // Per-tenant fairness caps (see [`crate::policy`]). `Unrestricted`
        // pays nothing — the iterator below is never consumed. For
        // `WeightedScore` the score order `ord` is walked front to back,
        // the exact sequence the oracle's sorted ranking yields
        // (`f64::from_bits(!inv_bits)` recovers each score bit-exactly),
        // so the per-tenant f64 masses agree between engines. That mass
        // pass is O(n) — the one policy whose bookkeeping scales with the
        // index, bounded by the `decision_engine_decide_tenants` bench.
        let mut tcaps = policy::caps_for_walk(
            &self.cfg.policy,
            cap,
            self.ord
                .iter()
                .map(|k| (k.agg.tenant(), f64::from_bits(!k.inv_bits))),
        );

        // Greedy top-k walk over the score order — identical order and
        // group handling to the oracle's scan of its sorted `ranked` vec,
        // but touching only the fringe needed to fill `cap`. (Under a
        // tenant-cap policy the walk can run past the fringe: a capped
        // tenant's aggregates are skipped until tenants with headroom fill
        // the table.)
        let mut target: Vec<FlowAggregate> = Vec::new();
        let mut chosen: HashSet<FlowAggregate> = HashSet::new();
        let mut scanned = 0u64;
        for key in self.ord.iter() {
            if target.len() >= cap {
                break;
            }
            scanned += 1;
            if chosen.contains(&key.agg) {
                continue;
            }
            match self.group_idx.get(&key.agg) {
                Some(&gi) => {
                    let group = &self.cfg.groups[gi];
                    if target.len() + group.len() <= cap
                        && tcaps.admit(
                            group
                                .iter()
                                .filter(|g| !chosen.contains(*g))
                                .map(|g| g.tenant()),
                        )
                    {
                        for g in group {
                            if chosen.insert(*g) {
                                target.push(*g);
                            }
                        }
                    }
                    // else: all-or-nothing — skip the whole group (budget
                    // overflow or a member tenant at cap).
                }
                None => {
                    if tcaps.admit([key.agg.tenant()]) {
                        chosen.insert(key.agg);
                        target.push(key.agg);
                    }
                }
            }
        }

        // Hysteresis band at the k-th boundary (module docs): the best
        // displaced incumbent suppresses every newcomer scoring inside
        // `[0, h·S(inc))`.
        let mut suppressed = 0u64;
        let mut target_set: HashSet<FlowAggregate> = target.iter().copied().collect();
        if self.cfg.hysteresis > 1.0 {
            let displaced: Option<(f64, FlowAggregate)> = offloaded
                .iter()
                .filter(|o| !target_set.contains(o))
                .map(|o| (self.scores.get(o).copied().unwrap_or(0.0), *o))
                .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then_with(|| b.1.cmp(&a.1)));
            if let Some((s_inc, inc)) = displaced {
                if s_inc > 0.0 {
                    let mut stable = target.clone();
                    for (i, t) in target.iter().enumerate() {
                        if offloaded.contains(t) {
                            continue; // already in hardware: no churn
                        }
                        let s_new = self.scores.get(t).copied().unwrap_or(0.0);
                        if s_new < self.cfg.hysteresis * s_inc {
                            stable[i] = inc;
                            suppressed += 1;
                        }
                    }
                    // De-duplicate while preserving order (several
                    // suppressed newcomers collapse into one incumbent).
                    let mut seen = HashSet::new();
                    target = stable.into_iter().filter(|a| seen.insert(*a)).collect();
                    target_set = target.iter().copied().collect();
                }
            }
        }

        let offload: Vec<FlowAggregate> = target
            .iter()
            .filter(|a| !offloaded.contains(a))
            .copied()
            .collect();
        let mut demote: Vec<FlowAggregate> = offloaded
            .iter()
            .filter(|a| !target_set.contains(a))
            .copied()
            .collect();
        demote.sort(); // HashSet order is nondeterministic

        self.stats = DeEpochStats {
            deltas_ingested: std::mem::take(&mut self.pending_deltas),
            entries_indexed: self.scores.len() as u64,
            scanned,
            band_crossers: (offload.len() + demote.len()) as u64,
            churn_suppressed: suppressed,
        };
        Decision {
            offload,
            demote,
            target,
        }
    }

    /// Snapshot-mode decide: [`IncrementalDecisionEngine::ingest_snapshot`]
    /// followed by [`IncrementalDecisionEngine::decide`] — the drop-in
    /// replacement for the full-scan `decide` call.
    pub fn decide_snapshot(
        &mut self,
        demands: &[AggDemand],
        offloaded: &HashSet<FlowAggregate>,
        budget: usize,
    ) -> Decision {
        self.ingest_snapshot(demands);
        self.decide(offloaded, budget)
    }
}

/// One rack's epoch input for [`ShardedDecisionEngine::decide_all`].
pub struct ShardEpoch<'a> {
    /// Changed/new demand rows for this rack.
    pub changed: &'a [AggDemand],
    /// Aggregates expired from this rack's measurement.
    pub removed: &'a [FlowAggregate],
    /// The rack's currently offloaded set.
    pub offloaded: &'a HashSet<FlowAggregate>,
    /// The rack ToR's fast-path budget.
    pub budget: usize,
}

/// Per-ToR sharded controller state: one [`IncrementalDecisionEngine`] per
/// rack, scored in parallel. Rack decisions are independent by construction
/// (per-ToR budget, per-ToR offloaded set), so the fan-out is deterministic:
/// results are returned in shard order no matter how threads interleave.
#[derive(Debug)]
pub struct ShardedDecisionEngine {
    shards: Vec<IncrementalDecisionEngine>,
}

impl ShardedDecisionEngine {
    /// One engine per ToR, all sharing the same policy config.
    pub fn new(cfg: &DeConfig, n_shards: usize) -> ShardedDecisionEngine {
        assert!(n_shards > 0, "a fleet has at least one rack");
        ShardedDecisionEngine {
            shards: (0..n_shards)
                .map(|_| IncrementalDecisionEngine::new(cfg.clone()))
                .collect(),
        }
    }

    /// Number of shards (racks).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's engine (e.g. to pre-seed or inspect it).
    pub fn shard(&self, i: usize) -> &IncrementalDecisionEngine {
        &self.shards[i]
    }

    /// Mutable access to one shard's engine.
    pub fn shard_mut(&mut self, i: usize) -> &mut IncrementalDecisionEngine {
        &mut self.shards[i]
    }

    /// Run one control epoch across every rack: ingest each shard's deltas
    /// and decide its hardware set, fanning out across OS threads when more
    /// than one shard exists. Returns decisions in shard order.
    pub fn decide_all(&mut self, epochs: &[ShardEpoch<'_>]) -> Vec<Decision> {
        assert_eq!(epochs.len(), self.shards.len(), "one epoch input per shard");
        if self.shards.len() == 1 {
            let ep = &epochs[0];
            let sh = &mut self.shards[0];
            sh.ingest(ep.changed, ep.removed);
            return vec![sh.decide(ep.offloaded, ep.budget)];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(epochs)
                .map(|(sh, ep)| {
                    scope.spawn(move || {
                        sh.ingest(ep.changed, ep.removed);
                        sh.decide(ep.offloaded, ep.budget)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard scoring thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::de::DecisionEngine;
    use fastrak_net::addr::{Ip, TenantId};

    fn agg(port: u16) -> FlowAggregate {
        FlowAggregate::DstApp {
            tenant: TenantId(1),
            ip: Ip::tenant_vm(9),
            port,
        }
    }

    fn demand(port: u16, m_pps: f64, n: u32) -> AggDemand {
        AggDemand {
            agg: agg(port),
            pps: m_pps,
            bps: m_pps * 1000.0,
            n_active: n,
            m_pps,
            m_bps: m_pps * 1000.0,
        }
    }

    /// Snapshot-mode decisions must equal the full-scan oracle's.
    fn assert_matches_oracle(
        cfg: DeConfig,
        demands: &[AggDemand],
        offloaded: &HashSet<FlowAggregate>,
        budget: usize,
    ) {
        let oracle = DecisionEngine::new(cfg.clone()).decide(demands, offloaded, budget);
        let mut inc = IncrementalDecisionEngine::new(cfg);
        let got = inc.decide_snapshot(demands, offloaded, budget);
        assert_eq!(got, oracle);
    }

    #[test]
    fn top_k_matches_oracle() {
        let demands = vec![
            demand(1, 1000.0, 2),
            demand(2, 10.0, 2),
            demand(3, 500.0, 2),
        ];
        assert_matches_oracle(DeConfig::paper(), &demands, &HashSet::new(), 2);
    }

    #[test]
    fn hysteresis_band_matches_oracle() {
        let mut cfg = DeConfig::paper();
        cfg.hysteresis = 1.5;
        let mut offloaded = HashSet::new();
        offloaded.insert(agg(2));
        let demands = vec![demand(1, 110.0, 1), demand(2, 100.0, 1)];
        assert_matches_oracle(cfg.clone(), &demands, &offloaded, 1);
        // And the band actually suppressed the churn.
        let mut inc = IncrementalDecisionEngine::new(cfg);
        let d = inc.decide_snapshot(&demands, &offloaded, 1);
        assert_eq!(d.target, vec![agg(2)], "incumbent survives the band");
        assert_eq!(inc.last_stats().churn_suppressed, 1);
        assert_eq!(inc.last_stats().band_crossers, 0);
    }

    #[test]
    fn groups_all_or_nothing_matches_oracle() {
        let mut cfg = DeConfig::paper();
        cfg.groups = vec![vec![agg(1), agg(2)]];
        let demands = vec![demand(1, 1000.0, 2), demand(2, 1.5, 2), demand(3, 500.0, 2)];
        for budget in [1usize, 2, 3] {
            assert_matches_oracle(cfg.clone(), &demands, &HashSet::new(), budget);
        }
    }

    #[test]
    fn tenant_policies_match_oracle() {
        use crate::policy::FastPathPolicy;
        use std::collections::HashMap;
        fn tagg(tenant: u32, port: u16) -> FlowAggregate {
            FlowAggregate::DstApp {
                tenant: TenantId(tenant),
                ip: Ip::tenant_vm(9),
                port,
            }
        }
        let demands: Vec<AggDemand> = (0..12u16)
            .map(|i| AggDemand {
                agg: tagg(1 + (i % 3) as u32, i),
                pps: 100.0 + 37.0 * i as f64,
                bps: 1000.0,
                n_active: 1 + (i % 4) as u32,
                m_pps: 100.0 + 37.0 * i as f64,
                m_bps: 1000.0,
            })
            .collect();
        let policies = [
            FastPathPolicy::StaticQuota {
                default_cap: 2,
                caps: HashMap::from([(TenantId(2), 1)]),
            },
            FastPathPolicy::WeightedScore {
                weights: HashMap::from([(TenantId(1), 2.0), (TenantId(3), 0.5)]),
            },
        ];
        for policy in policies {
            let mut cfg = DeConfig::paper();
            cfg.policy = policy;
            for budget in [2usize, 4, 6, 12] {
                assert_matches_oracle(cfg.clone(), &demands, &HashSet::new(), budget);
            }
        }
    }

    #[test]
    fn score_updates_move_aggregates_across_the_boundary() {
        let mut inc = IncrementalDecisionEngine::new(DeConfig::paper());
        inc.ingest(&[demand(1, 100.0, 1), demand(2, 200.0, 1)], &[]);
        let none = HashSet::new();
        let d = inc.decide(&none, 1);
        assert_eq!(d.target, vec![agg(2)]);
        // agg(1) overtakes: only a delta for agg(1) is ingested.
        inc.ingest(&[demand(1, 300.0, 1)], &[]);
        let d = inc.decide(&none, 1);
        assert_eq!(d.target, vec![agg(1)]);
        assert_eq!(inc.last_stats().deltas_ingested, 1);
        // Unchanged rows are probes, not deltas.
        inc.ingest(&[demand(1, 300.0, 1)], &[]);
        let d = inc.decide(&none, 1);
        assert_eq!(d.target, vec![agg(1)]);
        assert_eq!(inc.last_stats().deltas_ingested, 0);
    }

    #[test]
    fn removal_and_ineligibility_drop_from_index() {
        let mut cfg = DeConfig::paper();
        cfg.min_median_pps = 50.0;
        let mut inc = IncrementalDecisionEngine::new(cfg);
        inc.ingest(&[demand(1, 100.0, 1), demand(2, 90.0, 1)], &[]);
        assert_eq!(inc.len(), 2);
        // Below the pps floor: treated as a removal.
        inc.ingest(&[demand(1, 10.0, 1)], &[]);
        assert_eq!(inc.len(), 1);
        // Explicit expiry.
        inc.ingest(&[], &[agg(2)]);
        assert!(inc.is_empty());
    }

    #[test]
    fn snapshot_sweeps_absent_aggregates() {
        let mut inc = IncrementalDecisionEngine::new(DeConfig::paper());
        inc.ingest_snapshot(&[demand(1, 100.0, 1), demand(2, 90.0, 1)]);
        assert_eq!(inc.len(), 2);
        inc.ingest_snapshot(&[demand(2, 90.0, 1)]);
        assert_eq!(inc.len(), 1);
        let d = inc.decide(&HashSet::new(), 8);
        assert_eq!(d.target, vec![agg(2)]);
    }

    #[test]
    fn selection_walk_is_bounded_by_the_budget() {
        let mut inc = IncrementalDecisionEngine::new(DeConfig::paper());
        let demands: Vec<AggDemand> = (0..10_000u16)
            .map(|i| demand(i, 10.0 + i as f64, 1))
            .collect();
        inc.ingest_snapshot(&demands);
        inc.decide(&HashSet::new(), 16);
        let st = inc.last_stats();
        assert_eq!(st.entries_indexed, 10_000);
        assert!(
            st.scanned <= 17,
            "walk must touch only the top-k fringe, scanned {}",
            st.scanned
        );
    }

    #[test]
    fn sharded_fleet_matches_per_shard_serial_decides() {
        let cfg = DeConfig::paper();
        let n_shards = 4;
        let mut fleet = ShardedDecisionEngine::new(&cfg, n_shards);
        let mut solo: Vec<IncrementalDecisionEngine> = (0..n_shards)
            .map(|_| IncrementalDecisionEngine::new(cfg.clone()))
            .collect();
        let offloaded: Vec<HashSet<FlowAggregate>> =
            (0..n_shards).map(|_| HashSet::new()).collect();
        for round in 0..5u16 {
            let changed: Vec<Vec<AggDemand>> = (0..n_shards)
                .map(|s| {
                    (0..50u16)
                        .map(|i| {
                            demand(i, (1 + s as u16 + i + round) as f64 * 7.0, 1 + round as u32)
                        })
                        .collect()
                })
                .collect();
            let epochs: Vec<ShardEpoch<'_>> = (0..n_shards)
                .map(|s| ShardEpoch {
                    changed: &changed[s],
                    removed: &[],
                    offloaded: &offloaded[s],
                    budget: 8,
                })
                .collect();
            let fleet_out = fleet.decide_all(&epochs);
            for s in 0..n_shards {
                solo[s].ingest(&changed[s], &[]);
                let want = solo[s].decide(&offloaded[s], 8);
                assert_eq!(fleet_out[s], want, "shard {s} round {round}");
            }
        }
    }
}
