//! Controller-to-controller protocol (paper Fig. 8/9): local controllers
//! report network demand to their TOR controller every control interval;
//! the TOR controller broadcasts offload/demote decisions back.

use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::flow::FlowAggregate;

use crate::me::AggDemand;

/// A local controller's per-control-interval demand report (§4.3.1):
/// `<flow/flowaggregate, pps, bps, epoch#>` rows plus the median history
/// folded into each row.
#[derive(Debug, Clone)]
pub struct DemandReport {
    /// Control interval sequence number.
    pub interval: u64,
    /// Reporting server's provider IP (identifies the local controller).
    pub server_ip: Ip,
    /// Aggregate demand rows.
    pub entries: Vec<AggDemand>,
}

/// The TOR controller's decision broadcast (§4.3.2).
#[derive(Debug, Clone)]
pub struct OffloadDecision {
    /// Control interval this decision was computed in.
    pub interval: u64,
    /// Newly offloaded aggregates (ToR rules are already installed when
    /// this message is sent, so flipping placers cannot blackhole traffic).
    pub offload: Vec<FlowAggregate>,
    /// Aggregates demoted back to software (placers flip first; the ToR
    /// rules are garbage-collected after a grace period).
    pub demote: Vec<FlowAggregate>,
    /// Measured hardware-path rates per currently offloaded aggregate
    /// (bits/sec), for the local controllers' FPS rate splits.
    pub hw_agg_bps: Vec<(FlowAggregate, f64)>,
}

/// Harness-initiated VM migration preparation (S4): the TOR controller
/// demotes every aggregate touching the VM so its flows are all back in
/// software before the VM moves.
#[derive(Debug, Clone, Copy)]
pub struct MigrationPrepare {
    /// Owning tenant.
    pub tenant: TenantId,
    /// The VM about to move.
    pub vm_ip: Ip,
}

/// Local controller → TOR controller: the server's SR-IOV hardware path
/// changed liveness. Sent only on transitions (the local controller polls
/// its NIC each measurement epoch). On `up: false` the TOR controller
/// force-demotes every offloaded aggregate touching the listed VMs — their
/// express lane is dark, so the software path is strictly better — and
/// bars them from re-offload until the matching `up: true` report.
#[derive(Debug, Clone)]
pub struct HwPathReport {
    /// Reporting server's provider IP.
    pub server_ip: Ip,
    /// New liveness of the server's SR-IOV path.
    pub up: bool,
    /// The VMs hosted on that server (their `(tenant, ip)` identities),
    /// i.e. the endpoints whose hardware path this report covers.
    pub vms: Vec<(TenantId, Ip)>,
}

/// Per-VM rate limit configuration (what the tenant paid for).
#[derive(Debug, Clone, Copy)]
pub struct VmLimit {
    /// Owning tenant.
    pub tenant: TenantId,
    /// The VM.
    pub vm_ip: Ip,
    /// Total egress limit (bits/sec), if limited.
    pub egress_bps: Option<u64>,
    /// Total ingress limit (bits/sec), if limited.
    pub ingress_bps: Option<u64>,
}
