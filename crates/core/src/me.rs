//! The Measurement Engine (paper §4.3.1).
//!
//! The ME "collects statistics on packets (p) and bytes (b) observed for
//! every active flow or flow aggregate, twice within an interval of t time
//! units": Δp/t and Δb/t give pps and bps per **epoch**; epochs repeat every
//! `T` for `N` epochs, and `N` epochs form one control interval `C`. Reports
//! carry the current rates plus the historical **median pps/bps over the
//! last M control intervals**.
//!
//! Flows are folded into per-VM-per-application aggregates
//! (`<src VM IP, src L4 port, tenant>` / `<dst VM IP, dst L4 port, tenant>`)
//! to bound state. The per-VM aggregate history is the VM's **network
//! demand profile**, which ships with the VM on migration so FasTrak can
//! make offload decisions for cloned/migrated VMs immediately.

use fastrak_sim::FxHashMap;

use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::ctrl::FlowStatEntry;
use fastrak_net::flow::FlowAggregate;

use crate::meter::{self, RateWindow};

/// One aggregate's measured demand in the current report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggDemand {
    /// The aggregate.
    pub agg: FlowAggregate,
    /// Packets/sec in the most recent epoch.
    pub pps: f64,
    /// Bytes/sec in the most recent epoch.
    pub bps: f64,
    /// Epochs (of those remembered) in which the aggregate was active.
    pub n_active: u32,
    /// Median pps over the remembered epochs (N epochs × M intervals).
    pub m_pps: f64,
    /// Median bps over the remembered epochs.
    pub m_bps: f64,
}

/// One epoch's demand changes, for feeding the incremental decision engine
/// (`changed` carries new and updated rows, `removed` aggregates that aged
/// out of measurement). Both sides are sorted by aggregate so delta replay
/// is deterministic.
#[derive(Debug, Clone, Default)]
pub struct DemandDelta {
    /// Rows whose demand changed since the last drain (includes new rows).
    pub changed: Vec<AggDemand>,
    /// Aggregates dropped from measurement since the last drain.
    pub removed: Vec<FlowAggregate>,
}

#[derive(Debug, Clone, Default)]
struct AggState {
    /// Cumulative (packets, bytes) at the epoch's first sample.
    sample_a: Option<(u64, u64)>,
    /// Per-epoch pps/bps history (bounded at N×M); see [`RateWindow`] for
    /// the steady-rate change detection and the median convention.
    win: RateWindow,
    /// Demand possibly changed since the last [`MeasurementEngine::delta_report`]
    /// drain (set when an epoch push alters the history window's contents).
    dirty: bool,
}

/// The measurement engine: fed cumulative stat dumps, produces demand
/// reports.
#[derive(Debug)]
pub struct MeasurementEngine {
    /// Seconds between the two samples of one epoch (the paper's `t`).
    pub sample_gap_secs: f64,
    /// Epochs remembered: `N × M`.
    pub history_len: usize,
    aggs: FxHashMap<FlowAggregate, AggState>,
    epochs_done: u64,
    /// Aggregates marked dirty since the last `delta_report` drain (each at
    /// most once; the `AggState::dirty` flag guards against duplicates).
    dirty_list: Vec<FlowAggregate>,
    /// Aggregates dropped by the idle sweep since the last drain.
    removed_pending: Vec<FlowAggregate>,
}

impl MeasurementEngine {
    /// Build with the paper's defaults: t = 100 ms, N×M epochs of history.
    pub fn new(sample_gap_secs: f64, history_len: usize) -> MeasurementEngine {
        assert!(sample_gap_secs > 0.0 && history_len > 0);
        MeasurementEngine {
            sample_gap_secs,
            history_len,
            aggs: FxHashMap::default(),
            epochs_done: 0,
            dirty_list: Vec::new(),
            removed_pending: Vec::new(),
        }
    }

    /// Mark one aggregate's report row as changed (at most once per drain).
    fn mark_dirty(dirty_list: &mut Vec<FlowAggregate>, agg: FlowAggregate, st: &mut AggState) {
        if !st.dirty {
            st.dirty = true;
            dirty_list.push(agg);
        }
    }

    /// Fold a flow-stat dump into per-aggregate cumulative counters.
    fn fold(entries: &[FlowStatEntry]) -> FxHashMap<FlowAggregate, (u64, u64)> {
        let mut m: FxHashMap<FlowAggregate, (u64, u64)> = FxHashMap::default();
        for e in entries {
            for agg in [FlowAggregate::src_of(&e.key), FlowAggregate::dst_of(&e.key)] {
                let v = m.entry(agg).or_insert((0, 0));
                v.0 += e.packets;
                v.1 += e.bytes;
            }
        }
        m
    }

    /// First sample of an epoch (cumulative counters at epoch start).
    pub fn epoch_sample_a(&mut self, entries: &[FlowStatEntry]) {
        let folded = Self::fold(entries);
        for (agg, cum) in folded {
            self.aggs.entry(agg).or_default().sample_a = Some(cum);
        }
    }

    /// Second sample, `t` after the first: closes the epoch, computing
    /// Δp/t and Δb/t per aggregate.
    pub fn epoch_sample_b(&mut self, entries: &[FlowStatEntry]) {
        let folded = Self::fold(entries);
        self.epochs_done += 1;
        let gap = self.sample_gap_secs;
        let hist_len = self.history_len;
        // Aggregates present in this dump. An unmeasurable epoch (no
        // baseline, or the cumulative counters went backwards after a rule
        // reset — see [`meter::epoch_rates`]) pushes nothing: the window
        // keeps its history and the next sample A re-baselines.
        for (agg, cur) in &folded {
            let st = self.aggs.entry(*agg).or_default();
            if let Some((pps, bps)) = meter::epoch_rates(st.sample_a.take(), *cur, gap) {
                if st.win.push(pps, bps, hist_len) {
                    Self::mark_dirty(&mut self.dirty_list, *agg, st);
                }
            }
        }
        // Aggregates we know but which vanished from the dump: zero epoch
        // (genuinely idle — distinct from a reset, where the flow is still
        // present but its counters restarted).
        for (agg, st) in self.aggs.iter_mut() {
            if !folded.contains_key(agg) {
                st.sample_a = None;
                if st.win.push(0.0, 0.0, hist_len) {
                    Self::mark_dirty(&mut self.dirty_list, *agg, st);
                }
            }
        }
        // Drop aggregates idle across the whole remembered history. A
        // never-measured window (empty: the aggregate appeared mid-epoch and
        // was never reported) is dropped silently — no removal delta.
        let removed_pending = &mut self.removed_pending;
        self.aggs.retain(|agg, st| {
            let keep = !st.win.idle();
            if !keep && !st.win.is_empty() {
                removed_pending.push(*agg);
            }
            keep
        });
    }

    /// Number of closed epochs.
    pub fn epochs_done(&self) -> u64 {
        self.epochs_done
    }

    /// One aggregate's report row (None while no epoch has closed). The
    /// median convention (upper median on even windows) is documented on
    /// [`RateWindow`].
    fn demand_row(agg: FlowAggregate, st: &AggState) -> Option<AggDemand> {
        let s = st.win.summary()?;
        Some(AggDemand {
            agg,
            pps: s.pps,
            bps: s.bps,
            n_active: s.n_active,
            m_pps: s.m_pps,
            m_bps: s.m_bps,
        })
    }

    /// Produce the demand report (one row per active aggregate).
    pub fn report(&self) -> Vec<AggDemand> {
        let mut out = Vec::with_capacity(self.aggs.len());
        for (agg, st) in &self.aggs {
            if let Some(row) = Self::demand_row(*agg, st) {
                out.push(row);
            }
        }
        out.sort_by(|a, b| {
            b.m_pps
                .partial_cmp(&a.m_pps)
                .unwrap()
                .then_with(|| a.agg.cmp(&b.agg))
        });
        out
    }

    /// Drain the demand changes accumulated since the previous drain — the
    /// incremental decision engine's feed. Replaying every drained delta
    /// into an empty table reconstructs exactly [`MeasurementEngine::report`]
    /// (asserted by the differential suite): `changed` holds the recomputed
    /// rows of every aggregate whose window contents changed, `removed` the
    /// aggregates the idle sweep dropped. Cost is O(changed), not O(active):
    /// steady-rate aggregates whose full window evicts the value being
    /// pushed are never touched.
    pub fn delta_report(&mut self) -> DemandDelta {
        let mut changed: Vec<AggDemand> = Vec::with_capacity(self.dirty_list.len());
        for agg in std::mem::take(&mut self.dirty_list) {
            // Aggregates dropped by the idle sweep after being marked show
            // up in `removed` instead.
            if let Some(st) = self.aggs.get_mut(&agg) {
                st.dirty = false;
                if let Some(row) = Self::demand_row(agg, st) {
                    changed.push(row);
                }
            }
        }
        changed.sort_by_key(|a| a.agg);
        let mut removed = std::mem::take(&mut self.removed_pending);
        // An aggregate that aged out and came back within one drain window
        // is alive: its fresh row is in `changed`, so no removal is
        // emitted (consumers apply `changed` before `removed`).
        removed.retain(|a| !self.aggs.contains_key(a));
        removed.sort();
        removed.dedup();
        DemandDelta { changed, removed }
    }

    /// Extract the demand profile of one VM (all aggregates whose endpoint
    /// is this VM) — shipped along on VM migration (S4).
    pub fn export_profile(&self, tenant: TenantId, vm_ip: Ip) -> VmDemandProfile {
        let mut entries = Vec::new();
        for (agg, st) in &self.aggs {
            let owned = match agg {
                FlowAggregate::SrcApp { tenant: t, ip, .. }
                | FlowAggregate::DstApp { tenant: t, ip, .. } => *t == tenant && *ip == vm_ip,
                FlowAggregate::Exact(k) => {
                    k.tenant == tenant && (k.src_ip == vm_ip || k.dst_ip == vm_ip)
                }
            };
            if owned {
                entries.push((*agg, st.win.history()));
            }
        }
        VmDemandProfile {
            tenant,
            vm_ip,
            entries,
        }
    }

    /// Merge a migrated VM's demand profile into this engine's history.
    pub fn import_profile(&mut self, profile: VmDemandProfile) {
        for (agg, hist) in profile.entries {
            let st = self.aggs.entry(agg).or_default();
            if st.win.is_empty() {
                st.win = RateWindow::from_history(hist);
                if !st.win.is_empty() {
                    Self::mark_dirty(&mut self.dirty_list, agg, st);
                }
            }
        }
    }
}

/// A VM's network demand profile (paper §4.3.1): the aggregate rate history
/// that migrates with the VM.
#[derive(Debug, Clone)]
pub struct VmDemandProfile {
    /// Owning tenant.
    pub tenant: TenantId,
    /// The VM.
    pub vm_ip: Ip,
    /// Per-aggregate epoch history.
    pub entries: Vec<(FlowAggregate, Vec<(f64, f64)>)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastrak_net::flow::{FlowKey, Proto};

    fn key(src: u16, dst: u16, sp: u16, dp: u16) -> FlowKey {
        FlowKey {
            tenant: TenantId(1),
            src_ip: Ip::tenant_vm(src),
            dst_ip: Ip::tenant_vm(dst),
            proto: Proto::Tcp,
            src_port: sp,
            dst_port: dp,
        }
    }

    fn entry(k: FlowKey, p: u64, b: u64) -> FlowStatEntry {
        FlowStatEntry {
            key: k,
            packets: p,
            bytes: b,
        }
    }

    #[test]
    fn epoch_rates_from_two_samples() {
        let mut me = MeasurementEngine::new(0.1, 6);
        let k = key(1, 2, 40_000, 11211);
        me.epoch_sample_a(&[entry(k, 1000, 100_000)]);
        me.epoch_sample_b(&[entry(k, 1500, 150_000)]);
        let report = me.report();
        // One flow folds into two aggregates (src-side + dst-side).
        assert_eq!(report.len(), 2);
        for d in &report {
            assert!((d.pps - 5000.0).abs() < 1e-9, "pps {}", d.pps);
            assert!((d.bps - 500_000.0).abs() < 1e-9);
            assert_eq!(d.n_active, 1);
        }
    }

    #[test]
    fn aggregation_folds_same_service() {
        // Two client flows to the same service port fold into one DstApp.
        let mut me = MeasurementEngine::new(0.1, 6);
        let k1 = key(1, 9, 40_000, 11211);
        let k2 = key(2, 9, 40_001, 11211);
        me.epoch_sample_a(&[entry(k1, 0, 0), entry(k2, 0, 0)]);
        me.epoch_sample_b(&[entry(k1, 100, 1000), entry(k2, 300, 3000)]);
        let report = me.report();
        let dst = report
            .iter()
            .find(|d| matches!(d.agg, FlowAggregate::DstApp { port: 11211, .. }))
            .unwrap();
        assert!((dst.pps - 4000.0).abs() < 1e-9, "folded pps {}", dst.pps);
    }

    #[test]
    fn median_over_history() {
        let mut me = MeasurementEngine::new(1.0, 5);
        let k = key(1, 2, 1, 2);
        let mut cum = 0;
        for add in [100u64, 200, 300, 400, 500] {
            me.epoch_sample_a(&[entry(k, cum, cum)]);
            cum += add;
            me.epoch_sample_b(&[entry(k, cum, cum)]);
        }
        let d = me
            .report()
            .into_iter()
            .find(|d| matches!(d.agg, FlowAggregate::SrcApp { .. }))
            .unwrap();
        assert!((d.m_pps - 300.0).abs() < 1e-9, "median {}", d.m_pps);
        assert_eq!(d.n_active, 5);
        assert!((d.pps - 500.0).abs() < 1e-9);
    }

    #[test]
    fn idle_aggregates_age_out() {
        let mut me = MeasurementEngine::new(1.0, 2);
        let k = key(1, 2, 1, 2);
        me.epoch_sample_a(&[entry(k, 0, 0)]);
        me.epoch_sample_b(&[entry(k, 100, 100)]);
        // Two idle epochs (flow vanished from dumps).
        me.epoch_sample_a(&[]);
        me.epoch_sample_b(&[]);
        me.epoch_sample_a(&[]);
        me.epoch_sample_b(&[]);
        assert!(me.report().is_empty(), "idle aggregates must age out");
    }

    /// Satellite regression (ISSUE 8): a ToR rule removed and reinstalled
    /// mid-epoch restarts its cumulative counters, so sample B reads below
    /// sample A. The old `saturating_sub` turned every such epoch into a
    /// zero-rate epoch — under-scoring the hot aggregate and, with repeated
    /// resets, letting the idle age-out evict it entirely. The fix skips the
    /// unmeasurable epoch and re-baselines, so demand must not collapse.
    #[test]
    fn counter_reset_rebaselines_instead_of_collapsing() {
        let mut me = MeasurementEngine::new(1.0, 2);
        let k = key(1, 2, 40_000, 11211);
        // Two clean epochs at 1000 pps: a genuinely hot flow.
        me.epoch_sample_a(&[entry(k, 0, 0)]);
        me.epoch_sample_b(&[entry(k, 1000, 1_400_000)]);
        me.epoch_sample_a(&[entry(k, 1000, 1_400_000)]);
        me.epoch_sample_b(&[entry(k, 2000, 2_800_000)]);
        // The rule is removed and reinstalled mid-epoch twice in a row
        // (demote→re-offload churn): counters restart below the baseline.
        me.epoch_sample_a(&[entry(k, 2000, 2_800_000)]);
        me.epoch_sample_b(&[entry(k, 300, 420_000)]);
        me.epoch_sample_a(&[entry(k, 300, 420_000)]);
        me.epoch_sample_b(&[entry(k, 150, 210_000)]);
        let rep = me.report();
        assert!(
            !rep.is_empty(),
            "hot aggregate must survive counter resets (age-out evicted it)"
        );
        for d in &rep {
            assert!(d.pps >= 900.0, "last-epoch rate collapsed: {}", d.pps);
            assert!(d.m_pps >= 900.0, "median rate collapsed: {}", d.m_pps);
        }
    }

    #[test]
    fn history_bounded() {
        let mut me = MeasurementEngine::new(1.0, 3);
        let k = key(1, 2, 1, 2);
        let mut cum = 0;
        for _ in 0..10 {
            me.epoch_sample_a(&[entry(k, cum, cum)]);
            cum += 100;
            me.epoch_sample_b(&[entry(k, cum, cum)]);
        }
        let d = &me.report()[0];
        assert_eq!(d.n_active, 3, "history must be bounded at N*M");
    }

    #[test]
    fn profile_export_import_roundtrip() {
        let mut me = MeasurementEngine::new(1.0, 4);
        let k = key(7, 2, 1, 2);
        me.epoch_sample_a(&[entry(k, 0, 0)]);
        me.epoch_sample_b(&[entry(k, 1000, 9000)]);
        let profile = me.export_profile(TenantId(1), Ip::tenant_vm(7));
        assert_eq!(profile.entries.len(), 1, "src-side aggregate of vm7");

        // A fresh ME at the migration destination knows the history.
        let mut me2 = MeasurementEngine::new(1.0, 4);
        me2.import_profile(profile);
        let rep = me2.report();
        assert_eq!(rep.len(), 1);
        assert!((rep[0].m_pps - 1000.0).abs() < 1e-9);
    }

    /// Replay drained deltas into a map and compare against the full report.
    fn replay_matches_report(
        me: &mut MeasurementEngine,
        shadow: &mut FxHashMap<FlowAggregate, AggDemand>,
    ) {
        let delta = me.delta_report();
        for row in &delta.changed {
            shadow.insert(row.agg, *row);
        }
        for agg in &delta.removed {
            shadow.remove(agg);
        }
        let mut want = me.report();
        want.sort_by_key(|a| a.agg);
        let mut got: Vec<AggDemand> = shadow.values().copied().collect();
        got.sort_by_key(|a| a.agg);
        assert_eq!(got, want, "delta replay diverged from the full report");
    }

    #[test]
    fn delta_replay_reconstructs_the_report() {
        let mut me = MeasurementEngine::new(1.0, 3);
        let mut shadow = FxHashMap::default();
        let k1 = key(1, 2, 10, 20);
        let k2 = key(3, 4, 30, 40);
        let mut cum1 = 0u64;
        let mut cum2 = 0u64;
        for epoch in 0..8u64 {
            let mut dump = Vec::new();
            // k1: rate varies; k2: present only early (ages out later).
            me.epoch_sample_a(&[entry(k1, cum1, cum1), entry(k2, cum2, cum2)]);
            cum1 += 100 + 10 * (epoch % 3);
            if epoch < 3 {
                cum2 += 500;
                dump.push(entry(k2, cum2, cum2));
            }
            dump.push(entry(k1, cum1, cum1));
            me.epoch_sample_b(&dump);
            replay_matches_report(&mut me, &mut shadow);
        }
    }

    #[test]
    fn steady_rates_produce_no_deltas() {
        let mut me = MeasurementEngine::new(1.0, 3);
        let k = key(1, 2, 1, 2);
        let mut cum = 0u64;
        for _ in 0..3 {
            me.epoch_sample_a(&[entry(k, cum, cum)]);
            cum += 100;
            me.epoch_sample_b(&[entry(k, cum, cum)]);
        }
        let _ = me.delta_report(); // drain the warm-up
        for _ in 0..4 {
            me.epoch_sample_a(&[entry(k, cum, cum)]);
            cum += 100;
            me.epoch_sample_b(&[entry(k, cum, cum)]);
            let d = me.delta_report();
            assert!(
                d.changed.is_empty() && d.removed.is_empty(),
                "steady window must produce no deltas, got {d:?}"
            );
        }
    }

    #[test]
    fn aged_out_aggregates_emit_removals() {
        let mut me = MeasurementEngine::new(1.0, 2);
        let k = key(1, 2, 1, 2);
        me.epoch_sample_a(&[entry(k, 0, 0)]);
        me.epoch_sample_b(&[entry(k, 100, 100)]);
        let d = me.delta_report();
        assert_eq!(d.changed.len(), 2, "src+dst aggregates reported");
        for _ in 0..3 {
            me.epoch_sample_a(&[]);
            me.epoch_sample_b(&[]);
        }
        let d = me.delta_report();
        assert!(d.changed.is_empty());
        assert_eq!(d.removed.len(), 2, "both aggregates age out: {d:?}");
    }

    #[test]
    fn report_sorted_by_median_pps() {
        let mut me = MeasurementEngine::new(1.0, 4);
        let hot = key(1, 2, 1, 2);
        let cold = key(3, 4, 5, 6);
        me.epoch_sample_a(&[entry(hot, 0, 0), entry(cold, 0, 0)]);
        me.epoch_sample_b(&[entry(hot, 10_000, 0), entry(cold, 10, 0)]);
        let rep = me.report();
        assert!(rep[0].m_pps >= rep[rep.len() - 1].m_pps);
    }
}
