//! The unified rule manager (paper §4.3).
//!
//! FasTrak "manages the required hardware and hypervisor rules as a unified
//! set". When the decision engine offloads a flow aggregate, the rule
//! manager synthesizes "a rule that most specifically defines the policy for
//! the flow being offloaded" — possible because the controllers know every
//! tenant rule and its priority. The synthesized bundle carries the ACL
//! allow, the QoS class the tenant's policy assigns, and (implicitly, via
//! the ToR's tunnel directory) the GRE mapping.
//!
//! Safety rule: an aggregate is only offloadable when **no deny rule can
//! match any flow inside it** at a priority that would win. Otherwise
//! hardware (which holds only the synthesized allow) would pass traffic the
//! vswitch would have dropped.

use std::collections::HashMap;

use fastrak_net::addr::TenantId;
use fastrak_net::ctrl::TorRule;
use fastrak_net::flow::{FlowAggregate, FlowSpec};
use fastrak_net::rules::{Action, QosClass, RuleSet};

/// Why an aggregate could not be offloaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthesisError {
    /// A deny rule overlaps the aggregate and could win on priority.
    DenyOverlap,
}

/// Can two specs match a common flow? (Conservative: true unless a concrete
/// field conflicts.)
pub fn specs_intersect(a: &FlowSpec, b: &FlowSpec) -> bool {
    fn ok<T: PartialEq>(x: Option<T>, y: Option<T>) -> bool {
        match (x, y) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        }
    }
    ok(a.tenant, b.tenant)
        && ok(a.src_ip, b.src_ip)
        && ok(a.dst_ip, b.dst_ip)
        && ok(a.proto, b.proto)
        && ok(a.src_port, b.src_port)
        && ok(a.dst_port, b.dst_port)
}

/// The rule manager: tenant policies + synthesis.
#[derive(Debug, Default)]
pub struct RuleManager {
    policies: HashMap<TenantId, RuleSet>,
}

impl RuleManager {
    /// Empty manager (tenants default to allow-all, mirroring the
    /// default-open vswitch; the ToR stays default-deny and only passes
    /// synthesized rules).
    pub fn new() -> RuleManager {
        RuleManager::default()
    }

    /// Install a tenant's policy.
    pub fn set_policy(&mut self, tenant: TenantId, rules: RuleSet) {
        self.policies.insert(tenant, rules);
    }

    /// Access a tenant's policy.
    pub fn policy(&self, tenant: TenantId) -> Option<&RuleSet> {
        self.policies.get(&tenant)
    }

    /// The QoS class tenant policy assigns to the aggregate (the most
    /// specific QoS rule whose spec covers or intersects it).
    fn qos_for(&self, tenant: TenantId, spec: &FlowSpec) -> Option<QosClass> {
        // Use a representative: any QoS rule that *covers* the whole spec
        // applies uniformly; intersecting-but-not-covering rules would make
        // the class ambiguous, so they are ignored (conservative).
        let policy = self.policies.get(&tenant)?;
        let mut best: Option<(u16, u32, QosClass)> = None;
        for k in policy_qos(policy) {
            if k.0.covers(spec) {
                let cand = (k.1, k.0.specificity(), k.2);
                if best.is_none_or(|b| (cand.0, cand.1) > (b.0, b.1)) {
                    best = Some(cand);
                }
            }
        }
        best.map(|b| b.2)
    }

    /// Synthesize the ToR rule bundle for an offloaded aggregate.
    pub fn synthesize(
        &self,
        agg: &FlowAggregate,
        priority: u16,
    ) -> Result<TorRule, SynthesisError> {
        let tenant = agg.tenant();
        let spec = agg.to_spec();
        if let Some(policy) = self.policies.get(&tenant) {
            // A deny rule that intersects the aggregate makes hardware
            // offload unsafe: some flow inside the aggregate would have
            // been dropped by the vswitch. (An allow rule that *covers*
            // the spec with strictly higher priority than every
            // intersecting deny would be safe, but proving coverage for
            // every flow is the same intersection test, so stay simple and
            // conservative.)
            for r in policy.security_rules() {
                if r.action == Action::Deny && specs_intersect(&r.spec, &spec) {
                    let overridden = policy.security_rules().any(|a| {
                        a.action == Action::Allow
                            && a.spec.covers(&spec)
                            && (a.priority, a.spec.specificity())
                                > (r.priority, r.spec.specificity())
                    });
                    if !overridden {
                        return Err(SynthesisError::DenyOverlap);
                    }
                }
            }
        }
        Ok(TorRule {
            tenant,
            spec,
            priority,
            action: Action::Allow,
            tunnel: None, // resolved by the ToR's tunnel directory
            qos: self.qos_for(tenant, &spec),
        })
    }
}

// RuleSet does not expose its QoS rules directly; provide a tiny adapter so
// the rule manager can scan them.
fn policy_qos(rs: &RuleSet) -> Vec<(FlowSpec, u16, QosClass)> {
    rs.qos_rules()
        .map(|q| (q.spec, q.priority, q.class))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastrak_net::addr::Ip;
    use fastrak_net::rules::{QosRule, SecurityRule};

    fn agg() -> FlowAggregate {
        FlowAggregate::DstApp {
            tenant: TenantId(1),
            ip: Ip::tenant_vm(9),
            port: 11211,
        }
    }

    #[test]
    fn specs_intersection_logic() {
        let a = FlowSpec {
            tenant: Some(TenantId(1)),
            dst_port: Some(80),
            ..FlowSpec::ANY
        };
        let b = FlowSpec {
            tenant: Some(TenantId(1)),
            src_port: Some(99),
            ..FlowSpec::ANY
        };
        let c = FlowSpec {
            tenant: Some(TenantId(1)),
            dst_port: Some(81),
            ..FlowSpec::ANY
        };
        assert!(specs_intersect(&a, &b));
        assert!(!specs_intersect(&a, &c));
        assert!(specs_intersect(&FlowSpec::ANY, &a));
    }

    #[test]
    fn default_policy_synthesizes_allow() {
        let rm = RuleManager::new();
        let r = rm.synthesize(&agg(), 7).unwrap();
        assert_eq!(r.action, Action::Allow);
        assert_eq!(r.priority, 7);
        assert_eq!(r.spec, agg().to_spec());
        assert!(r.qos.is_none());
    }

    #[test]
    fn deny_overlap_blocks_offload() {
        let mut rm = RuleManager::new();
        let mut rs = RuleSet::new();
        rs.add_security(SecurityRule {
            spec: FlowSpec {
                tenant: Some(TenantId(1)),
                dst_port: Some(11211),
                ..FlowSpec::ANY
            },
            priority: 10,
            action: Action::Deny,
        });
        rm.set_policy(TenantId(1), rs);
        assert_eq!(rm.synthesize(&agg(), 7), Err(SynthesisError::DenyOverlap));
    }

    #[test]
    fn non_overlapping_deny_is_fine() {
        let mut rm = RuleManager::new();
        let mut rs = RuleSet::new();
        rs.add_security(SecurityRule {
            spec: FlowSpec {
                tenant: Some(TenantId(1)),
                dst_port: Some(22),
                ..FlowSpec::ANY
            },
            priority: 10,
            action: Action::Deny,
        });
        rm.set_policy(TenantId(1), rs);
        assert!(rm.synthesize(&agg(), 7).is_ok());
    }

    #[test]
    fn higher_priority_covering_allow_overrides_deny() {
        let mut rm = RuleManager::new();
        let mut rs = RuleSet::new();
        rs.add_security(SecurityRule {
            spec: FlowSpec::tenant(TenantId(1)),
            priority: 5,
            action: Action::Deny,
        });
        rs.add_security(SecurityRule {
            spec: FlowSpec {
                tenant: Some(TenantId(1)),
                dst_ip: Some(Ip::tenant_vm(9)),
                ..FlowSpec::ANY
            },
            priority: 20,
            action: Action::Allow,
        });
        rm.set_policy(TenantId(1), rs);
        assert!(rm.synthesize(&agg(), 7).is_ok());
    }

    #[test]
    fn qos_class_picked_from_covering_rule() {
        let mut rm = RuleManager::new();
        let mut rs = RuleSet::new();
        rs.add_qos(QosRule {
            spec: FlowSpec::tenant(TenantId(1)),
            priority: 1,
            class: QosClass(2),
        });
        rm.set_policy(TenantId(1), rs);
        let r = rm.synthesize(&agg(), 7).unwrap();
        assert_eq!(r.qos, Some(QosClass(2)));
    }
}
