//! Flow Proportional Share rate splitting (paper §4.1.4, §4.3.2).
//!
//! FasTrak exposes two interfaces per VM, so a per-VM rate limit can no
//! longer be enforced at one aggregation point. The limit `L` is split into
//! `Ls` (VIF) and `Lh` (SR-IOV VF), each padded with an **overflow
//! allowance** `O`, so `Rs = Ls + O` and `Rh = Lh + O`. The split follows
//! FPS (Raghavan et al., SIGCOMM'07): each limiter's share is proportional
//! to its measured demand; a limiter observed *maxed out* (its traffic
//! flat-lined at its limit) is treated as having more demand than measured,
//! which is exactly what the overflow headroom detects — "when the capacity
//! required on the interface is higher than the rate limit, the flows will
//! max out the rate limit imposed. FPS uses this information to re-adjust."
//!
//! Adaptation note (DESIGN.md): the original FPS weights by *flow count*
//! for TCP-fairness across sites; within one VM, demand-proportional
//! weighting with max-out escalation preserves the property that matters
//! here — the aggregate of both limiters never exceeds `L + 2O`, while each
//! side gets capacity proportional to where the traffic actually is.

/// Input to one FPS computation for one (VM, direction).
#[derive(Debug, Clone, Copy)]
pub struct FpsInput {
    /// The tenant's total limit for this VM/direction (bits/sec).
    pub limit_bps: u64,
    /// Measured software-path demand (bits/sec).
    pub sw_demand_bps: f64,
    /// Measured hardware-path demand (bits/sec).
    pub hw_demand_bps: f64,
    /// The software limiter was maxed out last interval.
    pub sw_maxed: bool,
    /// The hardware limiter was maxed out last interval.
    pub hw_maxed: bool,
}

/// Result: the two limits, overflow already included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpsSplit {
    /// VIF limit `Rs = Ls + O`.
    pub sw_bps: u64,
    /// VF limit `Rh = Lh + O`.
    pub hw_bps: u64,
}

/// FPS configuration.
#[derive(Debug, Clone, Copy)]
pub struct FpsConfig {
    /// Overflow allowance as a fraction of `L` (the paper's `O`).
    pub overflow_frac: f64,
    /// Minimum share fraction per side (keeps a cold path usable so demand
    /// can be *observed* there at all).
    pub min_share: f64,
    /// Escalation multiplier applied to the demand of a maxed-out side.
    pub maxed_boost: f64,
}

impl Default for FpsConfig {
    fn default() -> Self {
        FpsConfig {
            overflow_frac: 0.05,
            min_share: 0.05,
            maxed_boost: 1.5,
        }
    }
}

/// Compute the split.
pub fn fps_split(cfg: &FpsConfig, input: FpsInput) -> FpsSplit {
    let l = input.limit_bps as f64;
    let mut ds = input.sw_demand_bps.max(0.0);
    let mut dh = input.hw_demand_bps.max(0.0);
    if input.sw_maxed {
        ds *= cfg.maxed_boost;
    }
    if input.hw_maxed {
        dh *= cfg.maxed_boost;
    }
    let total = ds + dh;
    let share_s = if total <= 0.0 {
        0.5
    } else {
        (ds / total).clamp(cfg.min_share, 1.0 - cfg.min_share)
    };
    let overflow = l * cfg.overflow_frac;
    let ls = l * share_s;
    // The hardware side takes the remainder of the *rounded total* budget
    // rather than rounding `lh + O` independently: when both halves landed
    // on .5 boundaries, independent rounding pushed the sum to `L + 2O + 1`,
    // breaking the aggregate-limit invariant the property test pins.
    let total = (l + 2.0 * overflow).floor() as u64;
    let sw_bps = ((ls + overflow).round() as u64).min(total);
    FpsSplit {
        sw_bps,
        hw_bps: total - sw_bps,
    }
}

/// Was a limiter "maxed out"? True when the measured rate reached at least
/// `frac` of its configured limit.
pub fn is_maxed(measured_bps: f64, limit_bps: u64, frac: f64) -> bool {
    limit_bps > 0 && measured_bps >= frac * limit_bps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FpsConfig {
        FpsConfig::default()
    }

    #[test]
    fn split_proportional_to_demand() {
        let s = fps_split(
            &cfg(),
            FpsInput {
                limit_bps: 1_000_000_000,
                sw_demand_bps: 100e6,
                hw_demand_bps: 900e6,
                sw_maxed: false,
                hw_maxed: false,
            },
        );
        // hw gets ~90% + overflow.
        assert!(s.hw_bps > 900_000_000, "{s:?}");
        assert!(s.sw_bps < 200_000_000, "{s:?}");
    }

    #[test]
    fn aggregate_bounded_by_l_plus_2o() {
        let l = 1_000_000_000u64;
        for (ds, dh) in [(0.0, 0.0), (1e9, 0.0), (5e8, 5e8), (0.0, 1e9)] {
            let s = fps_split(
                &cfg(),
                FpsInput {
                    limit_bps: l,
                    sw_demand_bps: ds,
                    hw_demand_bps: dh,
                    sw_maxed: false,
                    hw_maxed: false,
                },
            );
            // Exact bound — no rounding slack (the old `+2` fudge hid a
            // double-round-up that could exceed the budget by one).
            let bound = (l as f64 * (1.0 + 2.0 * cfg().overflow_frac)) as u64;
            assert!(s.sw_bps + s.hw_bps <= bound, "{s:?} exceeds {bound}");
        }
    }

    /// Property test (ISSUE 8 satellite): across seeded random limits,
    /// demands, maxed-out escalations, and config corners, the two limits
    /// never sum past the budget `L + 2O`, and neither side starves below
    /// its min-share floor (minus rounding).
    #[test]
    fn split_invariants_hold_for_seeded_random_inputs() {
        // Deterministic xorshift64* (same shape as the de_differential rig).
        let mut state = 0xF95_5EEDu64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for case in 0..20_000u32 {
            let c = FpsConfig {
                overflow_frac: (next() % 21) as f64 * 0.01,
                min_share: (next() % 41) as f64 * 0.01,
                maxed_boost: 1.0 + (next() % 30) as f64 * 0.1,
            };
            // Odd limits matter: the double-round-up needs fractional halves.
            let limit_bps = 1 + next() % 10_000_000_000;
            let input = FpsInput {
                limit_bps,
                sw_demand_bps: (next() % (2 * limit_bps)) as f64 * 0.9,
                hw_demand_bps: (next() % (2 * limit_bps)) as f64 * 0.9,
                sw_maxed: next() % 2 == 0,
                hw_maxed: next() % 2 == 0,
            };
            let s = fps_split(&c, input);
            // The budget as the spec defines it: O = L·overflow_frac,
            // bound = L + 2O (computed with the same f64 associativity).
            let o = limit_bps as f64 * c.overflow_frac;
            let budget = (limit_bps as f64 + 2.0 * o).floor() as u64;
            assert!(
                s.sw_bps + s.hw_bps <= budget,
                "case {case}: {s:?} exceeds L+2O={budget} for {input:?} under {c:?}"
            );
            // Each side keeps at least its min-share floor of L (rounding
            // can shave at most one unit).
            let floor = (limit_bps as f64 * c.min_share.min(0.5)).floor() as u64;
            assert!(
                s.sw_bps + 1 >= floor && s.hw_bps + 1 >= floor,
                "case {case}: {s:?} starves a side below min_share {c:?}"
            );
        }
    }

    #[test]
    fn no_demand_splits_evenly() {
        let s = fps_split(
            &cfg(),
            FpsInput {
                limit_bps: 1_000_000_000,
                sw_demand_bps: 0.0,
                hw_demand_bps: 0.0,
                sw_maxed: false,
                hw_maxed: false,
            },
        );
        assert!((s.sw_bps as i64 - s.hw_bps as i64).abs() < 2);
    }

    #[test]
    fn min_share_keeps_cold_path_alive() {
        let s = fps_split(
            &cfg(),
            FpsInput {
                limit_bps: 1_000_000_000,
                sw_demand_bps: 0.0,
                hw_demand_bps: 1e9,
                sw_maxed: false,
                hw_maxed: false,
            },
        );
        assert!(s.sw_bps >= 50_000_000, "cold path keeps min share: {s:?}");
    }

    #[test]
    fn maxed_side_gains_share() {
        let base = fps_split(
            &cfg(),
            FpsInput {
                limit_bps: 1_000_000_000,
                sw_demand_bps: 500e6,
                hw_demand_bps: 500e6,
                sw_maxed: false,
                hw_maxed: false,
            },
        );
        let boosted = fps_split(
            &cfg(),
            FpsInput {
                limit_bps: 1_000_000_000,
                sw_demand_bps: 500e6,
                hw_demand_bps: 500e6,
                sw_maxed: false,
                hw_maxed: true,
            },
        );
        assert!(boosted.hw_bps > base.hw_bps);
    }

    #[test]
    fn maxed_detection() {
        assert!(is_maxed(960e6, 1_000_000_000, 0.95));
        assert!(!is_maxed(900e6, 1_000_000_000, 0.95));
        assert!(!is_maxed(1e9, 0, 0.95));
    }
}
