//! Randomized-input tests for the controller logic: the decision engine
//! respects its budget and never double-selects, FPS splits stay within the
//! paper's `L + 2O` envelope, and rule synthesis never emits a hardware
//! allow that a tenant deny would have blocked in software. Inputs come
//! from the engine's own seeded [`fastrak_sim::Rng`] for exact replay.

use std::collections::HashSet;

use fastrak::de::{DeConfig, DecisionEngine};
use fastrak::fps::{fps_split, FpsConfig, FpsInput};
use fastrak::me::AggDemand;
use fastrak::rules::{specs_intersect, RuleManager};
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::flow::{FlowAggregate, FlowSpec};
use fastrak_net::rules::{Action, RuleSet, SecurityRule};
use fastrak_sim::Rng;

const CASES: usize = 128;

fn agg(i: u32) -> FlowAggregate {
    if i.is_multiple_of(2) {
        FlowAggregate::DstApp {
            tenant: TenantId(1 + i % 4),
            ip: Ip(0x0a000000 + (i / 2)),
            port: (1000 + i % 500) as u16,
        }
    } else {
        FlowAggregate::SrcApp {
            tenant: TenantId(1 + i % 4),
            ip: Ip(0x0a000000 + (i / 2)),
            port: (1000 + i % 500) as u16,
        }
    }
}

fn arb_demand(r: &mut Rng) -> AggDemand {
    let pps = r.f64() * 100_000.0;
    AggDemand {
        agg: agg(r.below(64) as u32),
        pps,
        bps: pps * 500.0,
        n_active: r.below(7) as u32,
        m_pps: pps * 0.8,
        m_bps: pps * 400.0,
    }
}

/// The target set never exceeds the budget, contains no duplicates, and
/// offload/demote are consistent with (target, currently-offloaded).
#[test]
fn decision_respects_budget_and_consistency() {
    let mut r = Rng::new(0xDEC1);
    for _ in 0..CASES {
        let demands: Vec<AggDemand> = (0..r.below(60)).map(|_| arb_demand(&mut r)).collect();
        let offloaded: HashSet<FlowAggregate> =
            (0..r.below(20)).map(|_| agg(r.below(64) as u32)).collect();
        let budget = r.below(32) as usize;
        let de = DecisionEngine::new(DeConfig::paper());
        let d = de.decide(&demands, &offloaded, budget);
        assert!(d.target.len() <= budget, "{} > {budget}", d.target.len());
        let uniq: HashSet<_> = d.target.iter().collect();
        assert_eq!(uniq.len(), d.target.len(), "duplicates in target");
        for o in &d.offload {
            assert!(d.target.contains(o));
            assert!(!offloaded.contains(o), "offload of already-offloaded {o:?}");
        }
        for dem in &d.demote {
            assert!(offloaded.contains(dem));
            assert!(!d.target.contains(dem), "demoted {dem:?} still in target");
        }
    }
}

/// With zero hysteresis and no groups, the chosen set is exactly the
/// top-k by score among eligible demands.
#[test]
fn decision_is_top_k_by_score() {
    let mut r = Rng::new(0x709C);
    for _ in 0..CASES {
        let demands_raw: Vec<AggDemand> = (0..r.range(1, 39)).map(|_| arb_demand(&mut r)).collect();
        let budget = r.range(1, 15) as usize;
        // One demand row per aggregate (duplicates would make "top-k by
        // score" ambiguous — the engine scores rows, not aggregates).
        let mut seen = HashSet::new();
        let demands: Vec<_> = demands_raw
            .into_iter()
            .filter(|d| seen.insert(d.agg))
            .collect();
        let mut cfg = DeConfig::paper();
        cfg.hysteresis = 1.0;
        cfg.min_median_pps = 0.0;
        let de = DecisionEngine::new(cfg);
        let d = de.decide(&demands, &HashSet::new(), budget);
        // Every selected aggregate's best score >= every unselected one's.
        let ranked = de.rank(&demands);
        let selected: HashSet<_> = d.target.iter().collect();
        let min_sel = ranked
            .iter()
            .filter(|s| selected.contains(&s.agg))
            .map(|s| s.score)
            .fold(f64::INFINITY, f64::min);
        let max_unsel = ranked
            .iter()
            .filter(|s| !selected.contains(&s.agg))
            .map(|s| s.score)
            .fold(0.0, f64::max);
        if !d.target.is_empty() && d.target.len() == budget.min(ranked.len()) {
            assert!(min_sel >= max_unsel - 1e-9, "{min_sel} < {max_unsel}");
        }
    }
}

/// FPS: the sum of the two limits never exceeds L(1 + 2·overflow), and
/// each side always gets a usable minimum share.
#[test]
fn fps_envelope() {
    let mut r = Rng::new(0x0F95);
    for _ in 0..CASES * 4 {
        let limit = r.range(1_000_000, 19_999_999_999);
        let sw = r.f64() * 20e9;
        let hw = r.f64() * 20e9;
        let sw_maxed = r.chance(0.5);
        let hw_maxed = r.chance(0.5);
        let cfg = FpsConfig::default();
        let s = fps_split(
            &cfg,
            FpsInput {
                limit_bps: limit,
                sw_demand_bps: sw,
                hw_demand_bps: hw,
                sw_maxed,
                hw_maxed,
            },
        );
        let bound = limit as f64 * (1.0 + 2.0 * cfg.overflow_frac) + 2.0;
        assert!((s.sw_bps + s.hw_bps) as f64 <= bound);
        let min_each = limit as f64 * cfg.min_share; // before overflow
        assert!(s.sw_bps as f64 >= min_each, "sw starved: {s:?}");
        assert!(s.hw_bps as f64 >= min_each, "hw starved: {s:?}");
    }
}

/// Safety: if the rule manager synthesizes a hardware allow for an
/// aggregate, then no *winning* deny in the tenant policy intersects it.
#[test]
fn synthesis_never_bypasses_a_deny() {
    let mut r = Rng::new(0x5AFE);
    for _ in 0..CASES * 2 {
        let i = r.below(64) as u32;
        let deny_port = if r.chance(0.5) {
            Some(r.range(1000, 1499) as u16)
        } else {
            None
        };
        let deny_tenant = r.range(1, 4) as u32;
        let deny_prio = r.range(1, 19) as u16;
        let mut rm = RuleManager::new();
        let mut rs = RuleSet::new();
        let deny_spec = FlowSpec {
            tenant: Some(TenantId(deny_tenant)),
            dst_port: deny_port,
            ..FlowSpec::ANY
        };
        rs.add_security(SecurityRule {
            spec: deny_spec,
            priority: deny_prio,
            action: Action::Deny,
        });
        rm.set_policy(TenantId(deny_tenant), rs);
        let a = agg(i);
        match rm.synthesize(&a, 10) {
            Ok(rule) => {
                // The allow must not intersect the deny (different tenant or
                // disjoint ports).
                assert!(
                    !specs_intersect(&deny_spec, &rule.spec),
                    "allow {:?} intersects deny {:?}",
                    rule.spec,
                    deny_spec
                );
            }
            Err(_) => {
                // Refusal is always safe.
            }
        }
    }
}
