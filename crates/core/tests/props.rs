//! Property-based tests for the controller logic: the decision engine
//! respects its budget and never double-selects, FPS splits stay within the
//! paper's `L + 2O` envelope, and rule synthesis never emits a hardware
//! allow that a tenant deny would have blocked in software.

use std::collections::HashSet;

use proptest::prelude::*;

use fastrak::de::{DeConfig, DecisionEngine};
use fastrak::fps::{fps_split, FpsConfig, FpsInput};
use fastrak::me::AggDemand;
use fastrak::rules::{specs_intersect, RuleManager};
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::flow::{FlowAggregate, FlowSpec};
use fastrak_net::rules::{Action, RuleSet, SecurityRule};

fn agg(i: u32) -> FlowAggregate {
    if i % 2 == 0 {
        FlowAggregate::DstApp {
            tenant: TenantId(1 + i % 4),
            ip: Ip(0x0a000000 + (i / 2)),
            port: (1000 + i % 500) as u16,
        }
    } else {
        FlowAggregate::SrcApp {
            tenant: TenantId(1 + i % 4),
            ip: Ip(0x0a000000 + (i / 2)),
            port: (1000 + i % 500) as u16,
        }
    }
}

prop_compose! {
    fn arb_demand()(i in 0u32..64, pps in 0f64..100_000.0, n in 0u32..7) -> AggDemand {
        AggDemand {
            agg: agg(i),
            pps,
            bps: pps * 500.0,
            n_active: n,
            m_pps: pps * 0.8,
            m_bps: pps * 400.0,
        }
    }
}

proptest! {
    /// The target set never exceeds the budget, contains no duplicates, and
    /// offload/demote are consistent with (target, currently-offloaded).
    #[test]
    fn decision_respects_budget_and_consistency(
        demands in proptest::collection::vec(arb_demand(), 0..60),
        offloaded_idx in proptest::collection::vec(0u32..64, 0..20),
        budget in 0usize..32,
    ) {
        let de = DecisionEngine::new(DeConfig::paper());
        let offloaded: HashSet<FlowAggregate> = offloaded_idx.iter().map(|&i| agg(i)).collect();
        let d = de.decide(&demands, &offloaded, budget);
        prop_assert!(d.target.len() <= budget, "{} > {budget}", d.target.len());
        let uniq: HashSet<_> = d.target.iter().collect();
        prop_assert_eq!(uniq.len(), d.target.len(), "duplicates in target");
        for o in &d.offload {
            prop_assert!(d.target.contains(o));
            prop_assert!(!offloaded.contains(o), "offload of already-offloaded {o:?}");
        }
        for dem in &d.demote {
            prop_assert!(offloaded.contains(dem));
            prop_assert!(!d.target.contains(dem), "demoted {dem:?} still in target");
        }
    }

    /// With zero hysteresis and no groups, the chosen set is exactly the
    /// top-k by score among eligible demands.
    #[test]
    fn decision_is_top_k_by_score(
        demands_raw in proptest::collection::vec(arb_demand(), 1..40),
        budget in 1usize..16,
    ) {
        // One demand row per aggregate (duplicates would make "top-k by
        // score" ambiguous — the engine scores rows, not aggregates).
        let mut seen = HashSet::new();
        let demands: Vec<_> = demands_raw
            .into_iter()
            .filter(|d| seen.insert(d.agg))
            .collect();
        let mut cfg = DeConfig::paper();
        cfg.hysteresis = 1.0;
        cfg.min_median_pps = 0.0;
        let de = DecisionEngine::new(cfg);
        let d = de.decide(&demands, &HashSet::new(), budget);
        // Every selected aggregate's best score >= every unselected one's.
        let ranked = de.rank(&demands);
        let selected: HashSet<_> = d.target.iter().collect();
        let min_sel = ranked.iter().filter(|s| selected.contains(&s.agg)).map(|s| s.score)
            .fold(f64::INFINITY, f64::min);
        let max_unsel = ranked.iter().filter(|s| !selected.contains(&s.agg)).map(|s| s.score)
            .fold(0.0, f64::max);
        if !d.target.is_empty() && d.target.len() == budget.min(ranked.len()) {
            prop_assert!(min_sel >= max_unsel - 1e-9, "{min_sel} < {max_unsel}");
        }
    }

    /// FPS: the sum of the two limits never exceeds L(1 + 2·overflow), and
    /// each side always gets a usable minimum share.
    #[test]
    fn fps_envelope(
        limit in 1_000_000u64..20_000_000_000,
        sw in 0f64..20e9,
        hw in 0f64..20e9,
        sw_maxed in any::<bool>(),
        hw_maxed in any::<bool>(),
    ) {
        let cfg = FpsConfig::default();
        let s = fps_split(&cfg, FpsInput {
            limit_bps: limit,
            sw_demand_bps: sw,
            hw_demand_bps: hw,
            sw_maxed,
            hw_maxed,
        });
        let bound = limit as f64 * (1.0 + 2.0 * cfg.overflow_frac) + 2.0;
        prop_assert!((s.sw_bps + s.hw_bps) as f64 <= bound);
        let min_each = limit as f64 * cfg.min_share; // before overflow
        prop_assert!(s.sw_bps as f64 >= min_each, "sw starved: {s:?}");
        prop_assert!(s.hw_bps as f64 >= min_each, "hw starved: {s:?}");
    }

    /// Safety: if the rule manager synthesizes a hardware allow for an
    /// aggregate, then no *winning* deny in the tenant policy intersects it.
    #[test]
    fn synthesis_never_bypasses_a_deny(
        i in 0u32..64,
        deny_port in proptest::option::of(1000u16..1500),
        deny_tenant in 1u32..5,
        deny_prio in 1u16..20,
    ) {
        let mut rm = RuleManager::new();
        let mut rs = RuleSet::new();
        let deny_spec = FlowSpec {
            tenant: Some(TenantId(deny_tenant)),
            dst_port: deny_port,
            ..FlowSpec::ANY
        };
        rs.add_security(SecurityRule {
            spec: deny_spec,
            priority: deny_prio,
            action: Action::Deny,
        });
        rm.set_policy(TenantId(deny_tenant), rs);
        let a = agg(i);
        match rm.synthesize(&a, 10) {
            Ok(rule) => {
                // The allow must not intersect the deny (different tenant or
                // disjoint ports).
                prop_assert!(
                    !specs_intersect(&deny_spec, &rule.spec),
                    "allow {:?} intersects deny {:?}",
                    rule.spec,
                    deny_spec
                );
            }
            Err(_) => {
                // Refusal is always safe.
            }
        }
    }
}
