//! End-to-end controller tests: FasTrak on a live testbed, reproducing the
//! qualitative behaviour of the paper's §6.2 (automatic migration of the
//! high-pps application onto the express lane while the low-pps file
//! transfer stays in software).

use fastrak::{attach, DeConfig, FasTrakConfig, RuleManager, Timing, VmLimit};
use fastrak_host::vm::VmSpec;
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::ctrl::Dir;
use fastrak_net::flow::FlowAggregate;
use fastrak_net::packet::PathTag;
use fastrak_sim::time::SimTime;
use fastrak_workload::{
    memcached_server, FileTransfer, MemslapClient, MemslapConfig, StreamSink, Testbed,
    TestbedConfig, MEMCACHED_PORT,
};

const T: TenantId = TenantId(1);

/// Build: server 0 hosts memcached + scp source; server 1 hosts the memslap
/// client + scp sink.
fn build() -> (Testbed, fastrak_workload::VmRef, fastrak_workload::VmRef) {
    let mut bed = Testbed::build(TestbedConfig {
        n_servers: 2,
        tunneling: false,
        ..TestbedConfig::default()
    });
    let mc_ip = Ip::tenant_vm(1);
    let scp_src_ip = Ip::tenant_vm(2);
    let cli_ip = Ip::tenant_vm(3);
    let scp_dst_ip = Ip::tenant_vm(4);

    let mc = bed.add_vm(
        0,
        VmSpec::large("memcached", T, mc_ip),
        Box::new(memcached_server()),
    );
    let mut ft = FileTransfer::paper_default(scp_dst_ip, 22, 50_000);
    ft.total_bytes = 1 << 30; // 1 GB is plenty for the test horizon
    bed.add_vm(0, VmSpec::large("scp-src", T, scp_src_ip), Box::new(ft));

    let cli = bed.add_vm(
        1,
        VmSpec::large("memslap", T, cli_ip),
        Box::new(MemslapClient::new(MemslapConfig::paper(vec![mc_ip], None))),
    );
    bed.add_vm(
        1,
        VmSpec::large("scp-sink", T, scp_dst_ip),
        Box::new(StreamSink::new(22)),
    );
    (bed, mc, cli)
}

#[test]
fn offloads_high_pps_memcached_not_scp() {
    let (mut bed, mc, _cli) = build();
    let ft = attach(
        &mut bed,
        FasTrakConfig {
            timing: Timing::fine(),
            de: DeConfig {
                max_offloaded: Some(2),
                ..DeConfig::paper()
            },
            rule_manager: RuleManager::new(),
            ..Default::default()
        },
    );
    ft.start(&mut bed);
    bed.start();
    // A few control intervals (C = 1 s with fine timing).
    bed.run_until(SimTime::from_secs(5));

    let offloaded = ft.offloaded(&bed);
    assert!(
        !offloaded.is_empty(),
        "controller must offload something within 5 s"
    );
    // Every offloaded aggregate is a memcached endpoint (port 11211),
    // never the scp flow (port 22).
    for agg in offloaded {
        let port = match agg {
            FlowAggregate::SrcApp { port, .. } | FlowAggregate::DstApp { port, .. } => *port,
            FlowAggregate::Exact(k) => k.dst_port,
        };
        assert_eq!(
            port, MEMCACHED_PORT,
            "only the high-pps memcached aggregates may be offloaded, got {agg:?}"
        );
    }

    // Traffic actually moved: the memcached server's flows leave via the
    // SR-IOV VF now.
    let srv = bed.server(mc.server);
    assert!(
        srv.stats.tx_hw_frames > 1000,
        "hardware path must carry the memcached responses, hw_frames={}",
        srv.stats.tx_hw_frames
    );
    // The placer on the memcached VM agrees.
    let placed = srv
        .vm(mc.vm)
        .placer
        .current_path(&fastrak_net::flow::FlowKey {
            tenant: T,
            src_ip: mc.ip,
            dst_ip: Ip::tenant_vm(3),
            proto: fastrak_net::flow::Proto::Tcp,
            src_port: MEMCACHED_PORT,
            dst_port: 43_000,
        });
    assert_eq!(placed, PathTag::SrIov);
}

#[test]
fn migration_prepare_pulls_flows_back() {
    let (mut bed, mc, _cli) = build();
    let ft = attach(&mut bed, FasTrakConfig::default());
    ft.start(&mut bed);
    bed.start();
    bed.run_until(SimTime::from_secs(4));
    assert!(!ft.offloaded(&bed).is_empty(), "offload first");

    // Prepare migration of the memcached VM: all its aggregates demote.
    let now = bed.now();
    ft.prepare_migration(&mut bed, T, mc.ip, now);
    bed.run_until(bed.now() + fastrak_sim::time::SimDuration::from_millis(200));
    let touching: Vec<_> = ft
        .offloaded(&bed)
        .iter()
        .filter(|a| match a {
            FlowAggregate::SrcApp { ip, .. } | FlowAggregate::DstApp { ip, .. } => *ip == mc.ip,
            FlowAggregate::Exact(k) => k.src_ip == mc.ip || k.dst_ip == mc.ip,
        })
        .collect();
    assert!(
        touching.is_empty(),
        "migrating VM's aggregates must be demoted, still offloaded: {touching:?}"
    );
    // Traffic still flows (over the VIF): the client keeps completing.
    let before = bed.app::<MemslapClient>(_cli).completed();
    bed.run_until(bed.now() + fastrak_sim::time::SimDuration::from_secs(1));
    let after = bed.app::<MemslapClient>(_cli).completed();
    assert!(after > before, "traffic must continue after demotion");
}

#[test]
fn fps_splits_rate_limits_across_paths() {
    let (mut bed, mc, cli) = build();
    let limit = 2_000_000_000; // 2 Gbps egress limit on the memcached VM
    let ft = attach(
        &mut bed,
        FasTrakConfig {
            limits: vec![VmLimit {
                tenant: T,
                vm_ip: mc.ip,
                egress_bps: Some(limit),
                ingress_bps: None,
            }],
            ..Default::default()
        },
    );
    ft.start(&mut bed);
    bed.start();
    bed.run_until(SimTime::from_secs(6));

    // The local controller must have configured a split whose sum respects
    // L + 2*O.
    let lc = bed
        .kernel
        .node::<fastrak::LocalController>(ft.locals[mc.server]);
    let (sw, hw) = lc
        .split_of(mc.ip, Dir::Egress)
        .expect("a split must have been configured");
    let bound = (limit as f64 * 1.12) as u64;
    assert!(sw + hw <= bound, "sw {sw} + hw {hw} exceeds {bound}");
    // The hot (offloaded) path holds the lion's share of the limit.
    assert!(
        hw > sw,
        "demand lives on the hardware path, so FPS must favour it: sw={sw} hw={hw}"
    );
    // And the client keeps making progress under the limits.
    assert!(bed.app::<MemslapClient>(cli).completed() > 10_000);
}

#[test]
fn deterministic_offload_decisions() {
    let run = || {
        let (mut bed, _mc, cli) = build();
        let ft = attach(&mut bed, FasTrakConfig::default());
        ft.start(&mut bed);
        bed.start();
        bed.run_until(SimTime::from_secs(4));
        let mut aggs: Vec<String> = ft
            .offloaded(&bed)
            .iter()
            .map(|a| format!("{a:?}"))
            .collect();
        aggs.sort();
        (aggs, bed.app::<MemslapClient>(cli).completed())
    };
    assert_eq!(run(), run());
}
