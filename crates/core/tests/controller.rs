//! End-to-end controller tests: FasTrak on a live testbed, reproducing the
//! qualitative behaviour of the paper's §6.2 (automatic migration of the
//! high-pps application onto the express lane while the low-pps file
//! transfer stays in software).

use fastrak::{attach, DeConfig, FasTrakConfig, RuleManager, Timing, VmLimit};
use fastrak_host::vm::VmSpec;
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::ctrl::Dir;
use fastrak_net::flow::FlowAggregate;
use fastrak_net::packet::PathTag;
use fastrak_sim::time::SimTime;
use fastrak_workload::{
    memcached_server, FileTransfer, MemslapClient, MemslapConfig, StreamSink, Testbed,
    TestbedConfig, MEMCACHED_PORT,
};

const T: TenantId = TenantId(1);

/// Build: server 0 hosts memcached + scp source; server 1 hosts the memslap
/// client + scp sink.
fn build() -> (Testbed, fastrak_workload::VmRef, fastrak_workload::VmRef) {
    let mut bed = Testbed::build(TestbedConfig {
        n_servers: 2,
        tunneling: false,
        ..TestbedConfig::default()
    });
    let mc_ip = Ip::tenant_vm(1);
    let scp_src_ip = Ip::tenant_vm(2);
    let cli_ip = Ip::tenant_vm(3);
    let scp_dst_ip = Ip::tenant_vm(4);

    let mc = bed.add_vm(
        0,
        VmSpec::large("memcached", T, mc_ip),
        Box::new(memcached_server()),
    );
    let mut ft = FileTransfer::paper_default(scp_dst_ip, 22, 50_000);
    ft.total_bytes = 1 << 30; // 1 GB is plenty for the test horizon
    bed.add_vm(0, VmSpec::large("scp-src", T, scp_src_ip), Box::new(ft));

    let cli = bed.add_vm(
        1,
        VmSpec::large("memslap", T, cli_ip),
        Box::new(MemslapClient::new(MemslapConfig::paper(vec![mc_ip], None))),
    );
    bed.add_vm(
        1,
        VmSpec::large("scp-sink", T, scp_dst_ip),
        Box::new(StreamSink::new(22)),
    );
    (bed, mc, cli)
}

#[test]
fn offloads_high_pps_memcached_not_scp() {
    let (mut bed, mc, _cli) = build();
    let ft = attach(
        &mut bed,
        FasTrakConfig {
            timing: Timing::fine(),
            de: DeConfig {
                max_offloaded: Some(2),
                ..DeConfig::paper()
            },
            rule_manager: RuleManager::new(),
            ..Default::default()
        },
    );
    ft.start(&mut bed);
    bed.start();
    // A few control intervals (C = 1 s with fine timing).
    bed.run_until(SimTime::from_secs(5));

    let offloaded = ft.offloaded(&bed);
    assert!(
        !offloaded.is_empty(),
        "controller must offload something within 5 s"
    );
    // Every offloaded aggregate is a memcached endpoint (port 11211),
    // never the scp flow (port 22).
    for agg in offloaded {
        let port = match agg {
            FlowAggregate::SrcApp { port, .. } | FlowAggregate::DstApp { port, .. } => *port,
            FlowAggregate::Exact(k) => k.dst_port,
        };
        assert_eq!(
            port, MEMCACHED_PORT,
            "only the high-pps memcached aggregates may be offloaded, got {agg:?}"
        );
    }

    // Traffic actually moved: the memcached server's flows leave via the
    // SR-IOV VF now.
    let srv = bed.server(mc.server);
    assert!(
        srv.stats.tx_hw_frames > 1000,
        "hardware path must carry the memcached responses, hw_frames={}",
        srv.stats.tx_hw_frames
    );
    // The placer on the memcached VM agrees.
    let placed = srv
        .vm(mc.vm)
        .placer
        .current_path(&fastrak_net::flow::FlowKey {
            tenant: T,
            src_ip: mc.ip,
            dst_ip: Ip::tenant_vm(3),
            proto: fastrak_net::flow::Proto::Tcp,
            src_port: MEMCACHED_PORT,
            dst_port: 43_000,
        });
    assert_eq!(placed, PathTag::SrIov);
}

#[test]
fn migration_prepare_pulls_flows_back() {
    let (mut bed, mc, _cli) = build();
    let ft = attach(&mut bed, FasTrakConfig::default());
    ft.start(&mut bed);
    bed.start();
    bed.run_until(SimTime::from_secs(4));
    assert!(!ft.offloaded(&bed).is_empty(), "offload first");

    // Prepare migration of the memcached VM: all its aggregates demote.
    let now = bed.now();
    ft.prepare_migration(&mut bed, T, mc.ip, now);
    bed.run_until(bed.now() + fastrak_sim::time::SimDuration::from_millis(200));
    let touching: Vec<_> = ft
        .offloaded(&bed)
        .iter()
        .filter(|a| match a {
            FlowAggregate::SrcApp { ip, .. } | FlowAggregate::DstApp { ip, .. } => *ip == mc.ip,
            FlowAggregate::Exact(k) => k.src_ip == mc.ip || k.dst_ip == mc.ip,
        })
        .collect();
    assert!(
        touching.is_empty(),
        "migrating VM's aggregates must be demoted, still offloaded: {touching:?}"
    );
    // Traffic still flows (over the VIF): the client keeps completing.
    let before = bed.app::<MemslapClient>(_cli).completed();
    bed.run_until(bed.now() + fastrak_sim::time::SimDuration::from_secs(1));
    let after = bed.app::<MemslapClient>(_cli).completed();
    assert!(after > before, "traffic must continue after demotion");
}

#[test]
fn fps_splits_rate_limits_across_paths() {
    let (mut bed, mc, cli) = build();
    let limit = 2_000_000_000; // 2 Gbps egress limit on the memcached VM
    let ft = attach(
        &mut bed,
        FasTrakConfig {
            limits: vec![VmLimit {
                tenant: T,
                vm_ip: mc.ip,
                egress_bps: Some(limit),
                ingress_bps: None,
            }],
            ..Default::default()
        },
    );
    ft.start(&mut bed);
    bed.start();
    bed.run_until(SimTime::from_secs(6));

    // The local controller must have configured a split whose sum respects
    // L + 2*O.
    let lc = bed
        .kernel
        .node::<fastrak::LocalController>(ft.locals[mc.server]);
    let (sw, hw) = lc
        .split_of(mc.ip, Dir::Egress)
        .expect("a split must have been configured");
    let bound = (limit as f64 * 1.12) as u64;
    assert!(sw + hw <= bound, "sw {sw} + hw {hw} exceeds {bound}");
    // The hot (offloaded) path holds the lion's share of the limit.
    assert!(
        hw > sw,
        "demand lives on the hardware path, so FPS must favour it: sw={sw} hw={hw}"
    );
    // And the client keeps making progress under the limits.
    assert!(bed.app::<MemslapClient>(cli).completed() > 10_000);
}

// ---------------------------------------------------------------------------
// Control-plane fault tolerance: seeded fault injection, install
// retry/timeout/backoff, atomic ToR batches, reconciliation sweep.
// ---------------------------------------------------------------------------

use fastrak::{CtrlPlaneConfig, TorController};
use fastrak_net::ctrl::{CtrlReply, CtrlRequest, TorRule};
use fastrak_net::event::{ctl_fault_layer, duplicate_ctl_event, CtlMsg, Event, NetCtx};
use fastrak_net::flow::{FlowKey, FlowSpec, Proto};
use fastrak_net::rules::Action;
use fastrak_sim::fault::{FaultConfig, FaultLayer, LinkFaults};
use fastrak_sim::kernel::{Api, Kernel, Node, NodeId};
use fastrak_sim::time::SimDuration;
use fastrak_switch::tor::{Tor, TorConfig};

/// Classifier for [`FaultLayer`]: fault only Ack/Error control replies, so
/// install acknowledgements get lost while the periodic measurement loops
/// (stat dumps, demand reports) keep running.
fn reply_only(ev: &Event) -> bool {
    match ev {
        Event::Ctl(m) => matches!(
            m.peek::<CtrlReply>(),
            Some(CtrlReply::Ack { .. } | CtrlReply::Error { .. })
        ),
        _ => false,
    }
}

fn exact_rule(tenant: TenantId, src_port: u16) -> TorRule {
    TorRule {
        tenant,
        spec: FlowSpec::exact(FlowKey {
            tenant,
            src_ip: Ip::tenant_vm(200),
            dst_ip: Ip::tenant_vm(201),
            proto: Proto::Tcp,
            src_port,
            dst_port: 80,
        }),
        priority: 10,
        action: Action::Allow,
        tunnel: None,
        qos: None,
    }
}

/// Test node that records every control reply addressed to it.
#[derive(Default)]
struct Probe {
    replies: Vec<CtrlReply>,
}

impl Node<Event, NetCtx> for Probe {
    fn on_event(&mut self, ev: Event, _api: &mut Api<'_, Event, NetCtx>) {
        if let Event::Ctl(m) = ev {
            if let Some(r) = m.peek::<CtrlReply>() {
                self.replies.push(r.clone());
            }
        }
    }
}

/// Losing every install Ack for a window forces timeout-driven retries (and
/// eventually abandonment + re-offload); once the window lifts the
/// controller must converge with its bookkeeping matching ToR hardware.
#[test]
fn lost_install_acks_retry_until_converged() {
    let (mut bed, _mc, _cli) = build();
    let ft = attach(
        &mut bed,
        FasTrakConfig {
            timing: Timing::fine(),
            ..Default::default()
        },
    );
    bed.kernel.set_fault_layer(FaultLayer::new(
        FaultConfig {
            seed: 11,
            default_link: LinkFaults::loss(1.0),
            window: Some((SimTime::from_millis(400), SimTime::from_millis(1_500))),
            ..Default::default()
        },
        reply_only,
        duplicate_ctl_event,
    ));
    ft.start(&mut bed);
    bed.start();
    bed.run_until(SimTime::from_millis(5_300));

    // The controller's fault counters live in the telemetry registry now
    // (incremented live on the control path, no publish step needed).
    let reg = &bed.kernel.ctx.telemetry.registry;
    let timeouts = reg.counter_by_name("ctrl.install_timeouts").unwrap_or(0);
    let retries = reg.counter_by_name("ctrl.install_retries").unwrap_or(0);
    assert!(
        timeouts >= 1,
        "dropped acks must trip the install timeout, got {timeouts}"
    );
    assert!(
        retries >= 1,
        "timeouts must trigger retransmits, got {retries}"
    );
    let tc = bed.kernel.node::<TorController>(ft.tor_ctrl);
    assert!(
        !tc.offloaded().is_empty(),
        "controller must converge once the loss window lifts"
    );
    assert_eq!(
        tc.entries_used,
        bed.tor().acl_rules(),
        "controller bookkeeping must match ToR hardware after recovery"
    );
    let fp = bed.kernel.fault_plane().expect("fault plane attached");
    assert!(fp.stats.dropped >= 1, "the window must have eaten acks");
}

/// Acceptance criterion: under 5% seeded control-message loss the
/// controller converges to the same offloaded set as the fault-free run,
/// with `entries_used` equal to the ToR's installed rule count at the end.
#[test]
fn five_percent_control_loss_converges_to_fault_free_set() {
    let horizon = SimTime::from_millis(6_300);
    let run = |faults: Option<FaultConfig>| {
        let (mut bed, _mc, _cli) = build();
        // max_offloaded keeps the decision problem well-separated (the two
        // memcached aggregates win by orders of magnitude), so set equality
        // tests control-plane recovery rather than DE tie-breaking on
        // borderline aggregates under perturbed measurements.
        let ft = attach(
            &mut bed,
            FasTrakConfig {
                de: DeConfig {
                    max_offloaded: Some(2),
                    ..DeConfig::paper()
                },
                ..Default::default()
            },
        );
        if let Some(cfg) = faults {
            bed.kernel.set_fault_layer(ctl_fault_layer(cfg));
        }
        ft.start(&mut bed);
        bed.start();
        bed.run_until(horizon);
        let mut aggs: Vec<String> = ft
            .offloaded(&bed)
            .iter()
            .map(|a| format!("{a:?}"))
            .collect();
        aggs.sort();
        let tc = bed.kernel.node::<TorController>(ft.tor_ctrl);
        let dropped = bed
            .kernel
            .fault_plane()
            .map(|fp| fp.stats.dropped)
            .unwrap_or(0);
        (aggs, tc.entries_used, bed.tor().acl_rules(), dropped)
    };

    let (clean_set, clean_used, clean_hw, _) = run(None);
    let (lossy_set, lossy_used, lossy_hw, dropped) = run(Some(FaultConfig {
        seed: 23,
        default_link: LinkFaults::loss(0.05),
        ..Default::default()
    }));

    assert!(!clean_set.is_empty(), "fault-free run must offload");
    assert!(dropped > 0, "5% loss must actually drop messages");
    assert_eq!(
        lossy_set, clean_set,
        "5% control loss must converge to the fault-free offloaded set"
    );
    assert_eq!(clean_used, clean_hw, "fault-free invariant");
    assert_eq!(
        lossy_used, lossy_hw,
        "entries_used == installed ToR rules must hold under loss"
    );
}

/// A ToR install batch that dies mid-way (fast-path memory exhausted) must
/// roll back the rules it already placed: no partial state, one Error.
#[test]
fn partial_install_batch_rolls_back_at_tor() {
    let mut kernel = Kernel::new(NetCtx::new(), 1);
    let mut cfg = TorConfig::testbed("tor", 0);
    cfg.fastpath_capacity = 2;
    let tor = kernel.add_node(Tor::new(cfg));
    let probe = kernel.add_node(Probe::default());

    // Pre-existing rule occupies one of the two slots.
    let pre = exact_rule(T, 1);
    kernel.node_mut::<Tor>(tor).install_rule(&pre).unwrap();

    // Batch of three: the first already present (skipped), the second fits,
    // the third exceeds capacity — the whole batch must unwind.
    kernel.post(
        tor,
        SimTime::from_micros(10),
        Event::Ctl(CtlMsg::new(
            probe,
            CtrlRequest::InstallTorRules {
                rules: vec![exact_rule(T, 1), exact_rule(T, 2), exact_rule(T, 3)],
                xid: 7,
            },
        )),
    );
    kernel.run_until(SimTime::from_millis(5));

    let t = kernel.node::<Tor>(tor);
    assert_eq!(t.acl_rules(), 1, "failed batch must leave no residue");
    assert!(t.has_rule(T, &pre.spec), "pre-existing rule must survive");
    assert_eq!(t.fastpath_used(), 1, "usage counter must unwind too");
    let p = kernel.node::<Probe>(probe);
    assert!(
        matches!(p.replies.as_slice(), [CtrlReply::Error { xid: 7, .. }]),
        "exactly one Error reply expected, got {:?}",
        p.replies
    );
}

/// A duplicated/retransmitted install batch (same xid, same rules) is a
/// no-op at the ToR: rules are matched by identity, not installed twice.
#[test]
fn duplicate_install_batch_is_idempotent() {
    let mut kernel = Kernel::new(NetCtx::new(), 1);
    let tor = kernel.add_node(Tor::new(TorConfig::testbed("tor", 0)));
    let probe = kernel.add_node(Probe::default());

    let batch = || CtrlRequest::InstallTorRules {
        rules: vec![exact_rule(T, 1), exact_rule(T, 2)],
        xid: 9,
    };
    kernel.post(
        tor,
        SimTime::from_micros(10),
        Event::Ctl(CtlMsg::new(probe, batch())),
    );
    kernel.post(
        tor,
        SimTime::from_micros(900),
        Event::Ctl(CtlMsg::new(probe, batch())),
    );
    kernel.run_until(SimTime::from_millis(5));

    let t = kernel.node::<Tor>(tor);
    assert_eq!(t.acl_rules(), 2, "retransmit must not double-install");
    assert_eq!(t.fastpath_used(), 2);
    let p = kernel.node::<Probe>(probe);
    assert!(
        matches!(
            p.replies.as_slice(),
            [CtrlReply::Ack { xid: 9 }, CtrlReply::Ack { xid: 9 }]
        ),
        "both deliveries ack, got {:?}",
        p.replies
    );
}

/// The reconciliation sweep must delete hardware rules the controller does
/// not know about and repair a drifted `entries_used` counter.
#[test]
fn reconcile_sweep_removes_stale_rules_and_repairs_counters() {
    let (mut bed, _mc, _cli) = build();
    let ft = attach(&mut bed, FasTrakConfig::default());
    ft.start(&mut bed);
    bed.start();
    bed.run_until(SimTime::from_millis(2_050));

    // A rule the controller never installed (crashed predecessor, buggy
    // operator, bit flip — the sweep should not care how it got there).
    let stale = exact_rule(TenantId(9), 77);
    bed.tor_mut().install_rule(&stale).unwrap();
    // And simulated counter drift on the controller side.
    bed.kernel
        .node_mut::<TorController>(ft.tor_ctrl)
        .entries_used += 3;

    bed.run_until(SimTime::from_millis(3_500));

    let reg = &bed.kernel.ctx.telemetry.registry;
    assert!(
        reg.counter_by_name("ctrl.reconcile_sweeps").unwrap_or(0) >= 1,
        "sweep must have run"
    );
    assert!(
        reg.counter_by_name("ctrl.reconcile_stale_removed")
            .unwrap_or(0)
            >= 1,
        "sweep must flag the foreign rule"
    );
    assert!(
        reg.counter_by_name("ctrl.reconcile_counter_repairs")
            .unwrap_or(0)
            >= 1,
        "sweep must notice the drifted counter"
    );
    assert!(
        !bed.tor().has_rule(TenantId(9), &stale.spec),
        "stale rule must be removed from hardware"
    );
    let tc = bed.kernel.node::<TorController>(ft.tor_ctrl);
    assert_eq!(tc.entries_used, bed.tor().acl_rules());
}

/// A scripted window of hardware install failures: every batch inside it
/// gets an Error back. The controller must roll back cleanly each time,
/// suspend the hardware path after repeated failures, and re-offload once
/// the window (and cooldown) pass — ending with bookkeeping in sync.
#[test]
fn forced_install_failures_degrade_then_recover() {
    let (mut bed, _mc, _cli) = build();
    let ft = attach(
        &mut bed,
        FasTrakConfig {
            timing: Timing::fine(),
            ctrl: CtrlPlaneConfig {
                hw_failure_threshold: 2,
                hw_cooldown: SimDuration::from_millis(700),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    bed.kernel.set_fault_layer(ctl_fault_layer(FaultConfig {
        seed: 5,
        install_fail_windows: vec![(SimTime::from_millis(400), SimTime::from_millis(1_700))],
        ..Default::default()
    }));
    ft.start(&mut bed);
    bed.start();
    bed.run_until(SimTime::from_millis(5_300));

    let reg = &bed.kernel.ctx.telemetry.registry;
    let failures = reg.counter_by_name("ctrl.install_failures").unwrap_or(0);
    assert!(
        failures >= 2,
        "batches inside the window must fail, got {failures}"
    );
    assert!(
        reg.counter_by_name("ctrl.hw_suspensions").unwrap_or(0) >= 1,
        "repeated failures must suspend the hardware path"
    );
    let tc = bed.kernel.node::<TorController>(ft.tor_ctrl);
    assert!(
        !tc.offloaded().is_empty(),
        "offload must resume after the failure window"
    );
    assert_eq!(
        tc.entries_used,
        bed.tor().acl_rules(),
        "every failed batch must have been rolled back exactly"
    );
    let fp = bed.kernel.fault_plane().expect("fault plane attached");
    assert!(fp.stats.forced_install_failures >= 2);
}

// ---------------------------------------------------------------------------
// Component-level fault tolerance: scripted ToR reboots, SR-IOV VF death,
// and controller crash/restart via the chaos plane (DESIGN.md §5).
// ---------------------------------------------------------------------------

use fastrak_sim::chaos::ChaosConfig;

/// A ToR mid-reboot must reject rule installs with a definitive Error — no
/// Ack into a table about to be wiped, no phantom `entries_used` on the
/// controller, no hardware residue.
#[test]
fn tor_outage_rejects_installs_definitively() {
    let mut kernel = Kernel::new(NetCtx::new(), 1);
    let tor = kernel.add_node(Tor::new(TorConfig::testbed("tor", 0)));
    let probe = kernel.add_node(Probe::default());
    kernel.set_fault_layer(ctl_fault_layer(FaultConfig {
        seed: 3,
        chaos: ChaosConfig {
            tor_outages: vec![(tor, SimTime::from_millis(1), SimTime::from_millis(10))],
            ..ChaosConfig::default()
        },
        ..Default::default()
    }));
    kernel.post(
        tor,
        SimTime::from_millis(5),
        Event::Ctl(CtlMsg::new(
            probe,
            CtrlRequest::InstallTorRules {
                rules: vec![exact_rule(T, 1), exact_rule(T, 2)],
                xid: 4,
            },
        )),
    );
    kernel.run_until(SimTime::from_millis(20));

    let t = kernel.node::<Tor>(tor);
    assert_eq!(t.acl_rules(), 0, "no rule may survive a mid-reboot install");
    assert_eq!(t.fastpath_used(), 0, "usage counter must stay clean");
    assert_eq!(t.stats.install_batches_rejected, 1);
    let p = kernel.node::<Probe>(probe);
    assert!(
        matches!(p.replies.as_slice(), [CtrlReply::Error { xid: 4, .. }]),
        "a dark ToR must reject definitively, got {:?}",
        p.replies
    );
}

/// Full reboot cycle with liveness probes on: the probe Error marks the ToR
/// down (suspending offloads), the post-reboot probe reply carries the
/// bumped boot generation, and the controller re-baselines — re-installing
/// what the power cycle wiped, with bookkeeping drift exactly zero.
#[test]
fn tor_reboot_detected_and_reconverged_via_probes() {
    let (mut bed, _mc, _cli) = build();
    let ft = attach(
        &mut bed,
        FasTrakConfig {
            de: DeConfig {
                max_offloaded: Some(2),
                ..DeConfig::paper()
            },
            ctrl: CtrlPlaneConfig {
                probe_interval: SimDuration::from_millis(100),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    bed.kernel.set_fault_layer(ctl_fault_layer(FaultConfig {
        seed: 3,
        chaos: ChaosConfig {
            tor_outages: vec![(
                bed.tor,
                SimTime::from_millis(2_050),
                SimTime::from_millis(2_550),
            )],
            ..ChaosConfig::default()
        },
        ..Default::default()
    }));
    ft.start(&mut bed);
    bed.start();

    // Mid-outage: the dark ToR's definitive probe Error must have marked
    // the hardware path down.
    bed.run_until(SimTime::from_millis(2_400));
    assert!(
        bed.kernel
            .node::<TorController>(ft.tor_ctrl)
            .tor_believed_down(),
        "probe Error from the dark ToR must mark it down"
    );

    bed.run_until(SimTime::from_millis(6_300));
    let reg = &bed.kernel.ctx.telemetry.registry;
    assert!(
        reg.counter_by_name("ctrl.chaos.tor_reboots_seen")
            .unwrap_or(0)
            >= 1,
        "the boot-generation bump must be detected"
    );
    let tc = bed.kernel.node::<TorController>(ft.tor_ctrl);
    assert!(!tc.tor_believed_down(), "ToR must be back up");
    assert_eq!(tc.tor_generation(), 1, "one reboot observed");
    assert!(
        !tc.offloaded().is_empty(),
        "offload must resume after the reboot"
    );
    assert_eq!(
        tc.entries_used,
        bed.tor().acl_rules(),
        "re-baselining must leave zero bookkeeping drift"
    );
}

/// Satellite regression: a rule dump generated *before* a reboot must not
/// resurrect wiped rules when it straggles in afterwards — the dump's boot
/// generation gates it.
#[test]
fn stale_pre_reboot_rule_dump_is_discarded() {
    let (mut bed, _mc, _cli) = build();
    let ft = attach(
        &mut bed,
        FasTrakConfig {
            de: DeConfig {
                max_offloaded: Some(2),
                ..DeConfig::paper()
            },
            ..Default::default()
        },
    );
    bed.kernel.set_fault_layer(ctl_fault_layer(FaultConfig {
        seed: 3,
        chaos: ChaosConfig {
            tor_outages: vec![(
                bed.tor,
                SimTime::from_millis(2_050),
                SimTime::from_millis(2_550),
            )],
            ..ChaosConfig::default()
        },
        ..Default::default()
    }));
    ft.start(&mut bed);
    bed.start();
    // Converge past the reboot (generation is now 1 on both sides).
    bed.run_until(SimTime::from_millis(5_000));
    let tc = bed.kernel.node::<TorController>(ft.tor_ctrl);
    assert_eq!(tc.tor_generation(), 1, "reboot must have been observed");
    let before: Vec<String> = {
        let mut v: Vec<String> = tc.offloaded().iter().map(|a| format!("{a:?}")).collect();
        v.sort();
        v
    };

    // A pre-reboot (generation-0) dump arrives late, carrying a rule that
    // was wiped — resurrection bait the controller must refuse.
    let now = bed.now();
    bed.kernel.post(
        ft.tor_ctrl,
        now,
        Event::Ctl(CtlMsg::new(
            bed.tor,
            CtrlReply::TorRuleDump {
                xid: 0xDEAD,
                rules: vec![(T, exact_rule(T, 99).spec)],
                fastpath_used: 37,
                boot_generation: 0,
            },
        )),
    );
    // Deliver only the straggler (1 ms — no decide interval elapses, so
    // any offloaded-set change can only come from the stale dump itself).
    bed.run_until(SimTime::from_millis(5_001));

    let reg = &bed.kernel.ctx.telemetry.registry;
    assert!(
        reg.counter_by_name("ctrl.chaos.stale_dumps_discarded")
            .unwrap_or(0)
            >= 1,
        "the stale dump must be counted as discarded"
    );
    let tc = bed.kernel.node::<TorController>(ft.tor_ctrl);
    let after: Vec<String> = {
        let mut v: Vec<String> = tc.offloaded().iter().map(|a| format!("{a:?}")).collect();
        v.sort();
        v
    };
    assert_eq!(
        before, after,
        "stale dump must not change the offloaded set"
    );
    assert_eq!(
        tc.entries_used,
        bed.tor().acl_rules(),
        "stale dump must not drift the bookkeeping"
    );
}

/// SR-IOV VF death: the local controller reports the dark hardware path,
/// the TOR controller force-demotes every aggregate touching that server's
/// VMs and bars them until the path recovers, then re-offloads.
#[test]
fn vf_failure_demotes_to_software_and_recovers() {
    let (mut bed, mc, cli) = build();
    let ft = attach(
        &mut bed,
        FasTrakConfig {
            de: DeConfig {
                max_offloaded: Some(2),
                ..DeConfig::paper()
            },
            ..Default::default()
        },
    );
    bed.kernel.set_fault_layer(ctl_fault_layer(FaultConfig {
        seed: 3,
        chaos: ChaosConfig {
            vf_outages: vec![(
                bed.servers[0],
                SimTime::from_millis(2_050),
                SimTime::from_millis(4_050),
            )],
            ..ChaosConfig::default()
        },
        ..Default::default()
    }));
    ft.start(&mut bed);
    bed.start();

    // Mid-outage: nothing touching a server-0 VM may be offloaded, and the
    // client must still be making progress over the software path.
    bed.run_until(SimTime::from_millis(3_800));
    let touching: Vec<String> = ft
        .offloaded(&bed)
        .iter()
        .filter(|a| match a {
            FlowAggregate::SrcApp { ip, .. } | FlowAggregate::DstApp { ip, .. } => {
                *ip == mc.ip || *ip == Ip::tenant_vm(2)
            }
            FlowAggregate::Exact(k) => k.src_ip == mc.ip || k.dst_ip == mc.ip,
        })
        .map(|a| format!("{a:?}"))
        .collect();
    assert!(
        touching.is_empty(),
        "server-0 aggregates must be demoted while its VF is dark: {touching:?}"
    );
    let mid = bed.app::<MemslapClient>(cli).completed();
    assert!(mid > 0, "software path must keep carrying transactions");

    bed.run_until(SimTime::from_millis(7_000));
    let reg = &bed.kernel.ctx.telemetry.registry;
    assert!(
        reg.counter_by_name("ctrl.chaos.hw_path_down_demotes")
            .unwrap_or(0)
            >= 1,
        "the hw-path-down report must force demotes"
    );
    assert!(
        bed.server(0).stats.hw_path_drops > 0,
        "the dead VF must have eaten the in-flight hardware frames"
    );
    let tc = bed.kernel.node::<TorController>(ft.tor_ctrl);
    assert!(
        !tc.offloaded().is_empty(),
        "offload must resume once the VF recovers"
    );
    assert_eq!(tc.entries_used, bed.tor().acl_rules());
    let end = bed.app::<MemslapClient>(cli).completed();
    assert!(end > mid, "traffic must keep flowing after recovery");
}

/// Recovery invariant, checked across every failure class: after the fault
/// clears and the controller re-converges, its offloaded set, the ToR's
/// installed rule table, and the per-tenant policy occupancy all agree.
#[test]
fn post_recovery_state_agrees_across_all_failure_classes() {
    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }
    // (label, chaos builder) — node ids differ per run, so bind late.
    type Script = fn(NodeId, NodeId, NodeId) -> ChaosConfig;
    let scripts: [(&str, Script); 3] = [
        ("tor reboot", |tor, _s0, _ctrl| ChaosConfig {
            tor_outages: vec![(tor, ms(2_050), ms(2_550))],
            ..ChaosConfig::default()
        }),
        ("vf failure", |_tor, s0, _ctrl| ChaosConfig {
            vf_outages: vec![(s0, ms(2_050), ms(3_550))],
            ..ChaosConfig::default()
        }),
        ("controller restart", |_tor, _s0, ctrl| ChaosConfig {
            controller_restarts: vec![(ctrl, ms(2_050))],
            ..ChaosConfig::default()
        }),
    ];
    for (label, script) in scripts {
        let (mut bed, _mc, _cli) = build();
        let ft = attach(
            &mut bed,
            FasTrakConfig {
                de: DeConfig {
                    max_offloaded: Some(2),
                    ..DeConfig::paper()
                },
                ctrl: CtrlPlaneConfig {
                    probe_interval: SimDuration::from_millis(100),
                    blackhole_epochs: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        bed.kernel.set_fault_layer(ctl_fault_layer(FaultConfig {
            seed: 3,
            chaos: script(bed.tor, bed.servers[0], ft.tor_ctrl),
            ..Default::default()
        }));
        ft.start(&mut bed);
        bed.start();
        bed.run_until(SimTime::from_millis(6_500));

        let tc = bed.kernel.node::<TorController>(ft.tor_ctrl);
        assert!(!tc.offloaded().is_empty(), "{label}: must re-offload");
        assert!(!tc.is_recovering(), "{label}: recovery must complete");
        // Controller bookkeeping == hardware table size...
        assert_eq!(
            tc.entries_used,
            bed.tor().acl_rules(),
            "{label}: entries_used must match installed ToR rules"
        );
        // ...and every offloaded aggregate's rule is actually installed.
        let offloaded: Vec<_> = tc.offloaded().iter().cloned().collect();
        let n_offloaded = offloaded.len();
        for agg in offloaded {
            assert!(
                bed.tor().has_rule(agg.tenant(), &agg.to_spec()),
                "{label}: offloaded {agg:?} has no hardware rule"
            );
        }
        // ...and the policy tracker's per-tenant occupancy agrees (one
        // tenant in this bed, so its gauge is the whole set).
        ft.publish_telemetry(&mut bed);
        let occ = bed
            .kernel
            .ctx
            .telemetry
            .registry
            .gauge_by_name("ctrl.tenant.offloaded_entries{tenant=1}")
            .unwrap_or(-1.0);
        assert_eq!(
            occ, n_offloaded as f64,
            "{label}: policy occupancy must match the offloaded set"
        );
    }
}

#[test]
fn deterministic_offload_decisions() {
    let run = || {
        let (mut bed, _mc, cli) = build();
        let ft = attach(&mut bed, FasTrakConfig::default());
        ft.start(&mut bed);
        bed.start();
        bed.run_until(SimTime::from_secs(4));
        let mut aggs: Vec<String> = ft
            .offloaded(&bed)
            .iter()
            .map(|a| format!("{a:?}"))
            .collect();
        aggs.sort();
        (aggs, bed.app::<MemslapClient>(cli).completed())
    };
    assert_eq!(run(), run());
}

#[test]
fn per_tenant_telemetry_exported() {
    let (mut bed, _mc, _cli) = build();
    let ft = attach(&mut bed, FasTrakConfig::default());
    ft.start(&mut bed);
    bed.start();
    bed.run_until(SimTime::from_secs(5));
    ft.publish_telemetry(&mut bed);
    let reg = &bed.kernel.ctx.telemetry.registry;
    // The memcached workload offloads within 5 s, so tenant 1 must have
    // committed offload transitions and hold fast-path entries.
    let offloads = reg
        .counter_by_name("ctrl.tenant.offloads{tenant=1}")
        .unwrap_or(0);
    assert!(offloads >= 1, "tenant-1 offload transitions: {offloads}");
    let entries = reg
        .gauge_by_name("ctrl.tenant.offloaded_entries{tenant=1}")
        .unwrap_or(0.0);
    assert!(entries >= 1.0, "tenant-1 occupancy: {entries}");
    let share = reg
        .gauge_by_name("ctrl.tenant.occupancy_share{tenant=1}")
        .unwrap_or(0.0);
    assert!(share > 0.0 && share <= 1.0, "occupancy share: {share}");
}
