//! Differential suite: the incremental decision engine versus the retained
//! full-scan oracle (the `full-scan-de` feature routes the controller onto
//! the oracle; here both run side by side in-process).
//!
//! A seeded xorshift demand stream drives thousands of epochs through three
//! engines at once — the full-scan `DecisionEngine`, a snapshot-fed
//! `IncrementalDecisionEngine`, and a delta-fed one — with the offloaded set
//! evolving exactly as a controller would evolve it (apply each round's
//! target). Every round's `Decision` must be structurally identical across
//! all three, and replaying the same seed must be bit-identical.

use std::collections::{HashMap, HashSet};

use fastrak::{
    AggDemand, DeConfig, Decision, DecisionEngine, FastPathPolicy, IncrementalDecisionEngine,
    MeasurementEngine,
};
use fastrak_net::addr::{Ip, TenantId};
use fastrak_net::ctrl::FlowStatEntry;
use fastrak_net::flow::{FlowAggregate, FlowKey, Proto};

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
    /// Uniform float in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn agg(i: u64) -> FlowAggregate {
    FlowAggregate::DstApp {
        tenant: TenantId(1 + (i % 3) as u32),
        ip: Ip::tenant_vm(1 + (i / 7) as u16),
        port: (1 + i % 4096) as u16,
    }
}

/// Synthetic demand universe: `n` aggregates whose median rates random-walk
/// each epoch, a churn fraction appearing/disappearing, scores colliding
/// often enough to exercise the tie-breaks.
struct DemandStream {
    rng: Rng,
    rates: Vec<f64>,
    alive: Vec<bool>,
}

impl DemandStream {
    fn new(seed: u64, n: usize) -> DemandStream {
        let mut rng = Rng::new(seed);
        let rates = (0..n).map(|_| 10.0 + rng.below(1000) as f64).collect();
        DemandStream {
            rng,
            rates,
            alive: vec![true; n],
        }
    }

    /// Advance one epoch and return the full demand snapshot (engine input).
    fn tick(&mut self) -> Vec<AggDemand> {
        let n = self.rates.len();
        // ~10% of aggregates move each epoch; ~2% flip liveness.
        for _ in 0..n / 10 {
            let i = self.rng.below(n as u64) as usize;
            // Quantized moves so distinct aggregates frequently share a
            // score (ties must break deterministically).
            self.rates[i] =
                (self.rates[i] + (self.rng.below(21) as f64 - 10.0) * 25.0).clamp(0.0, 5000.0);
        }
        for _ in 0..(n / 50).max(1) {
            let i = self.rng.below(n as u64) as usize;
            self.alive[i] = !self.alive[i];
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if !self.alive[i] || self.rates[i] <= 0.0 {
                continue;
            }
            out.push(AggDemand {
                agg: agg(i as u64),
                pps: self.rates[i] * (0.9 + 0.2 * self.rng.f64()),
                bps: self.rates[i] * 800.0,
                n_active: 1 + (i % 5) as u32,
                m_pps: self.rates[i],
                m_bps: self.rates[i] * 800.0,
            });
        }
        out
    }
}

/// Diff two consecutive snapshots into the delta-feed shape.
fn diff(prev: &[AggDemand], next: &[AggDemand]) -> (Vec<AggDemand>, Vec<FlowAggregate>) {
    let prev_map: std::collections::HashMap<FlowAggregate, &AggDemand> =
        prev.iter().map(|d| (d.agg, d)).collect();
    let next_set: HashSet<FlowAggregate> = next.iter().map(|d| d.agg).collect();
    let changed: Vec<AggDemand> = next
        .iter()
        .filter(|d| prev_map.get(&d.agg).is_none_or(|p| **p != **d))
        .copied()
        .collect();
    let removed: Vec<FlowAggregate> = prev
        .iter()
        .map(|d| d.agg)
        .filter(|a| !next_set.contains(a))
        .collect();
    (changed, removed)
}

/// Drive `epochs` rounds of one config through all three engines, evolving
/// the offloaded set from each round's target; return the decision log.
fn run_differential(cfg: DeConfig, seed: u64, n: usize, epochs: usize) -> Vec<Decision> {
    let oracle = DecisionEngine::new(cfg.clone());
    let mut snap = IncrementalDecisionEngine::new(cfg.clone());
    let mut delta = IncrementalDecisionEngine::new(cfg);
    let mut stream = DemandStream::new(seed, n);
    let mut offloaded: HashSet<FlowAggregate> = HashSet::new();
    let mut prev: Vec<AggDemand> = Vec::new();
    let budget = 32;
    let mut log = Vec::with_capacity(epochs);
    for round in 0..epochs {
        let demands = stream.tick();
        let want = oracle.decide(&demands, &offloaded, budget);

        let got_snap = snap.decide_snapshot(&demands, &offloaded, budget);
        assert_eq!(got_snap, want, "snapshot-fed diverged at round {round}");

        let (changed, removed) = diff(&prev, &demands);
        delta.ingest(&changed, &removed);
        let got_delta = delta.decide(&offloaded, budget);
        assert_eq!(got_delta, want, "delta-fed diverged at round {round}");

        // Evolve the offloaded set the way the controller does.
        offloaded = want.target.iter().copied().collect();
        prev = demands;
        log.push(want);
    }
    log
}

#[test]
fn plain_config_agrees_over_thousands_of_epochs() {
    let decisions = run_differential(DeConfig::paper(), 0xFA57_0001, 400, 1200);
    // The run must actually exercise churn, not trivially empty rounds.
    assert!(decisions.iter().any(|d| !d.offload.is_empty()));
    assert!(decisions.iter().any(|d| !d.demote.is_empty()));
}

#[test]
fn hysteresis_config_agrees() {
    let mut cfg = DeConfig::paper();
    cfg.hysteresis = 2.0;
    cfg.min_median_pps = 20.0;
    let decisions = run_differential(cfg, 0xFA57_0002, 300, 1000);
    assert!(decisions.iter().any(|d| !d.offload.is_empty()));
}

#[test]
fn grouped_and_prioritized_config_agrees() {
    let mut cfg = DeConfig::paper();
    cfg.hysteresis = 1.5;
    cfg.tenant_priority.insert(TenantId(2), 3.0);
    cfg.tenant_priority.insert(TenantId(3), 0.5);
    cfg.max_offloaded = Some(24);
    // A handful of all-or-nothing groups spread over the universe.
    cfg.groups = (0..8u64)
        .map(|g| (0..4).map(|m| agg(g * 37 + m * 9)).collect())
        .collect();
    let decisions = run_differential(cfg, 0xFA57_0003, 300, 1000);
    assert!(decisions.iter().any(|d| !d.offload.is_empty()));
}

#[test]
fn static_quota_policy_agrees() {
    let mut cfg = DeConfig::paper();
    cfg.policy = FastPathPolicy::StaticQuota {
        default_cap: 8,
        caps: HashMap::from([(TenantId(2), 4)]),
    };
    let decisions = run_differential(cfg, 0xFA57_0004, 300, 1000);
    assert!(decisions.iter().any(|d| !d.offload.is_empty()));
    // The cap is enforced every round: a tenant may exceed its quota by at
    // most one entry, and only via the hysteresis incumbent-swap transient
    // (documented in `policy`). Tenants here are 1..=3 (`agg` maps i%3).
    for (round, d) in decisions.iter().enumerate() {
        let mut per_tenant: HashMap<TenantId, usize> = HashMap::new();
        for a in &d.target {
            *per_tenant.entry(a.tenant()).or_default() += 1;
        }
        for (t, n) in per_tenant {
            let cap = if t == TenantId(2) { 4 } else { 8 };
            assert!(
                n <= cap + 1,
                "round {round}: tenant {t:?} holds {n} entries, cap {cap}"
            );
        }
    }
}

#[test]
fn weighted_score_policy_agrees() {
    let mut cfg = DeConfig::paper();
    cfg.hysteresis = 1.5;
    cfg.policy = FastPathPolicy::WeightedScore {
        weights: HashMap::from([(TenantId(1), 2.0), (TenantId(3), 0.5)]),
    };
    let decisions = run_differential(cfg, 0xFA57_0005, 300, 1000);
    assert!(decisions.iter().any(|d| !d.offload.is_empty()));
    assert!(decisions.iter().any(|d| !d.demote.is_empty()));
}

#[test]
fn weighted_policy_replay_is_bit_identical() {
    let mut cfg = DeConfig::paper();
    cfg.policy = FastPathPolicy::WeightedScore {
        weights: HashMap::from([(TenantId(2), 3.0)]),
    };
    let a = run_differential(cfg.clone(), 0xFA57_0006, 250, 600);
    let b = run_differential(cfg, 0xFA57_0006, 250, 600);
    assert_eq!(a, b, "same seed must replay the same decision log");
}

#[test]
fn replay_is_bit_identical() {
    let mut cfg = DeConfig::paper();
    cfg.hysteresis = 1.8;
    let a = run_differential(cfg.clone(), 0xDEAD_BEEF, 250, 600);
    let b = run_differential(cfg, 0xDEAD_BEEF, 250, 600);
    assert_eq!(a, b, "same seed must replay the same decision log");
}

// ---------------------------------------------------------------------------
// Measurement-engine delta feed: replaying `delta_report` drains must
// reconstruct `report` exactly, over a long randomized flow-stat stream.
// ---------------------------------------------------------------------------

fn key(i: u64) -> FlowKey {
    FlowKey {
        tenant: TenantId(1 + (i % 3) as u32),
        src_ip: Ip::tenant_vm(100 + (i % 11) as u16),
        dst_ip: Ip::tenant_vm(1 + (i / 7) as u16),
        proto: Proto::Tcp,
        src_port: 40_000 + (i % 100) as u16,
        dst_port: (1 + i % 4096) as u16,
    }
}

#[test]
fn me_delta_feed_reconstructs_the_full_report() {
    let mut me = MeasurementEngine::new(0.1, 6);
    let mut rng = Rng::new(0xC0FF_EE00);
    let n_flows = 60u64;
    let mut cum: Vec<(u64, u64)> = vec![(0, 0); n_flows as usize];

    // The delta consumer's shadow table, updated changed-then-removed.
    let mut shadow: std::collections::BTreeMap<FlowAggregate, AggDemand> =
        std::collections::BTreeMap::new();

    for _round in 0..400 {
        let mut entries_a = Vec::new();
        let mut entries_b = Vec::new();
        for i in 0..n_flows {
            // Flows stall sometimes (no packet growth → zero epoch) and
            // sometimes disappear from the dump entirely.
            let present = rng.below(10) > 0;
            if !present {
                continue;
            }
            entries_a.push(FlowStatEntry {
                key: key(i),
                packets: cum[i as usize].0,
                bytes: cum[i as usize].1,
            });
            let dp = if rng.below(4) == 0 { 0 } else { rng.below(500) };
            cum[i as usize].0 += dp;
            cum[i as usize].1 += dp * 1400;
            entries_b.push(FlowStatEntry {
                key: key(i),
                packets: cum[i as usize].0,
                bytes: cum[i as usize].1,
            });
        }
        me.epoch_sample_a(&entries_a);
        me.epoch_sample_b(&entries_b);

        let delta = me.delta_report();
        for d in &delta.changed {
            shadow.insert(d.agg, *d);
        }
        for a in &delta.removed {
            shadow.remove(a);
        }

        let mut want = me.report();
        want.sort_by_key(|d| d.agg);
        let got: Vec<AggDemand> = shadow.values().copied().collect();
        assert_eq!(got, want, "delta replay drifted from the full report");
    }
}
