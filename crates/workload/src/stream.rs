//! Bulk-stream workloads — netperf `TCP_STREAM` with `TCP_NODELAY` (§3.1.1)
//! and the disk-paced file transfer used as background load (§6.1.2).
//!
//! The sender preserves application write boundaries: a 64-byte application
//! data size produces 64-byte segments (the whole point of the paper's
//! data-size sweep). Throughput is measured at the receiving sink, as
//! netperf does.

use fastrak_host::app::{GuestApi, GuestApp};
use fastrak_net::addr::Ip;
use fastrak_sim::stats::MeterRate;
use fastrak_sim::time::{SimDuration, SimTime};
use fastrak_transport::stack::{ConnId, SockEvent};

/// Keep this many writes queued per connection so the TCP stack is never
/// application-starved (netperf's threads "are not CPU limited", §3.1.1).
const QUEUE_DEPTH_WRITES: u64 = 8;

/// Configuration of a stream sender.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Destination VM tenant IP.
    pub dst: Ip,
    /// Destination port.
    pub dst_port: u16,
    /// First local source port (one per thread).
    pub src_port_base: u16,
    /// Number of connections ("netperf threads", 3 in the paper's setup).
    pub threads: usize,
    /// Application data size per write.
    pub write_size: u64,
    /// Stop after sending this many bytes in total (None = run forever).
    pub total_bytes: Option<u64>,
    /// Delay before opening connections.
    pub start_delay: SimDuration,
}

impl StreamConfig {
    /// The paper's throughput test: 3 threads, given app data size.
    pub fn netperf(dst: Ip, dst_port: u16, write_size: u64) -> StreamConfig {
        StreamConfig {
            dst,
            dst_port,
            src_port_base: 42_000,
            threads: 3,
            write_size,
            total_bytes: None,
            start_delay: SimDuration::ZERO,
        }
    }
}

/// The stream sender guest app.
pub struct StreamSender {
    cfg: StreamConfig,
    conns: Vec<ConnId>,
    /// Bytes queued to the sockets so far.
    pub queued_bytes: u64,
    /// When the configured byte total was fully acknowledged.
    pub finished_at: Option<SimTime>,
}

const TIMER_START: u64 = 1;

impl StreamSender {
    /// Build from a configuration.
    pub fn new(cfg: StreamConfig) -> StreamSender {
        StreamSender {
            cfg,
            conns: Vec::new(),
            queued_bytes: 0,
            finished_at: None,
        }
    }

    fn top_up(&mut self, api: &mut GuestApi<'_>) {
        for &conn in &self.conns {
            loop {
                if let Some(total) = self.cfg.total_bytes {
                    if self.queued_bytes >= total {
                        break;
                    }
                }
                let c = api.conn(conn);
                if !c.is_established() || c.unsent() >= QUEUE_DEPTH_WRITES * self.cfg.write_size {
                    break;
                }
                let take = match self.cfg.total_bytes {
                    Some(total) => (total - self.queued_bytes).min(self.cfg.write_size),
                    None => self.cfg.write_size,
                };
                if take == 0 || !api.send(conn, take) {
                    break;
                }
                self.queued_bytes += take;
            }
        }
        // Completion: all queued and everything acked.
        if let Some(total) = self.cfg.total_bytes {
            if self.finished_at.is_none() && self.queued_bytes >= total {
                let acked: u64 = self
                    .conns
                    .iter()
                    .map(|&c| api.conn(c).stats.bytes_acked)
                    .sum();
                if acked >= total {
                    self.finished_at = Some(api.now);
                }
            }
        }
    }
}

impl GuestApp for StreamSender {
    fn on_start(&mut self, api: &mut GuestApi<'_>) {
        if self.cfg.start_delay > SimDuration::ZERO {
            api.set_timer(self.cfg.start_delay, TIMER_START);
        } else {
            self.on_timer(TIMER_START, api);
        }
    }

    fn on_timer(&mut self, tag: u64, api: &mut GuestApi<'_>) {
        if tag == TIMER_START && self.conns.is_empty() {
            for t in 0..self.cfg.threads {
                let id = api.connect(
                    self.cfg.dst,
                    self.cfg.dst_port,
                    self.cfg.src_port_base + t as u16,
                );
                self.conns.push(id);
            }
        }
    }

    fn on_event(&mut self, ev: SockEvent, api: &mut GuestApi<'_>) {
        if matches!(ev, SockEvent::Connected(_)) {
            self.top_up(api);
        }
    }

    fn on_tx_room(&mut self, api: &mut GuestApi<'_>) {
        if !self.conns.is_empty() {
            self.top_up(api);
        }
    }
}

/// The receiving sink (netserver): counts goodput.
pub struct StreamSink {
    port: u16,
    /// Delivered-bytes meter (receiver-side goodput, like netperf reports).
    pub meter: MeterRate,
}

impl StreamSink {
    /// A sink listening on `port`.
    pub fn new(port: u16) -> StreamSink {
        StreamSink {
            port,
            meter: MeterRate::default(),
        }
    }

    /// Receiver goodput in bits/sec over the meter window.
    pub fn goodput_bps(&self, now: SimTime) -> f64 {
        self.meter.bits_per_sec(now)
    }
}

impl GuestApp for StreamSink {
    fn on_start(&mut self, api: &mut GuestApi<'_>) {
        api.listen(self.port);
    }

    fn on_event(&mut self, ev: SockEvent, _api: &mut GuestApi<'_>) {
        if let SockEvent::Delivered { bytes, .. } = ev {
            // One "event" per delivery, byte count for goodput.
            for _ in 0..1 {
                self.meter.add(bytes);
            }
        }
    }

    fn on_timer(&mut self, _tag: u64, _api: &mut GuestApi<'_>) {}
}

/// A disk-bound file transfer (the paper's scp / 4 GB background transfer,
/// §6.1.2): reads chunks at `disk_rate_bps` and streams them. Large reads +
/// TSO make this a *low packets-per-second* flow — precisely why FasTrak's
/// decision engine leaves it in software while offloading memcached (§6.2).
pub struct FileTransfer {
    /// Destination.
    pub dst: Ip,
    /// Destination port.
    pub dst_port: u16,
    /// Local source port.
    pub src_port: u16,
    /// Disk read rate (bits/sec).
    pub disk_rate_bps: u64,
    /// Chunk size per disk read (bytes).
    pub chunk: u64,
    /// Total bytes to transfer.
    pub total_bytes: u64,
    /// vCPU per chunk (disk driver + scp crypto stand-in).
    pub cpu_per_chunk: SimDuration,
    /// Delay before starting.
    pub start_delay: SimDuration,
    conn: Option<ConnId>,
    sent: u64,
    /// Completion time (all bytes acked).
    pub finished_at: Option<SimTime>,
}

const TIMER_CHUNK: u64 = 2;

impl FileTransfer {
    /// A 4 GB disk-bound transfer at ~500 Mbps in 64 KB chunks.
    pub fn paper_default(dst: Ip, dst_port: u16, src_port: u16) -> FileTransfer {
        FileTransfer {
            dst,
            dst_port,
            src_port,
            disk_rate_bps: 500_000_000,
            chunk: 64 * 1024,
            total_bytes: 4 << 30,
            cpu_per_chunk: SimDuration::from_micros(40),
            start_delay: SimDuration::ZERO,
            conn: None,
            sent: 0,
            finished_at: None,
        }
    }

    fn chunk_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.chunk as f64 * 8.0 / self.disk_rate_bps as f64)
    }

    fn send_chunk(&mut self, api: &mut GuestApi<'_>) {
        let Some(conn) = self.conn else { return };
        if self.sent >= self.total_bytes {
            // Done queueing; watch for full acknowledgement.
            if self.finished_at.is_none() {
                if api.conn(conn).stats.bytes_acked >= self.total_bytes {
                    self.finished_at = Some(api.now);
                } else {
                    api.set_timer(SimDuration::from_millis(10), TIMER_CHUNK);
                }
            }
            return;
        }
        let take = self.chunk.min(self.total_bytes - self.sent);
        if api.send(conn, take) {
            self.sent += take;
            api.burn_cpu(self.cpu_per_chunk);
        }
        // Next disk read completes one chunk-interval later.
        api.set_timer(self.chunk_interval(), TIMER_CHUNK);
    }
}

impl GuestApp for FileTransfer {
    fn on_start(&mut self, api: &mut GuestApi<'_>) {
        api.set_timer(self.start_delay, TIMER_START);
    }

    fn on_timer(&mut self, tag: u64, api: &mut GuestApi<'_>) {
        match tag {
            TIMER_START => {
                self.conn = Some(api.connect(self.dst, self.dst_port, self.src_port));
            }
            TIMER_CHUNK => self.send_chunk(api),
            _ => {}
        }
    }

    fn on_event(&mut self, ev: SockEvent, api: &mut GuestApi<'_>) {
        if let SockEvent::Connected(_) = ev {
            self.send_chunk(api);
        }
    }
}
