//! Background load generators: the IOzone filesystem benchmark and the
//! `stress` CPU hog the paper runs alongside memcached (§6.1.1) to show the
//! SR-IOV benefit persists under competing load.

use fastrak_host::app::{GuestApi, GuestApp};
use fastrak_sim::time::{SimDuration, SimTime};
use fastrak_transport::stack::SockEvent;

const TIMER_TICK: u64 = 1;

/// IOzone-like disk benchmark: periodic bursts of vCPU work (buffer cache
/// churn + IO submission) with idle gaps for disk waits.
pub struct IoZone {
    /// Tick interval.
    pub interval: SimDuration,
    /// vCPU work per tick.
    pub work_per_tick: SimDuration,
    /// Ticks executed.
    pub ticks: u64,
}

impl IoZone {
    /// Defaults: every 1 ms burn 400 µs across the pool (~0.4 vCPU).
    pub fn paper_default() -> IoZone {
        IoZone {
            interval: SimDuration::from_millis(1),
            work_per_tick: SimDuration::from_micros(400),
            ticks: 0,
        }
    }
}

impl GuestApp for IoZone {
    fn on_start(&mut self, api: &mut GuestApi<'_>) {
        api.set_timer(self.interval, TIMER_TICK);
    }

    fn on_timer(&mut self, tag: u64, api: &mut GuestApi<'_>) {
        if tag == TIMER_TICK {
            self.ticks += 1;
            api.burn_cpu(self.work_per_tick);
            api.set_timer(self.interval, TIMER_TICK);
        }
    }

    fn on_event(&mut self, _ev: SockEvent, _api: &mut GuestApi<'_>) {}
}

/// `stress`-like CPU hog: keeps `workers` vCPUs ~100% busy.
pub struct Stress {
    /// Number of spinning workers.
    pub workers: usize,
    /// Work quantum per worker per tick.
    pub quantum: SimDuration,
    started: Option<SimTime>,
}

impl Stress {
    /// A hog with the given worker count.
    pub fn new(workers: usize) -> Stress {
        Stress {
            workers,
            quantum: SimDuration::from_millis(1),
            started: None,
        }
    }
}

impl GuestApp for Stress {
    fn on_start(&mut self, api: &mut GuestApi<'_>) {
        self.started = Some(api.now);
        api.set_timer(self.quantum, TIMER_TICK);
    }

    fn on_timer(&mut self, tag: u64, api: &mut GuestApi<'_>) {
        if tag == TIMER_TICK {
            for _ in 0..self.workers {
                api.burn_cpu(self.quantum);
            }
            api.set_timer(self.quantum, TIMER_TICK);
        }
    }

    fn on_event(&mut self, _ev: SockEvent, _api: &mut GuestApi<'_>) {}
}

/// An idle application (placeholder for VMs that only receive).
pub struct Idle;

impl GuestApp for Idle {
    fn on_start(&mut self, _api: &mut GuestApi<'_>) {}
    fn on_event(&mut self, _ev: SockEvent, _api: &mut GuestApi<'_>) {}
    fn on_timer(&mut self, _tag: u64, _api: &mut GuestApi<'_>) {}
}
