//! The memcached / memslap workload (paper §6).
//!
//! The paper picks memcached as "a representative example of a
//! communication intensive application that is network bound" and drives it
//! with memslap from five client servers. A [`Memcached`] server VM is an
//! RR server on port 11211 with a small per-request service cost; a
//! [`MemslapClient`] issues fixed-size get/set transactions against a *set*
//! of memcached servers and reports the metrics the paper's tables use:
//! transactions/sec, mean latency, and the finish time of a fixed request
//! count (partition-aggregate style: the client is done only when all
//! servers' shares are done, §6.1.2).

use std::collections::VecDeque;

use fastrak_host::app::{GuestApi, GuestApp};
use fastrak_net::addr::Ip;
use fastrak_sim::stats::Histogram;
use fastrak_sim::time::{SimDuration, SimTime};
use fastrak_transport::stack::{ConnId, SockEvent};

use crate::rr::{RrServer, RrServerConfig};

/// The standard memcached port.
pub const MEMCACHED_PORT: u16 = 11211;

/// Build a memcached server app: RR on 11211, ~64 B requests, ~1 KB
/// responses, a couple of microseconds of service CPU per request.
pub fn memcached_server() -> RrServer {
    RrServer::new(RrServerConfig {
        port: MEMCACHED_PORT,
        req_size: MemslapConfig::REQ_SIZE,
        resp_size: MemslapConfig::RESP_SIZE,
        service_cpu: SimDuration::from_micros(8),
    })
}

/// Type alias: a memcached server VM runs an RR server.
pub type Memcached = RrServer;

/// memslap configuration.
#[derive(Debug, Clone)]
pub struct MemslapConfig {
    /// The memcached servers this client queries (all of them, §6.1.2).
    pub targets: Vec<Ip>,
    /// Connections per target server.
    pub conns_per_target: usize,
    /// Outstanding requests per connection (memslap concurrency).
    pub burst: usize,
    /// Total transactions to complete across all targets (None = open-ended).
    pub total_requests: Option<u64>,
    /// First local source port.
    pub src_port_base: u16,
    /// Delay before starting.
    pub start_delay: SimDuration,
}

impl MemslapConfig {
    /// memslap's default ~64 B request (key + command framing).
    pub const REQ_SIZE: u64 = 64;
    /// memslap's default 1 KB value responses.
    pub const RESP_SIZE: u64 = 1024;

    /// Paper setup: query every target, 2 connections each, closed loop
    /// per connection (the finish-time tables are latency-bound: TPS/client
    /// ≈ outstanding / latency ≈ 8 / 331 µs ≈ 24k, matching Table 2).
    pub fn paper(targets: Vec<Ip>, total_requests: Option<u64>) -> MemslapConfig {
        MemslapConfig {
            targets,
            conns_per_target: 2,
            burst: 1,
            total_requests,
            src_port_base: 43_000,
            start_delay: SimDuration::ZERO,
        }
    }
}

struct SlapConn {
    id: ConnId,
    in_flight: VecDeque<SimTime>,
    rx_accum: u64,
    /// Requests this connection may still issue (partition-aggregate: the
    /// total is split evenly per connection, so the client finishes only
    /// when its share at EVERY server is done — Table 2's key effect).
    quota: Option<u64>,
}

/// The memslap client guest app.
pub struct MemslapClient {
    cfg: MemslapConfig,
    conns: Vec<SlapConn>,
    issued: u64,
    completed: u64,
    /// Per-transaction latency histogram (ns).
    pub latency: Histogram,
    window_start: SimTime,
    window_completed_base: u64,
    /// When the configured total completed.
    pub finished_at: Option<SimTime>,
    started_at: Option<SimTime>,
}

const TIMER_START: u64 = 1;

impl MemslapClient {
    /// Build from a configuration.
    pub fn new(cfg: MemslapConfig) -> MemslapClient {
        MemslapClient {
            cfg,
            conns: Vec::new(),
            issued: 0,
            completed: 0,
            latency: Histogram::new(),
            window_start: SimTime::ZERO,
            window_completed_base: 0,
            finished_at: None,
            started_at: None,
        }
    }

    /// Transactions completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// When the client actually started issuing.
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// Restart the measurement window (after warmup).
    pub fn begin_window(&mut self, now: SimTime) {
        self.window_start = now;
        self.window_completed_base = self.completed;
        self.latency = Histogram::new();
    }

    /// Transactions per second over the window.
    pub fn tps(&self, now: SimTime) -> f64 {
        let dt = now.since(self.window_start).as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        (self.completed - self.window_completed_base) as f64 / dt
    }

    /// Elapsed run time (finish time once finished — Tables 2-4).
    pub fn finish_time(&self) -> Option<SimDuration> {
        match (self.started_at, self.finished_at) {
            (Some(s), Some(f)) => Some(f.since(s)),
            _ => None,
        }
    }

    fn maybe_issue(&mut self, ci: usize, api: &mut GuestApi<'_>) {
        loop {
            let conn = &mut self.conns[ci];
            if conn.quota == Some(0) || conn.in_flight.len() >= self.cfg.burst {
                return;
            }
            if !api.send(conn.id, MemslapConfig::REQ_SIZE) {
                return;
            }
            conn.in_flight.push_back(api.now);
            if let Some(q) = &mut conn.quota {
                *q -= 1;
            }
            self.issued += 1;
        }
    }
}

impl GuestApp for MemslapClient {
    fn on_start(&mut self, api: &mut GuestApi<'_>) {
        api.set_timer(self.cfg.start_delay, TIMER_START);
    }

    fn on_timer(&mut self, tag: u64, api: &mut GuestApi<'_>) {
        if tag == TIMER_START && self.conns.is_empty() {
            self.started_at = Some(api.now);
            let mut port = self.cfg.src_port_base;
            let targets = self.cfg.targets.clone();
            let n_conns = (targets.len() * self.cfg.conns_per_target) as u64;
            let quota = self.cfg.total_requests.map(|t| t / n_conns);
            for dst in targets {
                for _ in 0..self.cfg.conns_per_target {
                    let id = api.connect(dst, MEMCACHED_PORT, port);
                    port += 1;
                    self.conns.push(SlapConn {
                        id,
                        in_flight: VecDeque::new(),
                        rx_accum: 0,
                        quota,
                    });
                }
            }
        }
    }

    fn on_event(&mut self, ev: SockEvent, api: &mut GuestApi<'_>) {
        match ev {
            SockEvent::Connected(id) => {
                if let Some(ci) = self.conns.iter().position(|c| c.id == id) {
                    self.maybe_issue(ci, api);
                }
            }
            SockEvent::Delivered { conn, bytes } => {
                let Some(ci) = self.conns.iter().position(|c| c.id == conn) else {
                    return;
                };
                self.conns[ci].rx_accum += bytes;
                while self.conns[ci].rx_accum >= MemslapConfig::RESP_SIZE {
                    self.conns[ci].rx_accum -= MemslapConfig::RESP_SIZE;
                    let Some(t0) = self.conns[ci].in_flight.pop_front() else {
                        break;
                    };
                    self.latency.record(api.now.since(t0).as_nanos());
                    self.completed += 1;
                    if self.cfg.total_requests.is_some()
                        && self.finished_at.is_none()
                        && self
                            .conns
                            .iter()
                            .all(|c| c.quota == Some(0) && c.in_flight.is_empty())
                    {
                        self.finished_at = Some(api.now);
                    }
                }
                self.maybe_issue(ci, api);
            }
            _ => {}
        }
    }
}
