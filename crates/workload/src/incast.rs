//! Incast (partition-aggregate fan-in) workload.
//!
//! The canonical data-center pattern that stresses congestion control:
//! an aggregator queries N workers at once and each answers with a
//! response that arrives at the aggregator's single link simultaneously,
//! overflowing shallow drop-tail buffers (the memcached multi-get /
//! web-search scatter-gather pattern). A round's *flow completion time*
//! (FCT) is the gap from issuing the fan-out to receiving the last
//! response byte — the metric the `incast_matrix` experiment sweeps
//! across congestion-control variants and path placements.
//!
//! Two flow classes share the fabric, mirroring the long/short-flow mix
//! the DCTCP evaluation uses:
//!
//! * **Short flows** — one request/response per round per worker,
//!   synchronized (the incast burst proper).
//! * **Long flows** — closed-loop pipelined transfers to a subset of the
//!   workers that keep standing queues occupied, so short flows contend
//!   with built-up backlog exactly as in the paper's mixed workloads.
//!
//! When the configured round count completes the aggregator *closes*
//! every connection, exercising the full FIN/TIME_WAIT lifecycle
//! end-to-end through the stack.

use fastrak_host::app::{GuestApi, GuestApp};
use fastrak_net::addr::Ip;
use fastrak_sim::stats::Histogram;
use fastrak_sim::time::{SimDuration, SimTime};
use fastrak_transport::stack::{ConnId, SockEvent};

use crate::rr::{RrServer, RrServerConfig};

/// The port incast workers listen on.
pub const INCAST_PORT: u16 = 9000;

/// Build a worker app: an RR server answering `resp_size`-byte responses
/// to the aggregator's fixed-size requests, with a small service cost.
pub fn incast_worker(resp_size: u64) -> RrServer {
    RrServer::new(RrServerConfig {
        port: INCAST_PORT,
        req_size: IncastConfig::REQ_SIZE,
        resp_size,
        service_cpu: SimDuration::from_micros(2),
    })
}

/// Aggregator configuration.
#[derive(Debug, Clone)]
pub struct IncastConfig {
    /// Worker VM addresses (the fan-out set).
    pub workers: Vec<Ip>,
    /// Response size per worker per round.
    pub resp_size: u64,
    /// Rounds to run (None = open-ended).
    pub rounds: Option<u64>,
    /// Number of workers that additionally carry a long background flow.
    pub long_flows: usize,
    /// Outstanding transactions per long flow (pipelining depth).
    pub long_burst: usize,
    /// First local source port (short conns, then long conns).
    pub src_port_base: u16,
    /// Delay before opening connections.
    pub start_delay: SimDuration,
}

impl IncastConfig {
    /// Fixed tiny query size (a multi-get key batch).
    pub const REQ_SIZE: u64 = 32;

    /// A bare fan-in sweep cell: `fanout` workers, `resp_size` responses,
    /// no long flows.
    pub fn fan_in(workers: Vec<Ip>, resp_size: u64, rounds: u64) -> IncastConfig {
        IncastConfig {
            workers,
            resp_size,
            rounds: Some(rounds),
            long_flows: 0,
            long_burst: 4,
            src_port_base: 47_000,
            start_delay: SimDuration::ZERO,
        }
    }
}

struct ShortConn {
    id: ConnId,
    connected: bool,
    rx_accum: u64,
}

struct LongConn {
    id: ConnId,
    in_flight: usize,
    rx_accum: u64,
}

/// Aggregator guest app: synchronized fan-out rounds over short
/// connections plus continuous closed-loop load on long connections.
pub struct IncastAggregator {
    cfg: IncastConfig,
    short: Vec<ShortConn>,
    long: Vec<LongConn>,
    /// Responses still outstanding in the current round (0 = idle).
    awaiting: usize,
    round_start: SimTime,
    /// Rounds completed so far.
    pub completed_rounds: u64,
    /// Per-round flow completion time (ns samples).
    pub fct: Histogram,
    /// When the configured round count completed (connections closed).
    pub finished_at: Option<SimTime>,
    started_at: Option<SimTime>,
    closing: bool,
}

const TIMER_START: u64 = 1;

impl IncastAggregator {
    /// Build from a configuration.
    pub fn new(cfg: IncastConfig) -> IncastAggregator {
        IncastAggregator {
            cfg,
            short: Vec::new(),
            long: Vec::new(),
            awaiting: 0,
            round_start: SimTime::ZERO,
            completed_rounds: 0,
            fct: Histogram::new(),
            finished_at: None,
            started_at: None,
            closing: false,
        }
    }

    /// When the aggregator opened its connections.
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// Total run time once all rounds are done.
    pub fn finish_time(&self) -> Option<SimDuration> {
        match (self.started_at, self.finished_at) {
            (Some(s), Some(f)) => Some(f.since(s)),
            _ => None,
        }
    }

    fn start_round(&mut self, api: &mut GuestApi<'_>) {
        self.round_start = api.now;
        self.awaiting = self.short.len();
        for c in &self.short {
            // A 32B request always fits the send buffer.
            api.send(c.id, IncastConfig::REQ_SIZE);
        }
    }

    fn pump_long(&mut self, li: usize, api: &mut GuestApi<'_>) {
        if self.closing {
            return;
        }
        loop {
            let c = &mut self.long[li];
            if c.in_flight >= self.cfg.long_burst {
                return;
            }
            if !api.send(c.id, IncastConfig::REQ_SIZE) {
                return;
            }
            c.in_flight += 1;
        }
    }

    fn finish(&mut self, api: &mut GuestApi<'_>) {
        self.finished_at = Some(api.now);
        self.closing = true;
        for c in &self.short {
            api.close(c.id);
        }
        for c in &self.long {
            api.close(c.id);
        }
    }
}

impl GuestApp for IncastAggregator {
    fn on_start(&mut self, api: &mut GuestApi<'_>) {
        api.set_timer(self.cfg.start_delay, TIMER_START);
    }

    fn on_timer(&mut self, tag: u64, api: &mut GuestApi<'_>) {
        if tag == TIMER_START && self.short.is_empty() {
            self.started_at = Some(api.now);
            let mut port = self.cfg.src_port_base;
            let workers = self.cfg.workers.clone();
            for &dst in &workers {
                let id = api.connect(dst, INCAST_PORT, port);
                port += 1;
                self.short.push(ShortConn {
                    id,
                    connected: false,
                    rx_accum: 0,
                });
            }
            for &dst in workers.iter().take(self.cfg.long_flows) {
                let id = api.connect(dst, INCAST_PORT, port);
                port += 1;
                self.long.push(LongConn {
                    id,
                    in_flight: 0,
                    rx_accum: 0,
                });
            }
        }
    }

    fn on_event(&mut self, ev: SockEvent, api: &mut GuestApi<'_>) {
        match ev {
            SockEvent::Connected(id) => {
                if let Some(c) = self.short.iter_mut().find(|c| c.id == id) {
                    c.connected = true;
                    // The round fires only once the whole fan-out set is up:
                    // the burst must be synchronized to produce incast.
                    if self.awaiting == 0
                        && self.finished_at.is_none()
                        && self.short.iter().all(|c| c.connected)
                    {
                        self.start_round(api);
                    }
                } else if let Some(li) = self.long.iter().position(|c| c.id == id) {
                    self.pump_long(li, api);
                }
            }
            SockEvent::Delivered { conn, bytes } => {
                if let Some(si) = self.short.iter().position(|c| c.id == conn) {
                    self.short[si].rx_accum += bytes;
                    while self.short[si].rx_accum >= self.cfg.resp_size {
                        self.short[si].rx_accum -= self.cfg.resp_size;
                        self.awaiting = self.awaiting.saturating_sub(1);
                        if self.awaiting == 0 {
                            self.fct.record(api.now.since(self.round_start).as_nanos());
                            self.completed_rounds += 1;
                            if self.cfg.rounds.is_some_and(|r| self.completed_rounds >= r) {
                                self.finish(api);
                            } else {
                                self.start_round(api);
                            }
                        }
                    }
                } else if let Some(li) = self.long.iter().position(|c| c.id == conn) {
                    self.long[li].rx_accum += bytes;
                    while self.long[li].rx_accum >= self.cfg.resp_size {
                        self.long[li].rx_accum -= self.cfg.resp_size;
                        self.long[li].in_flight = self.long[li].in_flight.saturating_sub(1);
                    }
                    self.pump_long(li, api);
                }
            }
            _ => {}
        }
    }
}
