//! Composite guest app: runs several applications inside one VM (e.g. the
//! paper's Table-3/4 memcached VMs that also run a disk-bound 4 GB file
//! transfer, §6.1.2).
//!
//! Socket events are fanned out to every inner app (apps ignore connections
//! they do not own; `Accepted` events carry the port so servers filter).
//! App timers are namespaced in the tag's low bits so inner apps cannot
//! collide.

use fastrak_host::app::{GuestApi, GuestApp};
use fastrak_transport::stack::SockEvent;

/// Timer-tag namespace width: up to 16 inner apps.
const NS: u64 = 16;

/// A VM running several guest applications.
pub struct Composite {
    apps: Vec<Box<dyn GuestApp>>,
}

impl Composite {
    /// Compose the given apps.
    pub fn new(apps: Vec<Box<dyn GuestApp>>) -> Composite {
        assert!(
            !apps.is_empty() && apps.len() <= NS as usize,
            "composite supports 1..=16 apps"
        );
        Composite { apps }
    }

    /// Downcast inner app `idx`.
    pub fn get<T: GuestApp>(&self, idx: usize) -> &T {
        let app: &dyn std::any::Any = &*self.apps[idx];
        app.downcast_ref::<T>().expect("inner app type mismatch")
    }

    /// Mutable downcast of inner app `idx`.
    pub fn get_mut<T: GuestApp>(&mut self, idx: usize) -> &mut T {
        let app: &mut dyn std::any::Any = &mut *self.apps[idx];
        app.downcast_mut::<T>().expect("inner app type mismatch")
    }

    /// Number of inner apps.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Always false (construction requires ≥ 1 app).
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    fn dispatch(
        &mut self,
        api: &mut GuestApi<'_>,
        mut f: impl FnMut(&mut dyn GuestApp, &mut GuestApi<'_>),
    ) {
        for (idx, app) in self.apps.iter_mut().enumerate() {
            let before = api.timer_count();
            f(app.as_mut(), api);
            api.remap_new_timers(before, |tag| tag * NS + idx as u64);
        }
    }
}

impl GuestApp for Composite {
    fn on_start(&mut self, api: &mut GuestApi<'_>) {
        self.dispatch(api, |app, api| app.on_start(api));
    }

    fn on_event(&mut self, ev: SockEvent, api: &mut GuestApi<'_>) {
        self.dispatch(api, |app, api| app.on_event(ev, api));
    }

    fn on_timer(&mut self, tag: u64, api: &mut GuestApi<'_>) {
        let idx = (tag % NS) as usize;
        let inner = tag / NS;
        if idx < self.apps.len() {
            let before = api.timer_count();
            self.apps[idx].on_timer(inner, api);
            api.remap_new_timers(before, |t| t * NS + idx as u64);
        }
    }

    fn on_tx_room(&mut self, api: &mut GuestApi<'_>) {
        self.dispatch(api, |app, api| app.on_tx_room(api));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::IoZone;
    use crate::rr::{RrServer, RrServerConfig};
    use fastrak_sim::time::SimDuration;

    #[test]
    fn composes_and_downcasts() {
        let c = Composite::new(vec![
            Box::new(RrServer::new(RrServerConfig {
                port: 11211,
                req_size: 64,
                resp_size: 1024,
                service_cpu: SimDuration::ZERO,
            })),
            Box::new(IoZone::paper_default()),
        ]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get::<RrServer>(0).served, 0);
        assert_eq!(c.get::<IoZone>(1).ticks, 0);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn wrong_downcast_panics() {
        let c = Composite::new(vec![Box::new(IoZone::paper_default())]);
        let _ = c.get::<RrServer>(0);
    }
}
