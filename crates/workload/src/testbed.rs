//! Testbed builder: assembles the paper's evaluation rack (§5.1) — N
//! servers, each with two 10 Gbps links to one ToR, VMs with VIF + SR-IOV VF
//! interfaces — and wires up the static orchestration state (VLAN↔tenant
//! maps, tunnel mappings, L2/IP routes) that a cloud provisioning system
//! would install.
//!
//! The FasTrak *controllers* are deliberately not part of the testbed
//! builder: microbenchmark experiments (Figs. 3-5, Tables 1-3) run with
//! static paths, and `fastrak` (the core crate) attaches controllers on top
//! for the dynamic experiments (Table 4, Fig. 12).

use fastrak_host::app::GuestApp;
use fastrak_host::server::{tags, Server, ServerConfig, PORT_HW, PORT_SW};
use fastrak_host::vm::{Vm, VmSpec};
use fastrak_host::vswitch::VswitchConfig;
use fastrak_net::addr::{Ip, TenantId, VlanId};
use fastrak_net::ctrl::{Dir, TorRule};
use fastrak_net::event::{Event, NetCtx};
use fastrak_net::flow::FlowSpec;
use fastrak_net::packet::PathTag;
use fastrak_net::rules::Action;
use fastrak_net::tunnel::TunnelMapping;
use fastrak_sim::kernel::{Kernel, NodeId};
use fastrak_sim::tbf::TokenBucket;
use fastrak_sim::time::SimTime;
use fastrak_switch::tor::{HwDest, Tor, TorConfig};

/// Testbed-wide configuration.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Number of physical servers (the paper uses 6).
    pub n_servers: usize,
    /// Enable VXLAN tunneling in every vswitch ('OVS+Tunneling').
    pub tunneling: bool,
    /// ToR fast-path rule budget.
    pub tor_fastpath_capacity: usize,
    /// RNG seed.
    pub seed: u64,
    /// Server-config template (name/IP are overridden per server).
    pub server_template: ServerConfig,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            n_servers: 6,
            tunneling: false,
            tor_fastpath_capacity: 2048,
            seed: 1,
            server_template: ServerConfig::testbed("template", Ip::UNSPECIFIED),
        }
    }
}

/// Handle to a VM placed in the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmRef {
    /// Server index.
    pub server: usize,
    /// VM index within the server.
    pub vm: usize,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Tenant IP.
    pub ip: Ip,
}

/// The assembled testbed.
pub struct Testbed {
    /// The simulation kernel.
    pub kernel: Kernel<Event, NetCtx>,
    /// The ToR node id.
    pub tor: NodeId,
    /// Server node ids, by server index.
    pub servers: Vec<NodeId>,
    vms: Vec<VmRef>,
    started: bool,
}

/// The VLAN assigned to a tenant (testbed convention).
pub fn tenant_vlan(t: TenantId) -> VlanId {
    VlanId::new(100 + (t.0 % 3900) as u16)
}

impl Testbed {
    /// Build the rack: servers wired to ToR ports `2i` (vswitch side) and
    /// `2i+1` (SR-IOV side).
    pub fn build(cfg: TestbedConfig) -> Testbed {
        let mut kernel = Kernel::new(NetCtx::new(), cfg.seed);
        let mut tor_cfg = TorConfig::testbed("tor0", 0);
        tor_cfg.fastpath_capacity = cfg.tor_fastpath_capacity;
        let tor = kernel.add_node(Tor::new(tor_cfg));

        let mut servers = Vec::new();
        for i in 0..cfg.n_servers {
            let mut scfg = cfg.server_template.clone();
            scfg.name = format!("s{i}");
            scfg.provider_ip = Ip::provider_server(0, i as u8 + 1);
            scfg.vswitch = VswitchConfig {
                tunneling: cfg.tunneling,
            };
            let id = kernel.add_node(Server::new(scfg));
            servers.push(id);
        }
        for (i, &sid) in servers.iter().enumerate() {
            let (p_sw, p_hw) = (2 * i, 2 * i + 1);
            kernel.node_mut::<Tor>(tor).wire_port(p_sw, sid, PORT_SW);
            kernel.node_mut::<Tor>(tor).wire_port(p_hw, sid, PORT_HW);
            let srv = kernel.node_mut::<Server>(sid);
            srv.attach_uplink(PORT_SW, tor, p_sw);
            srv.attach_uplink(PORT_HW, tor, p_hw);
            let provider_ip = srv.cfg.provider_ip;
            kernel.node_mut::<Tor>(tor).add_ip_route(provider_ip, p_sw);
        }
        Testbed {
            kernel,
            tor,
            servers,
            vms: Vec::new(),
            started: false,
        }
    }

    /// Place a VM on a server. Allocates its VIF + VF and registers the
    /// orchestration state (VLAN map, hardware destination, L2 route, and
    /// tunnel mappings on every other server).
    pub fn add_vm(&mut self, server: usize, spec: VmSpec, app: Box<dyn GuestApp>) -> VmRef {
        self.add_vm_tcp(
            server,
            spec,
            app,
            fastrak_transport::tcp::TcpConfig::default(),
        )
    }

    /// [`Testbed::add_vm`] with an explicit per-VM TCP configuration —
    /// how experiments select congestion control (CUBIC, DCTCP) and ECN.
    pub fn add_vm_tcp(
        &mut self,
        server: usize,
        spec: VmSpec,
        app: Box<dyn GuestApp>,
        tcp: fastrak_transport::tcp::TcpConfig,
    ) -> VmRef {
        let tenant = spec.tenant;
        let ip = spec.ip;
        let vlan = tenant_vlan(tenant);
        let sid = self.servers[server];
        let vm_idx = self
            .kernel
            .node_mut::<Server>(sid)
            .add_vm(Vm::with_tcp_config(spec, app, tcp), Some(vlan));
        let home_ip = self.kernel.node::<Server>(sid).cfg.provider_ip;
        let mapping = TunnelMapping {
            server_ip: home_ip,
            tor_ip: Ip::provider_tor(0),
        };
        {
            let tor = self.kernel.node_mut::<Tor>(self.tor);
            tor.map_vlan(vlan, tenant);
            tor.add_hw_dest(
                tenant,
                ip,
                HwDest {
                    port: 2 * server + 1,
                    vlan,
                },
            );
            tor.add_l2_route(tenant, ip, 2 * server);
        }
        for (i, &other) in self.servers.iter().enumerate() {
            if i != server {
                self.kernel
                    .node_mut::<Server>(other)
                    .add_tunnel_route(tenant, ip, mapping);
            }
        }
        let vref = VmRef {
            server,
            vm: vm_idx,
            tenant,
            ip,
        };
        self.vms.push(vref);
        vref
    }

    /// All placed VMs.
    pub fn vms(&self) -> &[VmRef] {
        &self.vms
    }

    /// Install ToR VRF allow rules (both directions) for every VM of a
    /// tenant — the static stand-in for FasTrak's rule manager in the
    /// microbenchmark experiments where the hardware path is always on.
    pub fn authorize_hw_tenant(&mut self, tenant: TenantId) {
        let vms: Vec<VmRef> = self
            .vms
            .iter()
            .copied()
            .filter(|v| v.tenant == tenant)
            .collect();
        let tor = self.kernel.node_mut::<Tor>(self.tor);
        for v in vms {
            tor.install_rule(&TorRule {
                tenant,
                spec: FlowSpec {
                    tenant: Some(tenant),
                    dst_ip: Some(v.ip),
                    ..FlowSpec::ANY
                },
                priority: 5,
                action: Action::Allow,
                tunnel: Some(TunnelMapping {
                    server_ip: Ip::UNSPECIFIED,
                    tor_ip: Ip::provider_tor(0), // single-rack testbed
                }),
                qos: None,
            })
            .expect("ToR fast-path memory exhausted during authorize");
        }
    }

    /// Force every flow of a VM onto one path via its flow placer.
    pub fn force_path(&mut self, v: VmRef, path: PathTag) {
        let srv = self.kernel.node_mut::<Server>(self.servers[v.server]);
        srv.vm_mut(v.vm).placer.install_rule(FlowSpec::ANY, 1, path);
    }

    /// Configure a software (VIF) rate limit on a VM.
    pub fn set_vif_rate(&mut self, v: VmRef, dir: Dir, bps: u64) {
        let srv = self.kernel.node_mut::<Server>(self.servers[v.server]);
        let burst = (bps / 8 / 100).max(64_000);
        let tb = Some(TokenBucket::new(bps.max(1), burst));
        match dir {
            Dir::Egress => srv.vswitch_mut().vif_rates_mut(v.vm).egress = tb,
            Dir::Ingress => srv.vswitch_mut().vif_rates_mut(v.vm).ingress = tb,
        }
    }

    /// Configure a hardware rate limit (at the ToR) for a VM.
    pub fn set_hw_rate(&mut self, v: VmRef, dir: Dir, bps: u64) {
        self.kernel
            .node_mut::<Tor>(self.tor)
            .set_hw_rate(v.tenant, v.ip, dir, bps);
    }

    /// Start all guest applications at the current simulated time.
    pub fn start(&mut self) {
        assert!(!self.started, "testbed already started");
        self.started = true;
        let now = self.kernel.now();
        for &sid in &self.servers {
            self.kernel.post(
                sid,
                now,
                Event::Timer {
                    tag: tags::START,
                    a: 0,
                    b: 0,
                },
            );
        }
    }

    /// Run the simulation to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.kernel.run_until(t);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Immutable server access.
    pub fn server(&self, idx: usize) -> &Server {
        self.kernel.node::<Server>(self.servers[idx])
    }

    /// Mutable server access.
    pub fn server_mut(&mut self, idx: usize) -> &mut Server {
        self.kernel.node_mut::<Server>(self.servers[idx])
    }

    /// Immutable ToR access.
    pub fn tor(&self) -> &Tor {
        self.kernel.node::<Tor>(self.tor)
    }

    /// Mutable ToR access.
    pub fn tor_mut(&mut self) -> &mut Tor {
        self.kernel.node_mut::<Tor>(self.tor)
    }

    /// Read a VM's guest app, downcast to its concrete type.
    pub fn app<T: GuestApp>(&self, v: VmRef) -> &T {
        self.server(v.server).vm(v.vm).app_as::<T>()
    }

    /// Begin CPU measurement windows on every server (after warmup).
    pub fn begin_cpu_windows(&mut self) {
        let now = self.kernel.now();
        for &sid in &self.servers.clone() {
            self.kernel.node_mut::<Server>(sid).begin_cpu_window(now);
        }
    }

    /// Snapshot every layer's counters into the telemetry registry: kernel
    /// event/fault counters, per-server host/TCP stats, and ToR occupancy.
    /// Pull-model publication — call once per collection point (end of run
    /// or periodic sample); hot paths never touch the registry.
    pub fn publish_telemetry(&mut self) {
        // The registry lives inside kernel.ctx while nodes also live inside
        // the kernel, so take it out for the duration of the walk.
        let mut reg = std::mem::take(&mut self.kernel.ctx.telemetry.registry);
        self.kernel.publish_telemetry_into(&mut reg);
        for &sid in &self.servers {
            self.kernel.node::<Server>(sid).publish_telemetry(&mut reg);
        }
        self.kernel
            .node::<Tor>(self.tor)
            .publish_telemetry(&mut reg);
        self.kernel.ctx.telemetry.registry = reg;
    }
}
