//! Request/response (transaction) workloads — the netperf `TCP_RR` family
//! (§3.1.1) and the transaction core reused by the memcached/memslap models.
//!
//! * **Closed-loop** (`burst = 1`): one request in flight per connection;
//!   measures round-trip latency distribution (paper Fig. 3(b,c)).
//! * **Pipelined** (`burst = 32`, 3 connections): netperf's burst mode;
//!   measures transactions/sec and loaded latency (Fig. 3(d,e)).
//!
//! Latency is measured application-to-application: from queuing the request
//! to receiving the last byte of its response. Responses arrive in order
//! (TCP), so a FIFO of send timestamps per connection suffices.

use std::collections::VecDeque;

use fastrak_host::app::{GuestApi, GuestApp};
use fastrak_net::addr::Ip;
use fastrak_sim::stats::Histogram;
use fastrak_sim::time::{SimDuration, SimTime};
use fastrak_transport::stack::{ConnId, SockEvent};

/// Configuration of an RR client.
#[derive(Debug, Clone)]
pub struct RrClientConfig {
    /// Server VM tenant IP.
    pub dst: Ip,
    /// Server port.
    pub dst_port: u16,
    /// First local source port (one per connection/thread).
    pub src_port_base: u16,
    /// Number of connections ("netperf threads").
    pub threads: usize,
    /// Request size in bytes (one application write).
    pub req_size: u64,
    /// Expected response size in bytes.
    pub resp_size: u64,
    /// Outstanding transactions per connection (1 = closed loop).
    pub burst: usize,
    /// Stop after this many completed transactions in total.
    pub total_requests: Option<u64>,
    /// Delay before opening connections.
    pub start_delay: SimDuration,
}

impl RrClientConfig {
    /// netperf TCP_RR closed-loop defaults at a given application data size.
    pub fn closed_loop(dst: Ip, dst_port: u16, size: u64) -> RrClientConfig {
        RrClientConfig {
            dst,
            dst_port,
            src_port_base: 41_000,
            threads: 1,
            req_size: size,
            resp_size: size,
            burst: 1,
            total_requests: None,
            start_delay: SimDuration::ZERO,
        }
    }

    /// netperf burst-mode defaults (3 threads, 32 outstanding, §3.1.1).
    pub fn pipelined(dst: Ip, dst_port: u16, size: u64) -> RrClientConfig {
        RrClientConfig {
            threads: 3,
            burst: 32,
            ..RrClientConfig::closed_loop(dst, dst_port, size)
        }
    }
}

struct RrConn {
    id: ConnId,
    in_flight: VecDeque<SimTime>,
    rx_accum: u64,
}

/// The RR client guest app.
pub struct RrClient {
    cfg: RrClientConfig,
    conns: Vec<RrConn>,
    issued: u64,
    completed: u64,
    /// Transaction latency histogram (ns samples).
    pub latency: Histogram,
    window_start: SimTime,
    window_completed_base: u64,
    /// When the configured request total completed.
    pub finished_at: Option<SimTime>,
}

const TIMER_START: u64 = 1;

impl RrClient {
    /// Build from a configuration.
    pub fn new(cfg: RrClientConfig) -> RrClient {
        RrClient {
            cfg,
            conns: Vec::new(),
            issued: 0,
            completed: 0,
            latency: Histogram::new(),
            window_start: SimTime::ZERO,
            window_completed_base: 0,
            finished_at: None,
        }
    }

    /// Transactions completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Restart the measurement window: resets the latency histogram and the
    /// TPS base (call after warmup).
    pub fn begin_window(&mut self, now: SimTime) {
        self.window_start = now;
        self.window_completed_base = self.completed;
        self.latency = Histogram::new();
    }

    /// Transactions per second over the current window.
    pub fn tps(&self, now: SimTime) -> f64 {
        let dt = now.since(self.window_start).as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        (self.completed - self.window_completed_base) as f64 / dt
    }

    fn maybe_issue(&mut self, ci: usize, api: &mut GuestApi<'_>) {
        loop {
            if let Some(total) = self.cfg.total_requests {
                if self.issued >= total {
                    return;
                }
            }
            let conn = &mut self.conns[ci];
            if conn.in_flight.len() >= self.cfg.burst {
                return;
            }
            if !api.send(conn.id, self.cfg.req_size) {
                return; // send buffer full; retry on next delivery
            }
            conn.in_flight.push_back(api.now);
            self.issued += 1;
        }
    }
}

impl GuestApp for RrClient {
    fn on_start(&mut self, api: &mut GuestApi<'_>) {
        if self.cfg.start_delay > SimDuration::ZERO {
            api.set_timer(self.cfg.start_delay, TIMER_START);
        } else {
            self.on_timer(TIMER_START, api);
        }
    }

    fn on_timer(&mut self, tag: u64, api: &mut GuestApi<'_>) {
        if tag == TIMER_START && self.conns.is_empty() {
            for t in 0..self.cfg.threads {
                let id = api.connect(
                    self.cfg.dst,
                    self.cfg.dst_port,
                    self.cfg.src_port_base + t as u16,
                );
                self.conns.push(RrConn {
                    id,
                    in_flight: VecDeque::new(),
                    rx_accum: 0,
                });
            }
        }
    }

    fn on_event(&mut self, ev: SockEvent, api: &mut GuestApi<'_>) {
        match ev {
            SockEvent::Connected(id) => {
                if let Some(ci) = self.conns.iter().position(|c| c.id == id) {
                    self.maybe_issue(ci, api);
                }
            }
            SockEvent::Delivered { conn, bytes } => {
                let Some(ci) = self.conns.iter().position(|c| c.id == conn) else {
                    return;
                };
                self.conns[ci].rx_accum += bytes;
                while self.conns[ci].rx_accum >= self.cfg.resp_size {
                    self.conns[ci].rx_accum -= self.cfg.resp_size;
                    let Some(t0) = self.conns[ci].in_flight.pop_front() else {
                        break;
                    };
                    self.latency.record(api.now.since(t0).as_nanos());
                    self.completed += 1;
                    if Some(self.completed) == self.cfg.total_requests {
                        self.finished_at = Some(api.now);
                    }
                }
                self.maybe_issue(ci, api);
            }
            // Lifecycle events: these long-lived netperf-style fleets never
            // close, so teardown notifications need no handling.
            _ => {}
        }
    }
}

/// Configuration of an RR server.
#[derive(Debug, Clone)]
pub struct RrServerConfig {
    /// Listening port.
    pub port: u16,
    /// Request size the protocol expects per transaction.
    pub req_size: u64,
    /// Response size per transaction.
    pub resp_size: u64,
    /// vCPU work per transaction (memcached request service).
    pub service_cpu: SimDuration,
}

struct SrvConn {
    id: ConnId,
    rx_accum: u64,
}

/// The RR server guest app (netserver / memcached).
pub struct RrServer {
    cfg: RrServerConfig,
    conns: Vec<SrvConn>,
    /// Transactions served.
    pub served: u64,
}

impl RrServer {
    /// Build from a configuration.
    pub fn new(cfg: RrServerConfig) -> RrServer {
        RrServer {
            cfg,
            conns: Vec::new(),
            served: 0,
        }
    }
}

impl GuestApp for RrServer {
    fn on_start(&mut self, api: &mut GuestApi<'_>) {
        api.listen(self.cfg.port);
    }

    fn on_event(&mut self, ev: SockEvent, api: &mut GuestApi<'_>) {
        match ev {
            SockEvent::Accepted { conn, port } if port == self.cfg.port => {
                self.conns.push(SrvConn {
                    id: conn,
                    rx_accum: 0,
                });
            }
            SockEvent::Delivered { conn, bytes } => {
                let Some(ci) = self.conns.iter().position(|c| c.id == conn) else {
                    return;
                };
                self.conns[ci].rx_accum += bytes;
                while self.conns[ci].rx_accum >= self.cfg.req_size {
                    self.conns[ci].rx_accum -= self.cfg.req_size;
                    if self.cfg.service_cpu > SimDuration::ZERO {
                        api.burn_cpu(self.cfg.service_cpu);
                    }
                    api.send(conn, self.cfg.resp_size);
                    self.served += 1;
                }
            }
            SockEvent::PeerClosed(conn) => {
                // EOF from the client: close our half too (any queued
                // response drains before the FIN).
                if let Some(ci) = self.conns.iter().position(|c| c.id == conn) {
                    api.close(conn);
                    self.conns.swap_remove(ci);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _tag: u64, _api: &mut GuestApi<'_>) {}
}
