//! # fastrak-workload
//!
//! The guest applications the paper evaluates with, plus the testbed
//! builder that assembles the evaluation rack:
//!
//! * [`rr`] — netperf `TCP_RR` (closed-loop and burst/pipelined modes);
//! * [`stream`] — netperf `TCP_STREAM` with `TCP_NODELAY` and preserved
//!   application write boundaries, the receiving sink, and the disk-bound
//!   file transfer (scp stand-in);
//! * [`memcached`] — the memcached server + memslap client models;
//! * [`background`] — IOzone / `stress` background load;
//! * [`testbed`] — the 6-server, dual-link-per-server rack of §5.1.

pub mod background;
pub mod composite;
pub mod incast;
pub mod memcached;
pub mod rr;
pub mod stream;
pub mod tenants;
pub mod testbed;

pub use background::{Idle, IoZone, Stress};
pub use composite::Composite;
pub use incast::{incast_worker, IncastAggregator, IncastConfig, INCAST_PORT};
pub use memcached::{memcached_server, Memcached, MemslapClient, MemslapConfig, MEMCACHED_PORT};
pub use rr::{RrClient, RrClientConfig, RrServer, RrServerConfig};
pub use stream::{FileTransfer, StreamConfig, StreamSender, StreamSink};
pub use tenants::{
    add_churner, zipf_weights, Churner, ChurnerConfig, ChurnerSetup, EchoRangeServer, FleetTenant,
    TenantFleet, TenantFleetConfig,
};
pub use testbed::{tenant_vlan, Testbed, TestbedConfig, VmRef};

#[cfg(test)]
mod tests {
    use super::*;
    use fastrak_host::vm::VmSpec;
    use fastrak_net::addr::{Ip, TenantId};
    use fastrak_net::packet::PathTag;
    use fastrak_sim::time::{SimDuration, SimTime};

    fn two_server_bed(tunneling: bool) -> Testbed {
        Testbed::build(TestbedConfig {
            n_servers: 2,
            tunneling,
            ..TestbedConfig::default()
        })
    }

    #[test]
    fn stream_reaches_multi_gbps_on_vif() {
        let mut bed = two_server_bed(false);
        let t = TenantId(1);
        let sink = bed.add_vm(
            1,
            VmSpec::large("sink", t, Ip::tenant_vm(2)),
            Box::new(StreamSink::new(5001)),
        );
        let _src = bed.add_vm(
            0,
            VmSpec::large("src", t, Ip::tenant_vm(1)),
            Box::new(StreamSender::new(StreamConfig::netperf(
                Ip::tenant_vm(2),
                5001,
                32_000,
            ))),
        );
        bed.start();
        bed.run_until(SimTime::from_millis(200));
        // Window after slow-start warmup.
        let now = bed.now();
        bed.server_mut(1)
            .vm_mut(sink.vm)
            .app_as_mut::<StreamSink>()
            .meter
            .begin_window(now);
        bed.run_until(SimTime::from_millis(700));
        let bps = bed.app::<StreamSink>(sink).goodput_bps(bed.now());
        assert!(
            bps > 5e9,
            "large writes should achieve multi-Gbps on the VIF path, got {bps:.2e}"
        );
    }

    #[test]
    fn small_writes_much_slower_than_large() {
        let run = |size: u64| {
            let mut bed = two_server_bed(false);
            let t = TenantId(1);
            let sink = bed.add_vm(
                1,
                VmSpec::large("sink", t, Ip::tenant_vm(2)),
                Box::new(StreamSink::new(5001)),
            );
            bed.add_vm(
                0,
                VmSpec::large("src", t, Ip::tenant_vm(1)),
                Box::new(StreamSender::new(StreamConfig::netperf(
                    Ip::tenant_vm(2),
                    5001,
                    size,
                ))),
            );
            bed.start();
            bed.run_until(SimTime::from_millis(200));
            let now = bed.now();
            bed.server_mut(1)
                .vm_mut(sink.vm)
                .app_as_mut::<StreamSink>()
                .meter
                .begin_window(now);
            bed.run_until(SimTime::from_millis(500));
            bed.app::<StreamSink>(sink).goodput_bps(bed.now())
        };
        let small = run(64);
        let large = run(32_000);
        assert!(
            large > 10.0 * small,
            "64B writes ({small:.2e} bps) must be far slower than 32KB ({large:.2e} bps)"
        );
    }

    #[test]
    fn rr_closed_loop_latency_sane_and_sriov_faster() {
        let run = |path: PathTag| {
            let mut bed = two_server_bed(false);
            let t = TenantId(1);
            let srv = bed.add_vm(
                1,
                VmSpec::large("rrsrv", t, Ip::tenant_vm(2)),
                Box::new(RrServer::new(RrServerConfig {
                    port: 5002,
                    req_size: 64,
                    resp_size: 64,
                    service_cpu: SimDuration::ZERO,
                })),
            );
            let cli = bed.add_vm(
                0,
                VmSpec::large("rrcli", t, Ip::tenant_vm(1)),
                Box::new(RrClient::new(RrClientConfig::closed_loop(
                    Ip::tenant_vm(2),
                    5002,
                    64,
                ))),
            );
            bed.authorize_hw_tenant(t);
            if path == PathTag::SrIov {
                bed.force_path(cli, path);
                bed.force_path(srv, path);
            }
            bed.start();
            bed.run_until(SimTime::from_millis(900));
            let app = bed.app::<RrClient>(cli);
            assert!(app.completed() > 100, "RR must make progress");
            app.latency.mean() / 1000.0 // us
        };
        let vif_us = run(PathTag::Vif);
        let hw_us = run(PathTag::SrIov);
        // Paper: SR-IOV roughly halves RR latency.
        assert!(
            hw_us < 0.75 * vif_us,
            "SR-IOV RTT {hw_us:.1}us must beat VIF {vif_us:.1}us"
        );
        assert!(
            vif_us > 10.0 && vif_us < 500.0,
            "VIF RTT {vif_us:.1}us sane"
        );
    }

    #[test]
    fn memslap_round_trips() {
        let mut bed = two_server_bed(false);
        let t = TenantId(1);
        bed.add_vm(
            1,
            VmSpec::large("mc", t, Ip::tenant_vm(2)),
            Box::new(memcached_server()),
        );
        let cli = bed.add_vm(
            0,
            VmSpec::large("slap", t, Ip::tenant_vm(1)),
            Box::new(MemslapClient::new(MemslapConfig::paper(
                vec![Ip::tenant_vm(2)],
                Some(2_000),
            ))),
        );
        bed.start();
        bed.run_until(SimTime::from_secs(5));
        let app = bed.app::<MemslapClient>(cli);
        assert_eq!(app.completed(), 2_000);
        assert!(app.finish_time().is_some());
        assert!(app.latency.quantile(0.99) > app.latency.quantile(0.5));
    }

    #[test]
    fn incast_rounds_complete_then_connections_close() {
        let mut bed = Testbed::build(TestbedConfig {
            n_servers: 5,
            ..TestbedConfig::default()
        });
        let t = TenantId(1);
        let mut workers = Vec::new();
        for i in 0..4usize {
            let ip = Ip::tenant_vm(i as u16 + 2);
            bed.add_vm(
                i + 1,
                VmSpec::large(format!("w{i}"), t, ip),
                Box::new(incast_worker(16_000)),
            );
            workers.push(ip);
        }
        // Short MSL so the test can watch TIME_WAIT expire.
        let tcp = fastrak_transport::tcp::TcpConfig {
            msl: SimDuration::from_millis(100),
            ..Default::default()
        };
        let agg = bed.add_vm_tcp(
            0,
            VmSpec::large("agg", t, Ip::tenant_vm(1)),
            Box::new(IncastAggregator::new(IncastConfig {
                long_flows: 1,
                ..IncastConfig::fan_in(workers, 16_000, 50)
            })),
            tcp,
        );
        bed.start();
        bed.run_until(SimTime::from_secs(3));
        let app = bed.app::<IncastAggregator>(agg);
        assert_eq!(app.completed_rounds, 50, "all rounds must complete");
        assert_eq!(app.fct.count(), 50);
        assert!(app.finish_time().is_some());
        assert!(app.fct.quantile(0.99) >= app.fct.quantile(0.5));
        // Closing the fan-out exercises the full FIN handshake: after the
        // 2MSL quiet period no connection on the aggregator is left open.
        bed.run_until(SimTime::from_secs(5));
        let stack = &bed.server(0).vm(agg.vm).stack;
        assert!(
            stack.conn_ids().all(|id| stack.conn(id).is_closed()),
            "all aggregator connections must reach CLOSED"
        );
    }

    #[test]
    fn file_transfer_paces_at_disk_rate() {
        let mut bed = two_server_bed(false);
        let t = TenantId(1);
        bed.add_vm(
            1,
            VmSpec::large("sink", t, Ip::tenant_vm(2)),
            Box::new(StreamSink::new(22)),
        );
        let mut ft = FileTransfer::paper_default(Ip::tenant_vm(2), 22, 50_000);
        ft.total_bytes = 64 * 1024 * 200; // 13 MB at 500 Mbps ≈ 0.21 s
        let src = bed.add_vm(0, VmSpec::large("scp", t, Ip::tenant_vm(1)), Box::new(ft));
        bed.start();
        bed.run_until(SimTime::from_secs(2));
        let app = bed.app::<FileTransfer>(src);
        let fin = app.finished_at.expect("transfer completes");
        let secs = fin.as_secs_f64();
        let expect = (64.0 * 1024.0 * 200.0 * 8.0) / 500e6;
        assert!(
            (secs - expect).abs() / expect < 0.2,
            "disk-paced transfer took {secs:.3}s, expected ~{expect:.3}s"
        );
    }

    #[test]
    fn stress_consumes_vcpus() {
        let mut bed = two_server_bed(false);
        let t = TenantId(1);
        let vm = bed.add_vm(
            0,
            VmSpec::large("hog", t, Ip::tenant_vm(1)),
            Box::new(Stress::new(2)),
        );
        bed.start();
        bed.run_until(SimTime::from_millis(100));
        bed.begin_cpu_windows();
        bed.run_until(SimTime::from_millis(600));
        let used = bed.server(vm.server).guest_cpus_used(bed.now());
        assert!(
            (1.5..=2.5).contains(&used),
            "2 stress workers should burn ~2 vCPUs, got {used:.2}"
        );
    }

    #[test]
    fn vif_rate_limit_caps_stream() {
        let mut bed = two_server_bed(false);
        let t = TenantId(1);
        let sink = bed.add_vm(
            1,
            VmSpec::large("sink", t, Ip::tenant_vm(2)),
            Box::new(StreamSink::new(5001)),
        );
        let src = bed.add_vm(
            0,
            VmSpec::large("src", t, Ip::tenant_vm(1)),
            Box::new(StreamSender::new(StreamConfig::netperf(
                Ip::tenant_vm(2),
                5001,
                32_000,
            ))),
        );
        bed.set_vif_rate(src, fastrak_net::ctrl::Dir::Egress, 1_000_000_000);
        bed.start();
        bed.run_until(SimTime::from_millis(300));
        let now = bed.now();
        bed.server_mut(1)
            .vm_mut(sink.vm)
            .app_as_mut::<StreamSink>()
            .meter
            .begin_window(now);
        bed.run_until(SimTime::from_millis(900));
        let bps = bed.app::<StreamSink>(sink).goodput_bps(bed.now());
        assert!(
            bps < 1.05e9,
            "1 Gbps egress limit must cap goodput, got {bps:.2e}"
        );
        assert!(bps > 0.5e9, "but traffic must still flow, got {bps:.2e}");
    }
}
