//! Multi-tenant fleets and the adversarial "churner" profile (noisy
//! neighbor) — the workload side of the tenant-fairness experiments.
//!
//! A [`TenantFleet`] stamps out N tenants, each with its own memcached
//! server VM and a set of memslap client VMs, with per-tenant demand skewed
//! by a Zipf law (rank-1 tenant hottest). The fleet gives the decision
//! engine a realistic population: a few tenants with heavy aggregates, a
//! tail of light ones.
//!
//! The [`Churner`] is the adversary: one tenant that spreads its traffic
//! over many destination-port aggregates and rotates which of them are hot
//! every phase. Each rotation pushes a fresh set of aggregates over the
//! offload threshold while the previously hot set goes idle — under an
//! unrestricted policy the churner monopolizes the bounded fast path and
//! keeps churning its entries, evicting the steady victims' rules. The
//! per-tenant fairness policies (`fastrak::FastPathPolicy`) exist to stop
//! exactly this; `tenant_matrix` in `fastrak-bench` measures it.

use std::collections::VecDeque;

use fastrak_host::app::{GuestApi, GuestApp};
use fastrak_host::vm::VmSpec;
use fastrak_net::addr::{Ip, TenantId};
use fastrak_sim::time::SimDuration;
use fastrak_transport::stack::{ConnId, SockEvent};

use crate::memcached::{memcached_server, MemslapClient, MemslapConfig};
use crate::testbed::{Testbed, VmRef};

/// Zipf weights for `n` ranks with exponent `s`, normalized to sum 1.
/// `s = 0` degenerates to uniform; larger `s` concentrates demand on the
/// low ranks (rank 1 is the heaviest tenant).
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    let raw: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / sum).collect()
}

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct TenantFleetConfig {
    /// Number of tenants (TenantId 1..=n, rank order = id order).
    pub n_tenants: u32,
    /// memslap client VMs per tenant.
    pub clients_per_tenant: usize,
    /// Zipf exponent for the cross-tenant demand skew.
    pub zipf_s: f64,
    /// Outstanding requests per connection for the rank-1 tenant; lower
    /// ranks get `peak_burst` scaled by their Zipf weight (min 1).
    pub peak_burst: usize,
    /// memslap connections per client VM.
    pub conns_per_target: usize,
    /// Stagger between consecutive tenants' client start times (breaks the
    /// synchronized-start artifact without losing determinism).
    pub start_stagger: SimDuration,
}

impl Default for TenantFleetConfig {
    fn default() -> Self {
        TenantFleetConfig {
            n_tenants: 4,
            clients_per_tenant: 1,
            zipf_s: 1.0,
            peak_burst: 8,
            conns_per_target: 2,
            start_stagger: SimDuration::from_millis(3),
        }
    }
}

/// One tenant of the fleet.
pub struct FleetTenant {
    /// The tenant id (rank order: 1 is the heaviest).
    pub tenant: TenantId,
    /// This tenant's normalized Zipf demand weight.
    pub weight: f64,
    /// The per-connection burst its clients run with.
    pub burst: usize,
    /// The memcached server VM.
    pub server: VmRef,
    /// The memslap client VMs.
    pub clients: Vec<VmRef>,
}

/// The assembled fleet.
pub struct TenantFleet {
    /// Tenants in rank order.
    pub tenants: Vec<FleetTenant>,
}

impl TenantFleet {
    /// Place the fleet onto a testbed. Tenant `t`'s server VM lands on
    /// physical server `(t-1) % n_servers`; its clients round-robin over
    /// the *other* servers so every tenant's traffic crosses the ToR.
    pub fn build(bed: &mut Testbed, cfg: &TenantFleetConfig) -> TenantFleet {
        let n_servers = bed.servers.len();
        assert!(n_servers >= 2, "tenant fleet needs at least two servers");
        let weights = zipf_weights(cfg.n_tenants as usize, cfg.zipf_s);
        let w_max = weights.first().copied().unwrap_or(1.0);
        let mut tenants = Vec::new();
        for (rank, &weight) in weights.iter().enumerate() {
            let tenant = TenantId(rank as u32 + 1);
            let home = rank % n_servers;
            let server_ip = Ip::tenant_vm(1);
            let server = bed.add_vm(
                home,
                VmSpec::large(format!("mc-t{}", tenant.0), tenant, server_ip),
                Box::new(memcached_server()),
            );
            let burst = ((cfg.peak_burst as f64 * weight / w_max).round() as usize).max(1);
            let mut clients = Vec::new();
            for c in 0..cfg.clients_per_tenant {
                let slot = (home + 1 + c) % n_servers;
                let mut slap = MemslapConfig::paper(vec![server_ip], None);
                slap.conns_per_target = cfg.conns_per_target;
                slap.burst = burst;
                slap.src_port_base = 43_000 + (c as u16) * 64;
                slap.start_delay = cfg.start_stagger * rank as u64;
                clients.push(bed.add_vm(
                    slot,
                    VmSpec::large(
                        format!("slap-t{}-{c}", tenant.0),
                        tenant,
                        Ip::tenant_vm(10 + c as u16),
                    ),
                    Box::new(MemslapClient::new(slap)),
                ));
            }
            tenants.push(FleetTenant {
                tenant,
                weight,
                burst,
                server,
                clients,
            });
        }
        TenantFleet { tenants }
    }

    /// Restart every client's measurement window (after warmup).
    pub fn begin_windows(&self, bed: &mut Testbed) {
        let now = bed.now();
        for t in &self.tenants {
            for &c in &t.clients {
                bed.server_mut(c.server)
                    .vm_mut(c.vm)
                    .app_as_mut::<MemslapClient>()
                    .begin_window(now);
            }
        }
    }
}

/// First port of the churner's port range.
pub const CHURN_PORT_BASE: u16 = 7000;

const TIMER_START: u64 = 1;
const TIMER_PHASE: u64 = 2;

/// Churner configuration.
#[derive(Debug, Clone)]
pub struct ChurnerConfig {
    /// The echo server VM this churner hammers.
    pub dst: Ip,
    /// Number of destination ports — each is a distinct `DstApp` flow
    /// aggregate in the measurement engine.
    pub n_ports: u16,
    /// How many consecutive ports are hot at once.
    pub hot_ports: u16,
    /// Rotation period: every phase the hot window advances by
    /// `hot_ports`, so a fresh set of aggregates crosses the offload
    /// threshold while the old set collapses to idle.
    pub phase: SimDuration,
    /// Outstanding requests per hot connection. Size this so a hot
    /// aggregate's score clears the victims' by more than the decision
    /// engine's hysteresis margin — otherwise the incumbent-protection
    /// keeps the victims installed and the churn never bites.
    pub burst: usize,
    /// Connections per destination port. The DE score is
    /// `n_active × m_pps`, and the software path serializes the client
    /// VM's pps on its vhost thread — so fanning each hot aggregate out
    /// over many flows is how an adversary inflates its score without
    /// needing more pps than the slow path will carry.
    pub conns_per_port: u16,
    /// Request size (bytes).
    pub req_size: u64,
    /// Response size (bytes).
    pub resp_size: u64,
    /// First local source port.
    pub src_port_base: u16,
    /// Delay before opening connections.
    pub start_delay: SimDuration,
}

impl ChurnerConfig {
    /// An aggressive default against `dst`: 16 aggregates, 4 hot at a
    /// time, rotating every 150 ms (≈ one measurement epoch), deep bursts.
    pub fn aggressive(dst: Ip) -> ChurnerConfig {
        ChurnerConfig {
            dst,
            n_ports: 16,
            hot_ports: 4,
            phase: SimDuration::from_millis(150),
            burst: 16,
            conns_per_port: 1,
            req_size: 64,
            resp_size: 1024,
            src_port_base: 51_000,
            start_delay: SimDuration::ZERO,
        }
    }
}

struct ChurnConn {
    id: ConnId,
    in_flight: VecDeque<u64>, // send counter stand-ins; latency unmeasured
    rx_accum: u64,
}

/// The adversarial churner guest app (client side).
pub struct Churner {
    cfg: ChurnerConfig,
    conns: Vec<ChurnConn>,
    /// Start of the currently hot port window (index into `conns`).
    offset: usize,
    /// Completed transactions (progress sanity, not a metric).
    pub completed: u64,
    /// Phases elapsed.
    pub rotations: u64,
}

impl Churner {
    /// Build from a configuration.
    pub fn new(cfg: ChurnerConfig) -> Churner {
        assert!(cfg.hot_ports > 0 && cfg.hot_ports <= cfg.n_ports);
        Churner {
            cfg,
            conns: Vec::new(),
            offset: 0,
            completed: 0,
            rotations: 0,
        }
    }

    fn is_hot(&self, ci: usize) -> bool {
        let n = self.cfg.n_ports as usize;
        let port = ci / self.cfg.conns_per_port as usize;
        let rel = (port + n - self.offset) % n;
        rel < self.cfg.hot_ports as usize
    }

    fn maybe_issue(&mut self, ci: usize, api: &mut GuestApi<'_>) {
        if !self.is_hot(ci) {
            return; // cold aggregate: let in-flight drain, issue nothing
        }
        loop {
            let conn = &mut self.conns[ci];
            if conn.in_flight.len() >= self.cfg.burst {
                return;
            }
            if !api.send(conn.id, self.cfg.req_size) {
                return;
            }
            conn.in_flight.push_back(0);
        }
    }

    fn issue_hot(&mut self, api: &mut GuestApi<'_>) {
        for ci in 0..self.conns.len() {
            self.maybe_issue(ci, api);
        }
    }
}

impl GuestApp for Churner {
    fn on_start(&mut self, api: &mut GuestApi<'_>) {
        api.set_timer(self.cfg.start_delay, TIMER_START);
    }

    fn on_timer(&mut self, tag: u64, api: &mut GuestApi<'_>) {
        match tag {
            TIMER_START if self.conns.is_empty() => {
                for p in 0..self.cfg.n_ports {
                    for k in 0..self.cfg.conns_per_port {
                        let id = api.connect(
                            self.cfg.dst,
                            CHURN_PORT_BASE + p,
                            self.cfg.src_port_base + p * self.cfg.conns_per_port + k,
                        );
                        self.conns.push(ChurnConn {
                            id,
                            in_flight: VecDeque::new(),
                            rx_accum: 0,
                        });
                    }
                }
                api.set_timer(self.cfg.phase, TIMER_PHASE);
            }
            TIMER_PHASE => {
                let n = self.cfg.n_ports as usize;
                self.offset = (self.offset + self.cfg.hot_ports as usize) % n;
                self.rotations += 1;
                self.issue_hot(api);
                api.set_timer(self.cfg.phase, TIMER_PHASE);
            }
            _ => {}
        }
    }

    fn on_event(&mut self, ev: SockEvent, api: &mut GuestApi<'_>) {
        match ev {
            SockEvent::Connected(id) => {
                if let Some(ci) = self.conns.iter().position(|c| c.id == id) {
                    self.maybe_issue(ci, api);
                }
            }
            SockEvent::Delivered { conn, bytes } => {
                let Some(ci) = self.conns.iter().position(|c| c.id == conn) else {
                    return;
                };
                self.conns[ci].rx_accum += bytes;
                while self.conns[ci].rx_accum >= self.cfg.resp_size {
                    self.conns[ci].rx_accum -= self.cfg.resp_size;
                    if self.conns[ci].in_flight.pop_front().is_some() {
                        self.completed += 1;
                    }
                }
                self.maybe_issue(ci, api);
            }
            _ => {}
        }
    }
}

/// Echo server answering the churner's whole port range from one VM.
pub struct EchoRangeServer {
    /// Number of ports, starting at [`CHURN_PORT_BASE`].
    n_ports: u16,
    req_size: u64,
    resp_size: u64,
    conns: Vec<(ConnId, u64)>,
    /// Transactions served.
    pub served: u64,
}

impl EchoRangeServer {
    /// Serve `n_ports` ports with the churner's request/response framing.
    pub fn new(n_ports: u16, req_size: u64, resp_size: u64) -> EchoRangeServer {
        EchoRangeServer {
            n_ports,
            req_size,
            resp_size,
            conns: Vec::new(),
            served: 0,
        }
    }
}

impl GuestApp for EchoRangeServer {
    fn on_start(&mut self, api: &mut GuestApi<'_>) {
        for p in 0..self.n_ports {
            api.listen(CHURN_PORT_BASE + p);
        }
    }

    fn on_event(&mut self, ev: SockEvent, api: &mut GuestApi<'_>) {
        match ev {
            SockEvent::Accepted { conn, port }
                if (CHURN_PORT_BASE..CHURN_PORT_BASE + self.n_ports).contains(&port) =>
            {
                self.conns.push((conn, 0));
            }
            SockEvent::Delivered { conn, bytes } => {
                let Some(ci) = self.conns.iter().position(|c| c.0 == conn) else {
                    return;
                };
                self.conns[ci].1 += bytes;
                while self.conns[ci].1 >= self.req_size {
                    self.conns[ci].1 -= self.req_size;
                    api.send(conn, self.resp_size);
                    self.served += 1;
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _tag: u64, _api: &mut GuestApi<'_>) {}
}

/// The churner pair placed on a testbed.
pub struct ChurnerSetup {
    /// The echo-server VM.
    pub server: VmRef,
    /// The churner client VM.
    pub client: VmRef,
}

/// Place a churner tenant: echo server on `server_slot`, client on
/// `client_slot` (must differ so the churn crosses the ToR).
pub fn add_churner(
    bed: &mut Testbed,
    tenant: TenantId,
    server_slot: usize,
    client_slot: usize,
    cfg: ChurnerConfig,
) -> ChurnerSetup {
    assert_ne!(server_slot, client_slot, "churner must cross the ToR");
    let (n_ports, req, resp) = (cfg.n_ports, cfg.req_size, cfg.resp_size);
    let server = bed.add_vm(
        server_slot,
        VmSpec::large(format!("churn-srv-t{}", tenant.0), tenant, cfg.dst),
        Box::new(EchoRangeServer::new(n_ports, req, resp)),
    );
    let client = bed.add_vm(
        client_slot,
        VmSpec::large(
            format!("churn-cli-t{}", tenant.0),
            tenant,
            Ip::tenant_vm(99),
        ),
        Box::new(Churner::new(cfg)),
    );
    ChurnerSetup { server, client }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastrak_sim::time::SimTime;

    #[test]
    fn zipf_is_normalized_and_skewed() {
        let w = zipf_weights(5, 1.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1] && w[1] > w[4]);
        let flat = zipf_weights(5, 0.0);
        assert!((flat[0] - flat[4]).abs() < 1e-12);
    }

    #[test]
    fn fleet_places_servers_and_clients_apart() {
        let mut bed = Testbed::build(crate::TestbedConfig {
            n_servers: 3,
            ..Default::default()
        });
        let fleet = TenantFleet::build(
            &mut bed,
            &TenantFleetConfig {
                n_tenants: 4,
                clients_per_tenant: 2,
                ..Default::default()
            },
        );
        assert_eq!(fleet.tenants.len(), 4);
        for t in &fleet.tenants {
            for c in &t.clients {
                assert_ne!(c.server, t.server.server, "client must cross the ToR");
                assert_eq!(c.tenant, t.tenant);
            }
        }
        // Zipf rank 1 runs the deepest bursts.
        assert!(fleet.tenants[0].burst >= fleet.tenants[3].burst);
    }

    #[test]
    fn fleet_makes_progress_with_skewed_tps() {
        let mut bed = Testbed::build(crate::TestbedConfig {
            n_servers: 2,
            ..Default::default()
        });
        let cfg = TenantFleetConfig {
            n_tenants: 3,
            zipf_s: 1.5,
            peak_burst: 8,
            ..Default::default()
        };
        let fleet = TenantFleet::build(&mut bed, &cfg);
        bed.start();
        bed.run_until(SimTime::from_millis(300));
        fleet.begin_windows(&mut bed);
        bed.run_until(SimTime::from_secs(1));
        let now = bed.now();
        let tps: Vec<f64> = fleet
            .tenants
            .iter()
            .map(|t| {
                t.clients
                    .iter()
                    .map(|&c| bed.app::<MemslapClient>(c).tps(now))
                    .sum()
            })
            .collect();
        assert!(tps.iter().all(|&x| x > 100.0), "all tenants run: {tps:?}");
        assert!(
            tps[0] > 1.5 * tps[2],
            "rank-1 tenant must dominate rank-3: {tps:?}"
        );
    }

    #[test]
    fn churner_rotates_heat_across_aggregates() {
        let mut bed = Testbed::build(crate::TestbedConfig {
            n_servers: 2,
            ..Default::default()
        });
        let cfg = ChurnerConfig {
            phase: SimDuration::from_millis(100),
            conns_per_port: 2,
            ..ChurnerConfig::aggressive(Ip::tenant_vm(90))
        };
        let setup = add_churner(&mut bed, TenantId(9), 0, 1, cfg);
        bed.start();
        bed.run_until(SimTime::from_secs(1));
        let cli = bed.app::<Churner>(setup.client);
        assert!(cli.rotations >= 8, "phases must rotate: {}", cli.rotations);
        assert!(cli.completed > 1_000, "churn must carry real traffic");
        let srv = bed.app::<EchoRangeServer>(setup.server);
        assert!(srv.served > 1_000);
    }
}
