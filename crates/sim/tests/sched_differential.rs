//! Differential test: the timing wheel against the binary-heap oracle.
//!
//! A seeded stream of mixed operations — schedules across every wheel level
//! (including far-future overflow and ties), cancels of live, fired, and
//! already-cancelled handles, deadline-bounded pops (`run_until`-style) and
//! unbounded drains — is replayed through [`TimingWheel`] and
//! [`BinaryHeapSched`] in lockstep. Every delivery must match exactly:
//! time, destination node, payload, and the relative order. The observable
//! counters (`len`, backlog at quiescent points, final drain) must agree
//! too. This is the property that lets `--features heap-sched` serve as a
//! bit-identical oracle build for the whole simulation.

use fastrak_sim::sched::{BinaryHeapSched, Scheduler, TimingWheel};
use fastrak_sim::time::{SimDuration, SimTime};
use fastrak_sim::{EventHandle, Rng};

/// One scheduler wrapped with the kernel's clamp + seq discipline, so the
/// test drives both implementations exactly the way `Kernel` does.
struct Harness<S: Scheduler<u64>> {
    sched: S,
    now: SimTime,
    next_seq: u64,
    delivered: u64,
    handles: Vec<EventHandle>,
    /// Largest time ever scheduled — the kernel's clock never rewinds, so
    /// the harness must not either (see the resume logic below).
    high_water: SimTime,
}

impl<S: Scheduler<u64>> Harness<S> {
    fn new() -> Self {
        Harness {
            sched: S::default(),
            now: SimTime::ZERO,
            next_seq: 0,
            delivered: 0,
            handles: Vec::new(),
            high_water: SimTime::ZERO,
        }
    }

    fn schedule(&mut self, at: SimTime) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let h = self.sched.schedule(at, seq, (seq % 7) as usize, seq);
        self.handles.push(h);
        self.high_water = self.high_water.max(at);
    }

    fn cancel_nth(&mut self, n: usize) {
        if !self.handles.is_empty() {
            let h = self.handles[n % self.handles.len()];
            self.sched.cancel(h);
        }
    }

    /// Pop every event due at or before `deadline`, advancing the clock the
    /// way `Kernel::run_until` does. Returns the delivery log.
    fn run_until(&mut self, deadline: SimTime) -> Vec<(u64, usize, u64)> {
        let mut log = Vec::new();
        while let Some((t, dst, ev)) = self.sched.pop_due(deadline) {
            assert!(t >= self.now, "clock went backwards");
            assert!(t <= deadline, "pop_due ignored the deadline");
            self.now = t;
            self.delivered += 1;
            log.push((t.as_nanos(), dst, ev));
        }
        if self.now < deadline {
            self.now = deadline;
        }
        log
    }
}

/// Drive both schedulers through the same seeded operation stream and
/// assert identical observable behavior throughout.
fn differential_run(seed: u64, ops: usize, horizon_stress: bool) {
    let mut rng = Rng::new(seed);
    let mut wheel = Harness::<TimingWheel<u64>>::new();
    let mut heap = Harness::<BinaryHeapSched<u64>>::new();

    for op in 0..ops {
        match rng.below(100) {
            // Schedule: delays spanning every wheel level, with deliberate
            // ties (delay 0 and repeated exact delays).
            0..=59 => {
                let delay = match rng.below(10) {
                    0 => SimDuration::ZERO,                         // tie on `now`
                    1 => SimDuration(rng.below(64)),                // level 0
                    2 => SimDuration(rng.below(4096)),              // level 1
                    3 => SimDuration::from_micros(rng.below(260)),  // level 2
                    4 => SimDuration::from_millis(rng.below(16)),   // level 3
                    5 => SimDuration::from_millis(rng.below(1000)), // level 4
                    6 => SimDuration::from_secs(rng.below(60)),     // level 5/6
                    7 => SimDuration::from_micros(10),              // repeated tie
                    8 if horizon_stress => {
                        // Far future: past the 2^42 ns (~73 min) wheel
                        // horizon, exercising overflow + promotion.
                        SimDuration::from_secs(3600 + rng.below(7200))
                    }
                    _ => SimDuration(rng.below(1_000_000)),
                };
                let at = wheel.now + delay;
                wheel.schedule(at);
                heap.schedule(at);
            }
            // Cancel a handle: sometimes live, sometimes long-fired,
            // sometimes cancelled twice — all must be no-op-safe.
            60..=79 => {
                let n = rng.below(u64::MAX) as usize;
                wheel.cancel_nth(n);
                heap.cancel_nth(n);
            }
            // Bounded run (run_until idiom).
            80..=94 => {
                let ahead = SimDuration(rng.below(2_000_000));
                let deadline = wheel.now + ahead;
                let wl = wheel.run_until(deadline);
                let hl = heap.run_until(deadline);
                assert_eq!(wl, hl, "delivery logs diverged at op {op} (seed {seed})");
                assert_eq!(wheel.now, heap.now, "clocks diverged at op {op}");
            }
            // Unbounded drain of a few events via a tight deadline ladder:
            // peek must agree, then drain-to-empty occasionally.
            _ => {
                assert_eq!(
                    wheel.sched.next_time(),
                    heap.sched.next_time(),
                    "next_time diverged at op {op} (seed {seed})"
                );
                if rng.chance(0.2) {
                    let wl = wheel.run_until(SimTime::MAX);
                    let hl = heap.run_until(SimTime::MAX);
                    assert_eq!(wl, hl, "full drain diverged at op {op} (seed {seed})");
                    // MAX deadline leaves both clocks at MAX; resume from
                    // the highest time ever *scheduled* so the run can
                    // continue meaningfully. Resuming below that (e.g. at
                    // the last delivered time) would break the kernel
                    // contract both schedulers rely on: the clock never
                    // rewinds below an already-consumed (delivered or
                    // cancelled-and-reclaimed) event time.
                    let resume = wheel.high_water;
                    wheel.now = resume;
                    heap.now = resume;
                    assert_eq!(wheel.sched.len(), 0);
                    assert_eq!(heap.sched.len(), 0);
                    assert_eq!(wheel.sched.cancelled_backlog(), 0);
                    assert_eq!(heap.sched.cancelled_backlog(), 0);
                }
            }
        }
        // Raw `len()` includes cancelled-but-unreclaimed entries, and the
        // two implementations reclaim at different moments (the wheel on
        // slot drains/cascades, the heap when tombstones surface at the
        // head) — but the *live* count must agree at every step.
        assert_eq!(
            wheel.sched.len() - wheel.sched.cancelled_backlog(),
            heap.sched.len() - heap.sched.cancelled_backlog(),
            "live-entry counts diverged at op {op} (seed {seed})"
        );
        wheel.sched.debug_audit();
    }

    // Final full drain: everything still pending must come out identically.
    let wl = wheel.run_until(SimTime::MAX);
    let hl = heap.run_until(SimTime::MAX);
    assert_eq!(wl, hl, "final drain diverged (seed {seed})");
    assert_eq!(wheel.delivered, heap.delivered, "events_processed diverged");
    assert_eq!(wheel.sched.cancelled_backlog(), 0);
    assert_eq!(heap.sched.cancelled_backlog(), 0);
    assert!(wheel.sched.is_empty() && heap.sched.is_empty());
    assert!(
        wheel.delivered > (ops as u64) / 4,
        "run delivered too little to be meaningful: {}",
        wheel.delivered
    );
}

#[test]
fn wheel_matches_heap_oracle_over_100k_mixed_ops() {
    differential_run(0xfa5_72a4, 100_000, false);
}

#[test]
fn wheel_matches_heap_oracle_with_far_future_overflow() {
    differential_run(0x0600_d5eed, 40_000, true);
}

#[test]
fn wheel_matches_heap_oracle_across_seeds() {
    for seed in 1..=8 {
        differential_run(seed, 8_000, seed % 2 == 0);
    }
}
