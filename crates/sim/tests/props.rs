//! Property-based tests for the simulation engine's core invariants.

use proptest::prelude::*;

use fastrak_sim::cpu::CpuPool;
use fastrak_sim::stats::Histogram;
use fastrak_sim::tbf::TokenBucket;
use fastrak_sim::time::{SimDuration, SimTime};

proptest! {
    /// The histogram's quantile estimate is within the documented ~1.6%
    /// relative error of the exact order statistic.
    #[test]
    fn histogram_quantile_error_bounded(
        mut samples in proptest::collection::vec(1u64..1_000_000_000, 10..500),
        q in 0.01f64..0.999,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
        let exact = samples[idx] as f64;
        let est = h.quantile(q) as f64;
        // Log-bucketed estimate: bounded relative error plus one-sample
        // slack at distribution edges.
        let lo = samples[idx.saturating_sub(1)] as f64;
        let hi = samples[(idx + 1).min(samples.len() - 1)] as f64;
        let ok = (est - exact).abs() / exact < 0.017
            || (est >= lo * 0.984 && est <= hi * 1.017);
        prop_assert!(ok, "q={q} exact={exact} est={est}");
    }

    /// Histogram mean is exact; min/max are exact.
    #[test]
    fn histogram_moments_exact(samples in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6);
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
    }

    /// A token bucket never releases more than burst + rate*time bytes over
    /// any window starting from a full bucket.
    #[test]
    fn token_bucket_rate_conservation(
        rate_mbps in 1u64..10_000,
        burst_kb in 1u64..1_000,
        sizes in proptest::collection::vec(64u64..9_000, 1..200),
    ) {
        let rate = rate_mbps * 1_000_000;
        let burst = burst_kb * 1_000;
        let mut tb = TokenBucket::new(rate, burst);
        let mut t = SimTime::ZERO;
        let mut total = 0u64;
        let mut last = SimTime::ZERO;
        for &sz in &sizes {
            let at = tb.acquire(t, sz);
            prop_assert!(at >= last, "FIFO violated");
            last = at;
            t = at; // offer the next packet when this one departs
            total += sz;
        }
        // Conservation: everything released by `last` fits in burst + rate*T.
        let elapsed = last.as_secs_f64();
        let bound = burst as f64 + rate as f64 / 8.0 * elapsed + 9_000.0;
        prop_assert!((total as f64) <= bound, "released {total} > bound {bound}");
    }

    /// CPU pool: completions never overlap more than n_cpus at once, and
    /// total busy time equals the sum of submitted costs.
    #[test]
    fn cpu_pool_work_conservation(
        n_cpus in 1usize..8,
        jobs in proptest::collection::vec((0u64..10_000, 1u64..5_000), 1..100),
    ) {
        let mut pool = CpuPool::new(n_cpus);
        let mut total = SimDuration::ZERO;
        let mut intervals = Vec::new();
        for &(at, cost) in &jobs {
            let now = SimTime::from_micros(at);
            let cost = SimDuration::from_micros(cost);
            let done = pool.submit(now, cost);
            prop_assert!(done >= now + cost, "work cannot finish early");
            intervals.push((done.checked_sub(cost).unwrap(), done));
            total += cost;
        }
        prop_assert_eq!(pool.total_busy(), total);
        // At any completion instant, at most n_cpus jobs can be running.
        for &(s, _) in &intervals {
            let overlapping = intervals
                .iter()
                .filter(|&&(s2, e2)| s2 <= s && s < e2)
                .count();
            prop_assert!(overlapping <= n_cpus, "{overlapping} > {n_cpus} CPUs busy");
        }
    }
}
