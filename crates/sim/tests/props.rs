//! Randomized-input tests for the simulation engine's core invariants,
//! driven by the engine's own seeded [`fastrak_sim::Rng`] so every run
//! checks the identical case list.

use fastrak_sim::cpu::CpuPool;
use fastrak_sim::stats::Histogram;
use fastrak_sim::tbf::TokenBucket;
use fastrak_sim::time::{SimDuration, SimTime};
use fastrak_sim::Rng;

const CASES: usize = 64;

/// The histogram's quantile estimate is within the documented ~1.6%
/// relative error of the exact order statistic.
#[test]
fn histogram_quantile_error_bounded() {
    let mut r = Rng::new(0x4157);
    for _ in 0..CASES {
        let n = r.range(10, 499) as usize;
        let mut samples: Vec<u64> = (0..n).map(|_| r.range(1, 999_999_999)).collect();
        let q = 0.01 + r.f64() * (0.999 - 0.01);
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
        let exact = samples[idx] as f64;
        let est = h.quantile(q) as f64;
        // Log-bucketed estimate: bounded relative error plus one-sample
        // slack at distribution edges.
        let lo = samples[idx.saturating_sub(1)] as f64;
        let hi = samples[(idx + 1).min(samples.len() - 1)] as f64;
        let ok = (est - exact).abs() / exact < 0.017 || (est >= lo * 0.984 && est <= hi * 1.017);
        assert!(ok, "q={q} exact={exact} est={est}");
    }
}

/// Histogram mean is exact; min/max are exact.
#[test]
fn histogram_moments_exact() {
    let mut r = Rng::new(0x404E);
    for _ in 0..CASES {
        let n = r.range(1, 199) as usize;
        let samples: Vec<u64> = (0..n).map(|_| r.below(1_000_000)).collect();
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((h.mean() - mean).abs() < 1e-6);
        assert_eq!(h.min(), *samples.iter().min().unwrap());
        assert_eq!(h.max(), *samples.iter().max().unwrap());
    }
}

/// A token bucket never releases more than burst + rate*time bytes over
/// any window starting from a full bucket.
#[test]
fn token_bucket_rate_conservation() {
    let mut r = Rng::new(0x7B4F);
    for _ in 0..CASES {
        let rate = r.range(1, 9_999) * 1_000_000;
        let burst = r.range(1, 999) * 1_000;
        let n = r.range(1, 199) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| r.range(64, 8_999)).collect();
        let mut tb = TokenBucket::new(rate, burst);
        let mut t = SimTime::ZERO;
        let mut total = 0u64;
        let mut last = SimTime::ZERO;
        for &sz in &sizes {
            let at = tb.acquire(t, sz);
            assert!(at >= last, "FIFO violated");
            last = at;
            t = at; // offer the next packet when this one departs
            total += sz;
        }
        // Conservation: everything released by `last` fits in burst + rate*T.
        let elapsed = last.as_secs_f64();
        let bound = burst as f64 + rate as f64 / 8.0 * elapsed + 9_000.0;
        assert!((total as f64) <= bound, "released {total} > bound {bound}");
    }
}

/// CPU pool: completions never overlap more than n_cpus at once, and
/// total busy time equals the sum of submitted costs.
#[test]
fn cpu_pool_work_conservation() {
    let mut r = Rng::new(0xC9F0);
    for _ in 0..CASES {
        let n_cpus = r.range(1, 7) as usize;
        let n_jobs = r.range(1, 99) as usize;
        let jobs: Vec<(u64, u64)> = (0..n_jobs)
            .map(|_| (r.below(10_000), r.range(1, 4_999)))
            .collect();
        let mut pool = CpuPool::new(n_cpus);
        let mut total = SimDuration::ZERO;
        let mut intervals = Vec::new();
        for &(at, cost) in &jobs {
            let now = SimTime::from_micros(at);
            let cost = SimDuration::from_micros(cost);
            let done = pool.submit(now, cost);
            assert!(done >= now + cost, "work cannot finish early");
            intervals.push((done.checked_sub(cost).unwrap(), done));
            total += cost;
        }
        assert_eq!(pool.total_busy(), total);
        // At any completion instant, at most n_cpus jobs can be running.
        for &(s, _) in &intervals {
            let overlapping = intervals
                .iter()
                .filter(|&&(s2, e2)| s2 <= s && s < e2)
                .count();
            assert!(overlapping <= n_cpus, "{overlapping} > {n_cpus} CPUs busy");
        }
    }
}
