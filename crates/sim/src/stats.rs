//! Measurement primitives: counters, rate meters, time-weighted averages,
//! and an HDR-style log-bucketed histogram for latency percentiles.
//!
//! The experiment harness reports the same statistics the paper does: mean
//! and 99th-percentile latency (Fig. 3/5), transactions per second, and mean
//! finish times (Tables 1-4). The histogram trades a bounded ~1.6% relative
//! error for O(1) record cost and fixed memory, which is the standard
//! engineering choice (HdrHistogram) for latency capture.

use crate::time::{SimDuration, SimTime};

/// The log-bucketed histogram now lives in `fastrak-telemetry` (the metrics
/// registry owns histograms, and telemetry sits below this crate);
/// re-exported so `fastrak_sim::stats::Histogram` keeps working. Duration
/// typed helpers are layered back on via [`HistogramDurationExt`].
pub use fastrak_telemetry::hist::Histogram;

/// Monotonic event counter with byte accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter {
    /// Number of events (e.g. packets).
    pub count: u64,
    /// Accumulated bytes.
    pub bytes: u64,
}

impl Counter {
    /// Record one event carrying `bytes`.
    pub fn add(&mut self, bytes: u64) {
        self.count += 1;
        self.bytes += bytes;
    }

    /// Record `n` events carrying `bytes` together — the batch-path form of
    /// [`Counter::add`]: equal to `n` scalar adds whose byte arguments sum
    /// to `bytes`.
    pub fn add_n(&mut self, n: u64, bytes: u64) {
        self.count += n;
        self.bytes += bytes;
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: Counter) {
        self.count += other.count;
        self.bytes += other.bytes;
    }

    /// Difference since an earlier snapshot (for Δp/Δb rate measurement, the
    /// paper's Measurement Engine primitive).
    pub fn delta(&self, earlier: Counter) -> Counter {
        Counter {
            count: self.count - earlier.count,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// Outcome counters for the fault-injection plane ([`crate::fault`]): how
/// many messages were inspected and what happened to them, plus forced
/// hardware install failures. Experiments surface these next to controller
/// convergence metrics so a run's fault pressure is auditable.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultCounters {
    /// Messages that reached the sampling stage (fault-eligible, on an
    /// active link, inside the activity window).
    pub inspected: u64,
    /// Messages silently dropped.
    pub dropped: u64,
    /// Messages delivered with extra delay.
    pub delayed: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Hardware rule installs forced to fail by a scripted window.
    pub forced_install_failures: u64,
}

impl FaultCounters {
    /// Mirror these counters into a telemetry registry under `sim.fault.*`.
    ///
    /// The registry copies are snapshots of this struct (single source of
    /// truth), so `fault_matrix` output and telemetry exports cannot drift.
    pub fn publish_into(&self, reg: &mut fastrak_telemetry::Registry) {
        for (name, v) in [
            ("sim.fault.inspected", self.inspected),
            ("sim.fault.dropped", self.dropped),
            ("sim.fault.delayed", self.delayed),
            ("sim.fault.duplicated", self.duplicated),
            (
                "sim.fault.forced_install_failures",
                self.forced_install_failures,
            ),
        ] {
            let id = reg.counter(name, &[]);
            reg.set_counter(id, v);
        }
    }
}

/// Windowed throughput meter: events/sec and bits/sec over explicit windows.
#[derive(Debug, Clone, Default)]
pub struct MeterRate {
    total: Counter,
    window_start: SimTime,
    window_base: Counter,
}

impl MeterRate {
    /// Record one event carrying `bytes`.
    pub fn add(&mut self, bytes: u64) {
        self.total.add(bytes);
    }

    /// Cumulative counter since construction.
    pub fn total(&self) -> Counter {
        self.total
    }

    /// Restart the measurement window at `now`.
    pub fn begin_window(&mut self, now: SimTime) {
        self.window_start = now;
        self.window_base = self.total;
    }

    /// Events per second over the current window.
    pub fn events_per_sec(&self, now: SimTime) -> f64 {
        let dt = now.since(self.window_start).as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        self.total.delta(self.window_base).count as f64 / dt
    }

    /// Bits per second over the current window.
    pub fn bits_per_sec(&self, now: SimTime) -> f64 {
        let dt = now.since(self.window_start).as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        self.total.delta(self.window_base).bytes as f64 * 8.0 / dt
    }
}

/// Time-weighted average of a piecewise-constant value (queue lengths,
/// offloaded-rule counts).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_value: f64,
    last_time: SimTime,
    weighted_sum: f64,
    start: SimTime,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        TimeWeighted {
            last_value: 0.0,
            last_time: SimTime::ZERO,
            weighted_sum: 0.0,
            start: SimTime::ZERO,
        }
    }
}

impl TimeWeighted {
    /// Record that the value changed to `value` at `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.since(self.last_time).as_secs_f64();
        self.weighted_sum += self.last_value * dt;
        self.last_value = value;
        self.last_time = now;
    }

    /// Time-weighted mean from start through `now`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let dt_tail = now.since(self.last_time).as_secs_f64();
        let total = now.since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.last_value;
        }
        (self.weighted_sum + self.last_value * dt_tail) / total
    }
}

/// Duration-typed convenience layer over the telemetry [`Histogram`]
/// (samples are interpreted as nanoseconds). The histogram itself is
/// duration-agnostic — `fastrak-telemetry` cannot name [`SimDuration`] —
/// so the sim-time view lives here.
pub trait HistogramDurationExt {
    /// Record a duration sample in nanoseconds.
    fn record_duration(&mut self, d: SimDuration);

    /// Convenience: mean as a `SimDuration` (samples interpreted as ns).
    fn mean_duration(&self) -> SimDuration;

    /// Convenience: quantile as a `SimDuration`.
    fn quantile_duration(&self, q: f64) -> SimDuration;
}

impl HistogramDurationExt for Histogram {
    fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    fn mean_duration(&self) -> SimDuration {
        SimDuration(self.mean().round() as u64)
    }

    fn quantile_duration(&self, q: f64) -> SimDuration {
        SimDuration(self.quantile(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_delta() {
        let mut c = Counter::default();
        c.add(100);
        let snap = c;
        c.add(200);
        c.add(300);
        let d = c.delta(snap);
        assert_eq!(d.count, 2);
        assert_eq!(d.bytes, 500);
    }

    #[test]
    fn meter_rates() {
        let mut m = MeterRate::default();
        m.begin_window(SimTime::ZERO);
        for _ in 0..1000 {
            m.add(1250);
        }
        let now = SimTime::from_secs(1);
        assert!((m.events_per_sec(now) - 1000.0).abs() < 1e-9);
        assert!((m.bits_per_sec(now) - 10_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn meter_window_isolates() {
        let mut m = MeterRate::default();
        for _ in 0..500 {
            m.add(1);
        }
        m.begin_window(SimTime::from_secs(1));
        for _ in 0..100 {
            m.add(1);
        }
        assert!((m.events_per_sec(SimTime::from_secs(2)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::default();
        tw.set(SimTime::ZERO, 10.0);
        tw.set(SimTime::from_secs(1), 0.0);
        // 10 for 1s, 0 for 1s => mean 5 over 2s.
        assert!((tw.mean(SimTime::from_secs(2)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_duration_ext_roundtrips_nanos() {
        // Bucket math lives (and is tested) in fastrak-telemetry; this
        // covers the SimDuration view layered on top.
        let mut h = Histogram::new();
        h.record_duration(SimDuration(10));
        h.record_duration(SimDuration(30));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean_duration(), SimDuration(20));
        assert_eq!(h.quantile_duration(1.0), SimDuration(30));
    }

    #[test]
    fn fault_counters_publish_snapshots_into_registry() {
        let mut reg = fastrak_telemetry::Registry::default();
        let mut fc = FaultCounters {
            inspected: 10,
            dropped: 3,
            delayed: 2,
            duplicated: 1,
            forced_install_failures: 4,
        };
        fc.publish_into(&mut reg);
        assert_eq!(reg.counter_by_name("sim.fault.dropped"), Some(3));
        // Re-publishing overwrites (snapshot semantics, no double counting).
        fc.dropped = 5;
        fc.publish_into(&mut reg);
        assert_eq!(reg.counter_by_name("sim.fault.dropped"), Some(5));
        assert_eq!(
            reg.counter_by_name("sim.fault.forced_install_failures"),
            Some(4)
        );
    }
}
