//! Measurement primitives: counters, rate meters, time-weighted averages,
//! and an HDR-style log-bucketed histogram for latency percentiles.
//!
//! The experiment harness reports the same statistics the paper does: mean
//! and 99th-percentile latency (Fig. 3/5), transactions per second, and mean
//! finish times (Tables 1-4). The histogram trades a bounded ~1.6% relative
//! error for O(1) record cost and fixed memory, which is the standard
//! engineering choice (HdrHistogram) for latency capture.

use crate::time::{SimDuration, SimTime};

/// Monotonic event counter with byte accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter {
    /// Number of events (e.g. packets).
    pub count: u64,
    /// Accumulated bytes.
    pub bytes: u64,
}

impl Counter {
    /// Record one event carrying `bytes`.
    pub fn add(&mut self, bytes: u64) {
        self.count += 1;
        self.bytes += bytes;
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: Counter) {
        self.count += other.count;
        self.bytes += other.bytes;
    }

    /// Difference since an earlier snapshot (for Δp/Δb rate measurement, the
    /// paper's Measurement Engine primitive).
    pub fn delta(&self, earlier: Counter) -> Counter {
        Counter {
            count: self.count - earlier.count,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// Outcome counters for the fault-injection plane ([`crate::fault`]): how
/// many messages were inspected and what happened to them, plus forced
/// hardware install failures. Experiments surface these next to controller
/// convergence metrics so a run's fault pressure is auditable.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultCounters {
    /// Messages that reached the sampling stage (fault-eligible, on an
    /// active link, inside the activity window).
    pub inspected: u64,
    /// Messages silently dropped.
    pub dropped: u64,
    /// Messages delivered with extra delay.
    pub delayed: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Hardware rule installs forced to fail by a scripted window.
    pub forced_install_failures: u64,
}

/// Windowed throughput meter: events/sec and bits/sec over explicit windows.
#[derive(Debug, Clone, Default)]
pub struct MeterRate {
    total: Counter,
    window_start: SimTime,
    window_base: Counter,
}

impl MeterRate {
    /// Record one event carrying `bytes`.
    pub fn add(&mut self, bytes: u64) {
        self.total.add(bytes);
    }

    /// Cumulative counter since construction.
    pub fn total(&self) -> Counter {
        self.total
    }

    /// Restart the measurement window at `now`.
    pub fn begin_window(&mut self, now: SimTime) {
        self.window_start = now;
        self.window_base = self.total;
    }

    /// Events per second over the current window.
    pub fn events_per_sec(&self, now: SimTime) -> f64 {
        let dt = now.since(self.window_start).as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        self.total.delta(self.window_base).count as f64 / dt
    }

    /// Bits per second over the current window.
    pub fn bits_per_sec(&self, now: SimTime) -> f64 {
        let dt = now.since(self.window_start).as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        self.total.delta(self.window_base).bytes as f64 * 8.0 / dt
    }
}

/// Time-weighted average of a piecewise-constant value (queue lengths,
/// offloaded-rule counts).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_value: f64,
    last_time: SimTime,
    weighted_sum: f64,
    start: SimTime,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        TimeWeighted {
            last_value: 0.0,
            last_time: SimTime::ZERO,
            weighted_sum: 0.0,
            start: SimTime::ZERO,
        }
    }
}

impl TimeWeighted {
    /// Record that the value changed to `value` at `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.since(self.last_time).as_secs_f64();
        self.weighted_sum += self.last_value * dt;
        self.last_value = value;
        self.last_time = now;
    }

    /// Time-weighted mean from start through `now`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let dt_tail = now.since(self.last_time).as_secs_f64();
        let total = now.since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.last_value;
        }
        (self.weighted_sum + self.last_value * dt_tail) / total
    }
}

/// Number of sub-buckets per power-of-two bucket; 64 gives a worst-case
/// relative quantile error of 1/64 ≈ 1.6%.
const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = 6;
/// Bucket count covering values up to 2^40 ns (~18 minutes) with 64
/// sub-buckets each, plus the linear region below 64.
const N_BUCKETS: usize =
    ((40 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize + SUB_BUCKETS as usize;

/// Log-bucketed histogram for non-negative integer samples (latencies in ns).
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u32>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(v: u64) -> usize {
        if v < SUB_BUCKETS {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let shift = msb - SUB_BITS;
        let sub = (v >> shift) - SUB_BUCKETS; // in [0, 64)
        let idx = ((shift as u64 + 1) * SUB_BUCKETS + sub) as usize;
        idx.min(N_BUCKETS - 1)
    }

    /// Representative (upper-bound) value for a bucket index.
    fn value_for(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB_BUCKETS {
            return idx;
        }
        let shift = idx / SUB_BUCKETS - 1;
        let sub = idx % SUB_BUCKETS;
        (SUB_BUCKETS + sub) << shift
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a duration sample in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean of the recorded samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q` in [0,1]; worst-case relative error ~1.6%.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c as u64;
            if seen >= target {
                return Self::value_for(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Convenience: mean as a `SimDuration` (samples interpreted as ns).
    pub fn mean_duration(&self) -> SimDuration {
        SimDuration(self.mean().round() as u64)
    }

    /// Convenience: quantile as a `SimDuration`.
    pub fn quantile_duration(&self, q: f64) -> SimDuration {
        SimDuration(self.quantile(q))
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(n={}, mean={:.1}, p50={}, p99={}, max={})",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_delta() {
        let mut c = Counter::default();
        c.add(100);
        let snap = c;
        c.add(200);
        c.add(300);
        let d = c.delta(snap);
        assert_eq!(d.count, 2);
        assert_eq!(d.bytes, 500);
    }

    #[test]
    fn meter_rates() {
        let mut m = MeterRate::default();
        m.begin_window(SimTime::ZERO);
        for _ in 0..1000 {
            m.add(1250);
        }
        let now = SimTime::from_secs(1);
        assert!((m.events_per_sec(now) - 1000.0).abs() < 1e-9);
        assert!((m.bits_per_sec(now) - 10_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn meter_window_isolates() {
        let mut m = MeterRate::default();
        for _ in 0..500 {
            m.add(1);
        }
        m.begin_window(SimTime::from_secs(1));
        for _ in 0..100 {
            m.add(1);
        }
        assert!((m.events_per_sec(SimTime::from_secs(2)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::default();
        tw.set(SimTime::ZERO, 10.0);
        tw.set(SimTime::from_secs(1), 0.0);
        // 10 for 1s, 0 for 1s => mean 5 over 2s.
        assert!((tw.mean(SimTime::from_secs(2)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.quantile(0.5), 31);
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        h.record(1_000);
        h.record(3_000);
        assert!((h.mean() - 2000.0).abs() < 1e-9);
        assert_eq!(h.mean_duration(), SimDuration(2000));
    }

    #[test]
    fn histogram_quantile_bounded_error() {
        let mut h = Histogram::new();
        // Uniform samples 1..=100_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, expect) in &[(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.02, "q{q}: got {got} expect {expect} err {err}");
        }
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn histogram_huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(1.0) > 0);
    }
}
