//! Nanosecond-resolution simulated time.
//!
//! [`SimTime`] is an absolute instant since simulation start; [`SimDuration`]
//! is a span between instants. Both wrap a `u64` nanosecond count, which gives
//! ~584 years of range — far beyond the 90-second experiments in the paper.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative inputs clamp to zero (durations are non-negative).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Construct from fractional microseconds, rounding to the nearest nanosecond.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as a float (for reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiply by a non-negative float factor, rounding to the nearest ns.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        debug_assert!(f >= 0.0, "duration factors must be non-negative");
        SimDuration((self.0 as f64 * f).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "time went backwards: {self:?} - {rhs:?}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "negative duration: {self:?} - {rhs:?}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Serialization time for `bytes` at `bits_per_sec` on a link, rounded up to
/// whole nanoseconds so that back-to-back packets never occupy zero time.
pub fn serialization_delay(bytes: u64, bits_per_sec: u64) -> SimDuration {
    debug_assert!(bits_per_sec > 0);
    let bits = bytes as u128 * 8;
    let ns = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
    SimDuration(ns as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(1), SimDuration(1_000_000_000));
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_micros_f64(2.5).as_nanos(), 2_500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
        assert_eq!(t.since(SimTime::from_secs(2)), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs(1) * 3, SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(3) / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn negative_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn serialization_delay_matches_line_rate() {
        // 1500 bytes at 10 Gbps = 1.2 us.
        assert_eq!(serialization_delay(1500, 10_000_000_000), SimDuration(1200));
        // 64 bytes at 1 Gbps = 512 ns.
        assert_eq!(serialization_delay(64, 1_000_000_000), SimDuration(512));
        // Rounds up: 1 byte at 10 Gbps = 0.8ns -> 1ns.
        assert_eq!(serialization_delay(1, 10_000_000_000), SimDuration(1));
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration(5)), "5ns");
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration(1000).mul_f64(1.5), SimDuration(1500));
        assert_eq!(SimDuration(3).mul_f64(0.5), SimDuration(2)); // 1.5 rounds to 2
    }
}
