//! Deterministic, seeded fault injection for inter-node messages.
//!
//! The control plane the FasTrak controller runs over is modelled as a
//! lossless channel by default, but real multi-tenant SDN control channels
//! drop, delay, and duplicate messages, and hardware rule installs fail.
//! This module lets a harness attach a [`FaultLayer`] to the kernel that
//! perturbs the send path *deterministically*: the plane owns a private
//! [`Rng`] stream (seeded from [`FaultConfig::seed`]), so faulted runs are
//! bit-reproducible and runs with all probabilities at zero draw no random
//! numbers at all — attaching a zero-probability plane leaves the event
//! stream identical to not attaching one.
//!
//! Three ingredients:
//!
//! * [`LinkFaults`] — per-(src, dst) drop/delay/duplication probabilities.
//! * [`FaultConfig`] — the seed, a default link spec, per-link overrides, an
//!   optional activity window, and scripted rule-install failure windows.
//! * [`FaultLayer`] — the plane plus two event-type-specific hooks
//!   (`classify` selects which events are subject to faults, `duplicate`
//!   clones an event for duplication faults), kept as plain `fn` pointers so
//!   the layer stays `'static` and cheap to consult.
//!
//! Injection happens only on [`crate::kernel::Api::send_at`] (a node sending
//! to *another* node); self-sends (timers) and harness-level
//! [`crate::kernel::Kernel::post`] calls are never faulted.

use crate::chaos::{ChaosConfig, ChaosPlane};
use crate::fxhash::FxHashMap;
use crate::kernel::NodeId;
use crate::rng::Rng;
use crate::stats::FaultCounters;
use crate::time::{SimDuration, SimTime};

/// Fault probabilities for one directed link (message stream src → dst).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    pub drop: f64,
    /// Probability a delivered message is delayed by an extra
    /// `delay_min..=delay_max` (uniform).
    pub delay: f64,
    /// Minimum extra delay for delayed (and duplicated) messages.
    pub delay_min: SimDuration,
    /// Maximum extra delay for delayed (and duplicated) messages.
    pub delay_max: SimDuration,
    /// Probability a delivered message is delivered twice; the copy arrives
    /// `delay_min..=delay_max` after the original.
    pub duplicate: f64,
}

impl LinkFaults {
    /// A fault-free link (the default everywhere).
    pub const NONE: LinkFaults = LinkFaults {
        drop: 0.0,
        delay: 0.0,
        delay_min: SimDuration::ZERO,
        delay_max: SimDuration::ZERO,
        duplicate: 0.0,
    };

    /// Pure loss at probability `p`, no delay or duplication.
    pub fn loss(p: f64) -> LinkFaults {
        LinkFaults {
            drop: p,
            ..LinkFaults::NONE
        }
    }

    /// True when every probability is zero — the plane skips the link
    /// without drawing any random numbers.
    pub fn is_none(&self) -> bool {
        self.drop <= 0.0 && self.delay <= 0.0 && self.duplicate <= 0.0
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::NONE
    }
}

/// Configuration for a [`FaultPlane`].
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Seed for the plane's private RNG stream. Independent of the kernel
    /// seed so fault decisions never perturb workload randomness.
    pub seed: u64,
    /// Fault spec applied to every link without an explicit override.
    pub default_link: LinkFaults,
    /// Per-directed-link overrides.
    pub links: Vec<((NodeId, NodeId), LinkFaults)>,
    /// When set, link faults only apply inside `[start, end)`; outside the
    /// window every message is delivered untouched.
    pub window: Option<(SimTime, SimTime)>,
    /// Scripted windows `[start, end)` during which hardware rule installs
    /// are forced to fail (consulted by the ToR via
    /// [`crate::kernel::Api::fault_forces_install_failure`]). Checked
    /// against the clock only — no randomness involved.
    pub install_fail_windows: Vec<(SimTime, SimTime)>,
    /// Scripted component-lifecycle outages (ToR reboots, SR-IOV failures,
    /// link flaps, controller restarts) — see [`crate::chaos`]. Clock-driven
    /// like the install windows, so chaos scripts never perturb the
    /// probabilistic fault RNG stream.
    pub chaos: ChaosConfig,
}

/// What the plane decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver unchanged.
    Deliver,
    /// Silently drop.
    Drop,
    /// Deliver with this extra delay on top of the scheduled time.
    Delay(SimDuration),
    /// Deliver on time, plus a duplicate copy this much later.
    DeliverAndDuplicate(SimDuration),
}

/// The seeded fault decision engine. Owned by the kernel (inside a
/// [`FaultLayer`]); experiments read [`FaultPlane::stats`] afterwards.
#[derive(Debug)]
pub struct FaultPlane {
    rng: Rng,
    default_link: LinkFaults,
    links: FxHashMap<(NodeId, NodeId), LinkFaults>,
    window: Option<(SimTime, SimTime)>,
    install_fail_windows: Vec<(SimTime, SimTime)>,
    /// Every link spec is all-zero: link-fault decisions can never fire, so
    /// the per-message hook short-circuits before any lookup or RNG draw.
    /// Precomputed because the hook sits on the kernel's send hot path.
    idle: bool,
    /// Outcome counters (inspected/dropped/delayed/duplicated/forced
    /// install failures).
    pub stats: FaultCounters,
    /// The component-lifecycle outage engine (see [`crate::chaos`]). An
    /// empty script is idle and costs nothing on the send path.
    pub chaos: ChaosPlane,
}

impl FaultPlane {
    /// Build a plane from its configuration.
    pub fn new(cfg: FaultConfig) -> FaultPlane {
        let idle = cfg.default_link.is_none() && cfg.links.iter().all(|(_, l)| l.is_none());
        FaultPlane {
            rng: Rng::new(cfg.seed),
            default_link: cfg.default_link,
            links: cfg.links.into_iter().collect(),
            window: cfg.window,
            install_fail_windows: cfg.install_fail_windows,
            idle,
            stats: FaultCounters::default(),
            chaos: ChaosPlane::new(cfg.chaos),
        }
    }

    /// True when no link-fault probability anywhere is non-zero (scripted
    /// install-failure windows may still be active).
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.idle
    }

    fn spec_for(&self, src: NodeId, dst: NodeId) -> LinkFaults {
        *self.links.get(&(src, dst)).unwrap_or(&self.default_link)
    }

    /// Decide the fate of one message on link src → dst at time `now`.
    ///
    /// Decisions are mutually exclusive and sampled in drop → delay →
    /// duplicate order; a message already chosen for drop is never also
    /// delayed, and so on. A link whose spec [`LinkFaults::is_none`] (or a
    /// time outside the activity window) returns [`FaultDecision::Deliver`]
    /// without touching the RNG.
    pub fn decide(&mut self, src: NodeId, dst: NodeId, now: SimTime) -> FaultDecision {
        if self.idle {
            return FaultDecision::Deliver;
        }
        let spec = self.spec_for(src, dst);
        if spec.is_none() {
            return FaultDecision::Deliver;
        }
        if let Some((start, end)) = self.window {
            if now < start || now >= end {
                return FaultDecision::Deliver;
            }
        }
        self.stats.inspected += 1;
        if spec.drop > 0.0 && self.rng.chance(spec.drop) {
            self.stats.dropped += 1;
            return FaultDecision::Drop;
        }
        if spec.delay > 0.0 && self.rng.chance(spec.delay) {
            self.stats.delayed += 1;
            return FaultDecision::Delay(self.extra_delay(&spec));
        }
        if spec.duplicate > 0.0 && self.rng.chance(spec.duplicate) {
            self.stats.duplicated += 1;
            return FaultDecision::DeliverAndDuplicate(self.extra_delay(&spec));
        }
        FaultDecision::Deliver
    }

    fn extra_delay(&mut self, spec: &LinkFaults) -> SimDuration {
        let (lo, hi) = (spec.delay_min.0, spec.delay_max.0);
        if hi <= lo {
            return SimDuration(lo);
        }
        SimDuration(lo + self.rng.below(hi - lo + 1))
    }

    /// True when a scripted failure window covers `now`: the hardware must
    /// reject the rule install. Purely clock-driven (no RNG), so scripted
    /// windows compose with probabilistic link faults without perturbing
    /// their random stream.
    pub fn install_should_fail(&mut self, now: SimTime) -> bool {
        let forced = self
            .install_fail_windows
            .iter()
            .any(|&(start, end)| now >= start && now < end);
        if forced {
            self.stats.forced_install_failures += 1;
        }
        forced
    }
}

/// A [`FaultPlane`] plus the event-type-specific hooks the kernel needs:
/// which events are fault candidates, and how to clone one for duplication.
/// Plain `fn` pointers keep the layer `Copy`-cheap and `'static`.
pub struct FaultLayer<E> {
    /// The decision engine.
    pub plane: FaultPlane,
    /// True when this event is subject to fault injection (e.g. only
    /// control-plane messages).
    pub classify: fn(&E) -> bool,
    /// Clone an event for a duplication fault. Returning `None` opts the
    /// event out of duplication (it is still delivered once).
    pub duplicate: fn(&E) -> Option<E>,
    /// True when this event is a data-plane frame — the event class the
    /// chaos plane blackholes during ToR outages and link flaps. Control
    /// messages and timers are never chaos-blocked (the management network
    /// is out of band). Defaults to "nothing is a frame".
    pub is_frame: fn(&E) -> bool,
}

impl<E> FaultLayer<E> {
    /// Build a layer from a config and the two event hooks. The frame
    /// classifier defaults to "nothing is a frame"; harnesses that script
    /// component outages attach one via [`FaultLayer::with_frame_classifier`].
    pub fn new(cfg: FaultConfig, classify: fn(&E) -> bool, duplicate: fn(&E) -> Option<E>) -> Self {
        FaultLayer {
            plane: FaultPlane::new(cfg),
            classify,
            duplicate,
            is_frame: |_| false,
        }
    }

    /// Attach the data-plane frame classifier consulted by the chaos plane.
    pub fn with_frame_classifier(mut self, is_frame: fn(&E) -> bool) -> Self {
        self.is_frame = is_frame;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(p: f64, seed: u64) -> FaultPlane {
        FaultPlane::new(FaultConfig {
            seed,
            default_link: LinkFaults::loss(p),
            ..FaultConfig::default()
        })
    }

    #[test]
    fn zero_probability_never_draws() {
        let mut p = lossy(0.0, 42);
        for i in 0..1000 {
            assert_eq!(p.decide(0, 1, SimTime(i)), FaultDecision::Deliver);
        }
        assert_eq!(p.stats.inspected, 0, "p=0 links must not even be counted");
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let mut p = lossy(0.1, 7);
        for i in 0..10_000 {
            p.decide(0, 1, SimTime(i));
        }
        assert_eq!(p.stats.inspected, 10_000);
        let rate = p.stats.dropped as f64 / 10_000.0;
        assert!((rate - 0.1).abs() < 0.02, "drop rate {rate} far from 0.1");
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let run = |seed| {
            let mut p = lossy(0.3, seed);
            (0..100)
                .map(|i| p.decide(0, 1, SimTime(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should diverge");
    }

    #[test]
    fn window_gates_link_faults() {
        let mut p = FaultPlane::new(FaultConfig {
            seed: 1,
            default_link: LinkFaults::loss(1.0),
            window: Some((SimTime(100), SimTime(200))),
            ..FaultConfig::default()
        });
        assert_eq!(p.decide(0, 1, SimTime(99)), FaultDecision::Deliver);
        assert_eq!(p.decide(0, 1, SimTime(100)), FaultDecision::Drop);
        assert_eq!(p.decide(0, 1, SimTime(199)), FaultDecision::Drop);
        assert_eq!(p.decide(0, 1, SimTime(200)), FaultDecision::Deliver);
    }

    #[test]
    fn per_link_overrides_beat_default() {
        let mut p = FaultPlane::new(FaultConfig {
            seed: 1,
            default_link: LinkFaults::NONE,
            links: vec![((2, 3), LinkFaults::loss(1.0))],
            ..FaultConfig::default()
        });
        assert_eq!(p.decide(0, 1, SimTime(0)), FaultDecision::Deliver);
        assert_eq!(p.decide(3, 2, SimTime(0)), FaultDecision::Deliver);
        assert_eq!(p.decide(2, 3, SimTime(0)), FaultDecision::Drop);
    }

    #[test]
    fn delay_faults_stay_in_range() {
        let mut p = FaultPlane::new(FaultConfig {
            seed: 9,
            default_link: LinkFaults {
                delay: 1.0,
                delay_min: SimDuration(10),
                delay_max: SimDuration(20),
                ..LinkFaults::NONE
            },
            ..FaultConfig::default()
        });
        for i in 0..1000 {
            match p.decide(0, 1, SimTime(i)) {
                FaultDecision::Delay(d) => assert!((10..=20).contains(&d.0), "delay {d:?}"),
                other => panic!("expected Delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn install_fail_windows_are_clock_driven() {
        let mut p = FaultPlane::new(FaultConfig {
            seed: 1,
            install_fail_windows: vec![(SimTime(10), SimTime(20)), (SimTime(50), SimTime(60))],
            ..FaultConfig::default()
        });
        assert!(!p.install_should_fail(SimTime(9)));
        assert!(p.install_should_fail(SimTime(10)));
        assert!(p.install_should_fail(SimTime(19)));
        assert!(!p.install_should_fail(SimTime(20)));
        assert!(p.install_should_fail(SimTime(55)));
        assert_eq!(p.stats.forced_install_failures, 3);
    }
}
