//! Event scheduler implementations for the DES kernel.
//!
//! Two interchangeable schedulers stand behind [`crate::kernel::Kernel`],
//! both delivering events in the same total order — time, then schedule
//! sequence — so a simulation replays bit-identically on either:
//!
//! * [`TimingWheel`] (the default): a hierarchical timing wheel in the
//!   Varghese/Lauck style (as in Kafka, Netty, and tokio-timer). Seven
//!   levels of 64 slots cover a ~73-minute horizon at exact-nanosecond
//!   granularity; schedule and expire are O(1) amortized, and cancellation
//!   is O(1) in place via generation-stamped handles — no tombstone set on
//!   the pop path at all.
//! * [`BinaryHeapSched`] (behind the `heap-sched` cargo feature, but always
//!   compiled): the previous `BinaryHeap` + lazy-tombstone scheduler,
//!   retained as the differential-testing oracle and the reference side of
//!   the `scheduler` micro-bench suite.
//!
//! The shared [`Scheduler`] trait is what the kernel's hot loop calls;
//! `tests/sched_differential.rs` replays large mixed operation streams
//! through both implementations and asserts identical behavior.

use std::collections::BinaryHeap;
use std::mem;

use crate::fxhash::FxHashSet;
use crate::kernel::NodeId;
use crate::time::SimTime;

/// Handle to a scheduled event; used to cancel timers.
///
/// The payload is scheduler-private. The timing wheel packs the event's
/// arena slot index and a generation stamp (bumped every time the slot is
/// reclaimed), so cancelling marks the entry dead in place in O(1) and a
/// handle whose event already fired simply fails the generation check. The
/// heap oracle packs the `(time << 64) | seq` ordering key and compares it
/// against the delivery watermark instead.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle(pub(crate) u128);

impl EventHandle {
    /// A handle that refers to no event: cancelling it is a no-op in both
    /// scheduler implementations. Returned by the kernel's send path when
    /// fault injection drops a message instead of scheduling it.
    pub const NULL: EventHandle = EventHandle(u128::MAX);
}

/// `(time << 64) | seq` — one u128 comparison orders events totally.
#[inline]
pub(crate) fn event_key(time: SimTime, seq: u64) -> u128 {
    ((time.as_nanos() as u128) << 64) | seq as u128
}

#[inline]
fn key_time(key: u128) -> SimTime {
    SimTime((key >> 64) as u64)
}

/// The operations the kernel's event loop needs from a scheduler.
///
/// Both implementations deliver events in strictly increasing
/// `(time, seq)` order; `seq` is assigned by the kernel and is unique, so
/// the order is total and runs replay identically.
pub trait Scheduler<E>: Default {
    /// Insert an event for delivery at `at` with kernel-assigned sequence
    /// number `seq`. Callers guarantee `at` is not in the scheduler's past:
    /// never below the time of any event already consumed by [`Self::pop_due`]
    /// (delivered *or* reclaimed as cancelled). The kernel upholds this by
    /// construction — its clock is monotone and events are clamped to it.
    /// The heap oracle's cancel watermark and the wheel's cursor both
    /// depend on it.
    fn schedule(&mut self, at: SimTime, seq: u64, dst: NodeId, ev: E) -> EventHandle;

    /// Cancel a previously scheduled event. Cancelling an event that
    /// already fired (or was already cancelled) is a harmless no-op.
    fn cancel(&mut self, h: EventHandle);

    /// Remove and return the earliest live event if its time is at or
    /// before `deadline`; otherwise leave the queue untouched and return
    /// `None`. Cancelled entries encountered on the way are reclaimed.
    fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, NodeId, E)>;

    /// Burst-formation pop: remove and return the next live event *only*
    /// when it is timestamped exactly `time`, addressed to `dst`, and
    /// accepted by `eligible` — otherwise leave the queue untouched and
    /// return `None`.
    ///
    /// Callers must pass the time of the event most recently returned by
    /// [`Self::pop_due`] (i.e. the kernel clock): both implementations rely
    /// on that to find same-instant peers cheaply, and it keeps the heap
    /// oracle's delivery watermark safe. The eligibility check runs *before*
    /// extraction, so a rejected event keeps its queue position (and stays
    /// cancellable). Dead entries at the head are reclaimed on the way, the
    /// same as `pop_due`.
    fn pop_due_matching(
        &mut self,
        time: SimTime,
        dst: NodeId,
        eligible: &mut dyn FnMut(&E) -> bool,
    ) -> Option<E>;

    /// Timestamp of the earliest live (non-cancelled) event, without
    /// mutating anything.
    fn next_time(&self) -> Option<SimTime>;

    /// Number of stored entries, *including* cancelled-but-unreclaimed ones.
    fn len(&self) -> usize;

    /// True when no entries (live or dead) are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of cancelled-but-not-yet-reclaimed entries. Bounded by the
    /// number of pending cancellations; regression-tested not to leak.
    fn cancelled_backlog(&self) -> usize;
}

// ---------------------------------------------------------------------------
// Timing wheel
// ---------------------------------------------------------------------------

/// Slots per level (one `u64` occupancy bitmap word per level).
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS; // 64
/// Wheel levels. Level `k` slots are `64^k` ns wide, so the wheel spans
/// `64^7` ns ≈ 73 minutes; events further out (by XOR distance) overflow to
/// a far-future heap and are promoted when the horizon window advances.
const LEVELS: usize = 7;
/// Bit position above which a timestamp is outside the wheel horizon.
const HORIZON_SHIFT: u32 = SLOT_BITS * LEVELS as u32; // 42

/// Arena entry. `ev` doubles as the liveness flag: `Some` = live,
/// `None` = cancelled (until reclaimed) or free.
struct Entry<E> {
    /// Bumped on every reclaim; handles carry the generation they were
    /// issued with, so stale handles are no-ops.
    gen: u64,
    key: u128,
    dst: NodeId,
    ev: Option<E>,
}

/// One wheel slot: entry indices in insertion order. `head` is the drain
/// cursor of the slot currently being delivered from (level 0 only);
/// everywhere else it is 0.
#[derive(Default)]
struct WheelSlot {
    entries: Vec<u32>,
    head: usize,
}

/// Far-future entry reference, min-ordered by key for the overflow heap.
struct OverflowRef {
    key: u128,
    idx: u32,
}

impl PartialEq for OverflowRef {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for OverflowRef {}
impl PartialOrd for OverflowRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OverflowRef {
    /// Reversed: `BinaryHeap` is a max-heap, so the earliest key pops first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key.cmp(&self.key)
    }
}

/// Hierarchical timing wheel with an overflow heap and O(1) in-place cancel.
///
/// Level assignment uses the XOR rule: an event at time `t` with the wheel
/// clock at `w` lives at the level of the highest bit of `t ^ w`. This puts
/// every event in a slot strictly ahead of the cursor at its level, and
/// guarantees that all level-`k` events expire before any level-`k+1` event,
/// so "find the next event" is a bitmap scan from the lowest occupied level.
/// Advancing the clock into a coarser slot's window *cascades* that slot:
/// its entries redistribute to finer levels (each entry moves at most
/// `LEVELS` times over its lifetime — O(1) amortized). Level-0 slots are a
/// single nanosecond wide, so entries within one slot share their timestamp
/// exactly and FIFO slot order *is* sequence order — no sorting anywhere.
pub struct TimingWheel<E> {
    /// `slots[level][slot]` — `LEVELS * SLOTS` buckets of entry indices.
    slots: Vec<WheelSlot>,
    /// Per-level occupancy bitmap (bit = slot has entries, live or dead).
    occupied: [u64; LEVELS],
    arena: Vec<Entry<E>>,
    free: Vec<u32>,
    overflow: BinaryHeap<OverflowRef>,
    /// Internal clock: every entry at time < `wheel_now` has been delivered
    /// or reclaimed. Never ahead of the kernel clock except transiently
    /// inside `pop_due` (bounded by its `deadline`).
    wheel_now: u64,
    /// Entries stored anywhere (wheel + overflow), live + dead.
    stored: usize,
    /// Cancelled entries not yet reclaimed.
    dead_pending: usize,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        TimingWheel {
            slots: (0..LEVELS * SLOTS).map(|_| WheelSlot::default()).collect(),
            occupied: [0; LEVELS],
            arena: Vec::new(),
            free: Vec::new(),
            overflow: BinaryHeap::new(),
            wheel_now: 0,
            stored: 0,
            dead_pending: 0,
        }
    }
}

impl<E> TimingWheel<E> {
    #[inline]
    fn slot_at(&mut self, level: usize, slot: usize) -> &mut WheelSlot {
        &mut self.slots[level * SLOTS + slot]
    }

    /// Allocate an arena entry; returns `(index, generation)`.
    fn alloc(&mut self, key: u128, dst: NodeId, ev: E) -> (u32, u64) {
        self.stored += 1;
        if let Some(idx) = self.free.pop() {
            let e = &mut self.arena[idx as usize];
            e.key = key;
            e.dst = dst;
            e.ev = Some(ev);
            (idx, e.gen)
        } else {
            let idx = self.arena.len() as u32;
            self.arena.push(Entry {
                gen: 0,
                key,
                dst,
                ev: Some(ev),
            });
            (idx, 0)
        }
    }

    /// Reclaim an entry (after delivery or dead-entry sweep): bump the
    /// generation so outstanding handles go stale, and recycle the index.
    fn release(&mut self, idx: u32) {
        let e = &mut self.arena[idx as usize];
        e.gen = e.gen.wrapping_add(1);
        e.ev = None;
        self.free.push(idx);
        self.stored -= 1;
    }

    /// Place an arena entry into the wheel (or the overflow heap) according
    /// to the XOR distance between its time and the current wheel clock.
    fn insert(&mut self, idx: u32) {
        let e = &self.arena[idx as usize];
        let t = (e.key >> 64) as u64;
        let key = e.key;
        debug_assert!(t >= self.wheel_now, "insert into the wheel's past");
        let x = t ^ self.wheel_now;
        if x >> HORIZON_SHIFT != 0 {
            self.overflow.push(OverflowRef { key, idx });
            return;
        }
        let level = if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / SLOT_BITS) as usize
        };
        let slot = ((t >> (SLOT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize;
        self.slot_at(level, slot).entries.push(idx);
        self.occupied[level] |= 1 << slot;
    }

    /// Advance the wheel clock. Crossing a horizon-window boundary promotes
    /// overflow entries that are now inside the wheel's span.
    fn advance_to(&mut self, t: u64) {
        let old = self.wheel_now;
        self.wheel_now = t;
        if (old ^ t) >> HORIZON_SHIFT != 0 {
            self.promote_overflow();
        }
    }

    /// Move overflow entries that fall inside the current horizon window
    /// into the wheel. They sort first in the overflow heap, so popping
    /// while the head matches the window is exhaustive — and pops come out
    /// in `(time, seq)` key order, so same-timestamp entries join their
    /// level-0 slot in seq order, preserving the slot-FIFO invariant.
    fn promote_overflow(&mut self) {
        let w = self.wheel_now;
        while let Some(top) = self.overflow.peek() {
            let idx = top.idx;
            let top_t = (top.key >> 64) as u64;
            if self.arena[idx as usize].ev.is_none() {
                self.overflow.pop();
                self.dead_pending -= 1;
                self.release(idx);
                continue;
            }
            if (top_t ^ w) >> HORIZON_SHIFT != 0 {
                break;
            }
            self.overflow.pop();
            self.insert(idx);
        }
    }

    /// Earliest occupied `(level, slot)` at or after the cursor, if any.
    #[inline]
    fn first_occupied(&self) -> Option<(usize, usize)> {
        for (level, &bits) in self.occupied.iter().enumerate() {
            if bits != 0 {
                // Invariant: slots behind the cursor are empty, so the
                // lowest set bit is the next slot in time order.
                debug_assert_eq!(
                    bits & ((1u64
                        << ((self.wheel_now >> (SLOT_BITS as usize * level))
                            & (SLOTS as u64 - 1)))
                        - 1),
                    0,
                    "stale wheel slots behind the cursor"
                );
                return Some((level, bits.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Start time of `slot` at `level` in the window containing `wheel_now`.
    #[inline]
    fn slot_base(&self, level: usize, slot: usize) -> u64 {
        let width = SLOT_BITS as usize * (level + 1);
        (self.wheel_now & !((1u64 << width) - 1)) | ((slot as u64) << (SLOT_BITS as usize * level))
    }

    /// Verify the wheel's bookkeeping invariants by brute force: every
    /// stored entry is referenced exactly once (slot tails + overflow),
    /// the dead count matches `dead_pending`, and occupancy bitmaps match
    /// slot contents. Used by the differential test; debug builds only.
    #[doc(hidden)]
    pub fn debug_audit(&self) {
        if cfg!(not(debug_assertions)) {
            return;
        }
        let mut refs = 0usize;
        let mut dead = 0usize;
        for (i, s) in self.slots.iter().enumerate() {
            let (level, slot) = (i / SLOTS, i % SLOTS);
            let live_refs = &s.entries[s.head..];
            assert_eq!(
                self.occupied[level] >> slot & 1 == 1,
                !s.entries.is_empty(),
                "occupancy bit out of sync at level {level} slot {slot}"
            );
            refs += live_refs.len();
            dead += live_refs
                .iter()
                .filter(|&&idx| self.arena[idx as usize].ev.is_none())
                .count();
        }
        refs += self.overflow.len();
        dead += self
            .overflow
            .iter()
            .filter(|o| self.arena[o.idx as usize].ev.is_none())
            .count();
        assert_eq!(refs, self.stored, "stored-entry count out of sync");
        assert_eq!(dead, self.dead_pending, "dead-entry count out of sync");
    }
}

impl<E> Scheduler<E> for TimingWheel<E> {
    fn schedule(&mut self, at: SimTime, seq: u64, dst: NodeId, ev: E) -> EventHandle {
        let key = event_key(at, seq);
        let (idx, gen) = self.alloc(key, dst, ev);
        self.insert(idx);
        EventHandle(((gen as u128) << 32) | idx as u128)
    }

    fn cancel(&mut self, h: EventHandle) {
        let idx = (h.0 & 0xffff_ffff) as usize;
        let gen = (h.0 >> 32) as u64;
        if let Some(e) = self.arena.get_mut(idx) {
            if e.gen == gen && e.ev.is_some() {
                e.ev = None; // dead in place; reclaimed when its slot drains
                self.dead_pending += 1;
            }
        }
    }

    fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, NodeId, E)> {
        let dl = deadline.as_nanos();
        loop {
            let Some((level, slot)) = self.first_occupied() else {
                // Wheel empty: the overflow heap (if any) holds the future.
                loop {
                    let Some(top) = self.overflow.peek() else {
                        if self.stored == 0 {
                            // Fully drained: rewind so the next schedule
                            // starts a fresh horizon from wherever the
                            // kernel clock is.
                            self.wheel_now = 0;
                        }
                        return None;
                    };
                    let idx = top.idx;
                    let t = (top.key >> 64) as u64;
                    if self.arena[idx as usize].ev.is_none() {
                        self.overflow.pop();
                        self.dead_pending -= 1;
                        self.release(idx);
                        continue;
                    }
                    if t > dl {
                        return None;
                    }
                    // Pull the head into the wheel *before* promoting its
                    // window peers: a same-timestamp peer has a higher seq
                    // and must land behind the head in their shared slot.
                    self.overflow.pop();
                    self.wheel_now = t;
                    self.insert(idx);
                    self.promote_overflow();
                    break;
                }
                continue;
            };
            let base = self.slot_base(level, slot);
            if base > dl {
                return None;
            }
            if level == 0 {
                // Level-0 slots are one nanosecond wide: every entry shares
                // the timestamp `base`, so insertion order is seq order.
                let bit = 1u64 << slot;
                loop {
                    let s = self.slot_at(0, slot);
                    if s.head >= s.entries.len() {
                        s.entries.clear();
                        s.head = 0;
                        self.occupied[0] &= !bit;
                        break;
                    }
                    let idx = s.entries[s.head];
                    s.head += 1;
                    if self.arena[idx as usize].ev.is_none() {
                        self.dead_pending -= 1;
                        self.release(idx);
                        continue;
                    }
                    self.advance_to(base);
                    let e = &mut self.arena[idx as usize];
                    debug_assert_eq!((e.key >> 64) as u64, base);
                    let ev = e.ev.take().expect("liveness checked above");
                    let dst = e.dst;
                    self.release(idx);
                    let s = self.slot_at(0, slot);
                    if s.head == s.entries.len() {
                        s.entries.clear();
                        s.head = 0;
                        self.occupied[0] &= !bit;
                    }
                    return Some((SimTime(base), dst, ev));
                }
            } else if self.slots[level * SLOTS + slot].entries.len() == 1 {
                // Single-entry fast path: the first occupied slot is the
                // earliest in the wheel, and overflow entries live in a
                // strictly later horizon window, so a lone live entry here
                // is the global minimum — deliver it without cascading.
                // This is the common shape for sparse simulations (one or
                // two events in flight), where a full cascade per event
                // would dominate the pop cost.
                let idx = self.slots[level * SLOTS + slot].entries[0];
                let e = &self.arena[idx as usize];
                if e.ev.is_none() {
                    self.slot_at(level, slot).entries.clear();
                    self.occupied[level] &= !(1u64 << slot);
                    self.dead_pending -= 1;
                    self.release(idx);
                    continue;
                }
                let t = (e.key >> 64) as u64;
                if t > dl {
                    return None;
                }
                self.slot_at(level, slot).entries.clear();
                self.occupied[level] &= !(1u64 << slot);
                self.advance_to(t);
                let e = &mut self.arena[idx as usize];
                let ev = e.ev.take().expect("liveness checked above");
                let dst = e.dst;
                self.release(idx);
                return Some((SimTime(t), dst, ev));
            } else {
                // Cascade: redistribute the coarse slot to finer levels.
                // Entries land strictly below `level`, so taking the Vec
                // and handing its (emptied) allocation back is safe.
                self.advance_to(base);
                let mut v = mem::take(&mut self.slot_at(level, slot).entries);
                self.occupied[level] &= !(1u64 << slot);
                for idx in v.drain(..) {
                    if self.arena[idx as usize].ev.is_none() {
                        self.dead_pending -= 1;
                        self.release(idx);
                    } else {
                        self.insert(idx);
                    }
                }
                self.slot_at(level, slot).entries = v;
            }
        }
    }

    fn pop_due_matching(
        &mut self,
        time: SimTime,
        dst: NodeId,
        eligible: &mut dyn FnMut(&E) -> bool,
    ) -> Option<E> {
        let t = time.as_nanos();
        // Same-timestamp peers always share a level-0 slot once the first
        // event at `t` has been delivered: delivery advanced the wheel clock
        // to `t` (XOR distance 0 ⇒ level 0), cascades and overflow promotion
        // land same-time entries in that slot in seq order, and the
        // single-entry fast path only fires when no peers exist. So the
        // whole probe is: look at the level-0 slot for `t`, past its drain
        // cursor.
        if self.wheel_now != t {
            return None;
        }
        let slot = (t & (SLOTS as u64 - 1)) as usize;
        let bit = 1u64 << slot;
        if self.occupied[0] & bit == 0 {
            return None;
        }
        loop {
            let s = &self.slots[slot];
            if s.head >= s.entries.len() {
                let s = self.slot_at(0, slot);
                s.entries.clear();
                s.head = 0;
                self.occupied[0] &= !bit;
                return None;
            }
            let idx = s.entries[s.head];
            if self.arena[idx as usize].ev.is_none() {
                self.slot_at(0, slot).head += 1;
                self.dead_pending -= 1;
                self.release(idx);
                continue;
            }
            let e = &self.arena[idx as usize];
            debug_assert_eq!((e.key >> 64) as u64, t, "level-0 slot holds a foreign time");
            if e.dst != dst || !eligible(e.ev.as_ref().expect("liveness checked above")) {
                return None;
            }
            let e = &mut self.arena[idx as usize];
            let ev = e.ev.take().expect("liveness checked above");
            self.release(idx);
            let s = self.slot_at(0, slot);
            s.head += 1;
            if s.head == s.entries.len() {
                s.entries.clear();
                s.head = 0;
                self.occupied[0] &= !bit;
            }
            return Some(ev);
        }
    }

    fn next_time(&self) -> Option<SimTime> {
        for level in 0..LEVELS {
            let mut bits = self.occupied[level];
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let s = &self.slots[level * SLOTS + slot];
                let best = s.entries[s.head..]
                    .iter()
                    .filter_map(|&idx| {
                        let e = &self.arena[idx as usize];
                        e.ev.is_some().then_some(e.key)
                    })
                    .min();
                if let Some(k) = best {
                    // Levels and (ahead-of-cursor) slots are time-ordered,
                    // so the first slot with a live entry holds the global
                    // minimum.
                    return Some(key_time(k));
                }
            }
        }
        self.overflow
            .iter()
            .filter(|o| self.arena[o.idx as usize].ev.is_some())
            .map(|o| o.key)
            .min()
            .map(key_time)
    }

    fn len(&self) -> usize {
        self.stored
    }

    fn cancelled_backlog(&self) -> usize {
        self.dead_pending
    }
}

// ---------------------------------------------------------------------------
// Binary-heap oracle
// ---------------------------------------------------------------------------

struct Scheduled<E> {
    /// `(time << 64) | seq` — one u128 comparison orders the heap.
    key: u128,
    dst: NodeId,
    ev: E,
}

impl<E> Scheduled<E> {
    #[inline]
    fn time(&self) -> SimTime {
        key_time(self.key)
    }

    #[inline]
    fn seq(&self) -> u64 {
        self.key as u64
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    /// Reversed on purpose: `BinaryHeap` is a max-heap, so inverting the key
    /// comparison makes `pop()` return the earliest `(time, seq)` without a
    /// `Reverse` wrapper on every element.
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key.cmp(&self.key)
    }
}

/// The pre-wheel scheduler: `BinaryHeap` ordered by `(time, seq)` key, lazy
/// cancellation through a tombstone set consulted on pop, and a delivery
/// watermark that turns cancels of already-fired events into no-ops.
///
/// O(log n) schedule/pop and O(1)-amortized (hashing) cancel. Kept as the
/// differential-testing oracle for [`TimingWheel`] and as the reference side
/// of the scheduler benches; `--features heap-sched` makes the kernel run on
/// it wholesale.
pub struct BinaryHeapSched<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// Tombstones for cancelled-but-not-yet-popped events, keyed by sequence
    /// number. Bounded by the number of pending cancellations.
    cancelled: FxHashSet<u64>,
    /// Key of the most recently popped event — the delivery watermark. Any
    /// handle at or below it has already been consumed.
    last_popped: u128,
}

impl<E> Default for BinaryHeapSched<E> {
    fn default() -> Self {
        BinaryHeapSched {
            heap: BinaryHeap::new(),
            cancelled: FxHashSet::default(),
            last_popped: 0,
        }
    }
}

impl<E> Scheduler<E> for BinaryHeapSched<E> {
    fn schedule(&mut self, at: SimTime, seq: u64, dst: NodeId, ev: E) -> EventHandle {
        let key = event_key(at, seq);
        self.heap.push(Scheduled { key, dst, ev });
        EventHandle(key)
    }

    fn cancel(&mut self, h: EventHandle) {
        if h == EventHandle::NULL {
            return;
        }
        if h.0 > self.last_popped {
            self.cancelled.insert(h.0 as u64);
        }
    }

    fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, NodeId, E)> {
        loop {
            let head = self.heap.peek()?;
            // The deadline check comes *before* tombstone purging: purging a
            // tombstone past the deadline would advance `last_popped` beyond
            // the kernel clock, and a later schedule under that watermark
            // would get a handle `cancel` wrongly treats as already fired.
            // Bounded by the deadline, every purged key stays at or below
            // any key a future schedule can produce.
            if head.time() > deadline {
                return None;
            }
            let item = self.heap.pop().expect("peeked head exists");
            self.last_popped = item.key;
            if !self.cancelled.is_empty() && self.cancelled.remove(&item.seq()) {
                continue;
            }
            return Some((item.time(), item.dst, item.ev));
        }
    }

    fn pop_due_matching(
        &mut self,
        time: SimTime,
        dst: NodeId,
        eligible: &mut dyn FnMut(&E) -> bool,
    ) -> Option<E> {
        loop {
            let head = self.heap.peek()?;
            if head.time() != time {
                return None;
            }
            // Purging a tombstoned head here is watermark-safe: `time` is
            // the kernel clock (the last `pop_due` timestamp), so the purged
            // key stays at or below any key a future schedule can produce.
            if !self.cancelled.is_empty() && self.cancelled.contains(&head.seq()) {
                let item = self.heap.pop().expect("peeked head exists");
                self.last_popped = item.key;
                self.cancelled.remove(&item.seq());
                continue;
            }
            if head.dst != dst || !eligible(&head.ev) {
                return None;
            }
            let item = self.heap.pop().expect("peeked head exists");
            self.last_popped = item.key;
            return Some(item.ev);
        }
    }

    fn next_time(&self) -> Option<SimTime> {
        let head = self.heap.peek()?;
        if self.cancelled.is_empty() || !self.cancelled.contains(&head.seq()) {
            return Some(head.time());
        }
        // Head is tombstoned and `&self` cannot pop it: scan for the live
        // minimum. Oracle-only cost — the wheel peeks via its bitmaps, and
        // the kernel's hot loop uses `pop_due`, not peek.
        self.heap
            .iter()
            .filter(|s| !self.cancelled.contains(&s.seq()))
            .map(|s| s.key)
            .min()
            .map(key_time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn cancelled_backlog(&self) -> usize {
        self.cancelled.len()
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn drain<S: Scheduler<u64>>(s: &mut S) -> Vec<(u64, NodeId, u64)> {
        let mut out = Vec::new();
        while let Some((t, dst, ev)) = s.pop_due(SimTime::MAX) {
            out.push((t.as_nanos(), dst, ev));
        }
        out
    }

    fn ordering_case<S: Scheduler<u64>>() {
        let mut s = S::default();
        // Out-of-order inserts across several wheel levels plus ties.
        let times = [5_000u64, 3, 3, 70_000_000, 64, 5_000, 0, 1_000_000_000];
        for (seq, &t) in times.iter().enumerate() {
            s.schedule(SimTime(t), seq as u64, seq % 3, seq as u64);
        }
        let got = drain(&mut s);
        let mut want: Vec<(u64, NodeId, u64)> = times
            .iter()
            .enumerate()
            .map(|(seq, &t)| (t, seq % 3, seq as u64))
            .collect();
        want.sort_by_key(|&(t, _, ev)| (t, ev));
        assert_eq!(got, want);
        assert!(s.is_empty());
    }

    #[test]
    fn both_schedulers_deliver_in_time_then_seq_order() {
        ordering_case::<TimingWheel<u64>>();
        ordering_case::<BinaryHeapSched<u64>>();
    }

    #[test]
    fn wheel_far_future_overflow_promotes() {
        let mut s = TimingWheel::<u64>::default();
        let far = 1u64 << 50; // well beyond the 2^42 ns horizon
        s.schedule(SimTime(far + 7), 0, 0, 0);
        s.schedule(SimTime(far), 1, 0, 1);
        s.schedule(SimTime(100), 2, 0, 2);
        assert_eq!(s.next_time(), Some(SimTime(100)));
        assert_eq!(
            drain(&mut s),
            vec![(100, 0, 2), (far, 0, 1), (far + 7, 0, 0)]
        );
    }

    #[test]
    fn wheel_schedule_after_horizon_crossing_orders_against_promoted() {
        let mut s = TimingWheel::<u64>::default();
        let far = (1u64 << HORIZON_SHIFT) + 500;
        s.schedule(SimTime(far), 0, 0, 0);
        s.schedule(SimTime(10), 1, 0, 1);
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(10), 0, 1)));
        // The kernel clock is now 10; schedule past the horizon boundary but
        // *after* the overflow event — delivery order must stay by time.
        s.schedule(SimTime(far + 100), 2, 0, 2);
        s.schedule(SimTime(far - 100), 3, 0, 3);
        assert_eq!(
            drain(&mut s),
            vec![(far - 100, 0, 3), (far, 0, 0), (far + 100, 0, 2)]
        );
    }

    fn cancel_case<S: Scheduler<u64>>() {
        let mut s = S::default();
        let h0 = s.schedule(SimTime(10), 0, 0, 0);
        let h1 = s.schedule(SimTime(20), 1, 0, 1);
        let _h2 = s.schedule(SimTime(30), 2, 0, 2);
        s.cancel(h1);
        s.cancel(h1); // double-cancel is a no-op
        assert_eq!(s.cancelled_backlog(), 1);
        assert_eq!(s.next_time(), Some(SimTime(10)));
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(10), 0, 0)));
        s.cancel(h0); // already fired: no-op, no backlog growth
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(30), 0, 2)));
        assert!(s.pop_due(SimTime::MAX).is_none());
        assert_eq!(s.cancelled_backlog(), 0, "reclaim must drain tombstones");
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn both_schedulers_cancel_identically() {
        cancel_case::<TimingWheel<u64>>();
        cancel_case::<BinaryHeapSched<u64>>();
    }

    #[test]
    fn wheel_next_time_skips_dead_head() {
        let mut s = TimingWheel::<u64>::default();
        let h = s.schedule(SimTime(5_000), 0, 0, 0);
        s.schedule(SimTime(8_000), 1, 0, 1);
        s.cancel(h);
        assert_eq!(s.next_time(), Some(SimTime(8_000)));
    }

    #[test]
    fn wheel_handle_generations_survive_slot_reuse() {
        let mut s = TimingWheel::<u64>::default();
        let h = s.schedule(SimTime(10), 0, 0, 0);
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(10), 0, 0)));
        // The arena slot is recycled for a new event; the stale handle must
        // not be able to cancel it.
        let _h2 = s.schedule(SimTime(20), 1, 0, 1);
        s.cancel(h);
        assert_eq!(s.cancelled_backlog(), 0);
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(20), 0, 1)));
    }

    fn deadline_case<S: Scheduler<u64>>() {
        let mut s = S::default();
        s.schedule(SimTime(1_000), 0, 0, 0);
        s.schedule(SimTime(2_000), 1, 0, 1);
        assert!(s.pop_due(SimTime(999)).is_none());
        assert_eq!(s.pop_due(SimTime(1_000)), Some((SimTime(1_000), 0, 0)));
        assert!(s.pop_due(SimTime(1_500)).is_none());
        // pop_due beyond a deadline must not corrupt later scheduling near
        // the untaken event.
        s.schedule(SimTime(1_500), 2, 0, 2);
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(1_500), 0, 2)));
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(2_000), 0, 1)));
    }

    #[test]
    fn both_schedulers_respect_deadlines() {
        deadline_case::<TimingWheel<u64>>();
        deadline_case::<BinaryHeapSched<u64>>();
    }

    #[test]
    fn wheel_zero_delay_events_join_the_draining_slot() {
        // An event scheduled at exactly the time being delivered must fire
        // in the same instant, after earlier-seq entries.
        let mut s = TimingWheel::<u64>::default();
        s.schedule(SimTime(100), 0, 0, 0);
        s.schedule(SimTime(100), 1, 0, 1);
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(100), 0, 0)));
        s.schedule(SimTime(100), 2, 0, 2); // "zero-delay" from a handler
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(100), 0, 1)));
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(100), 0, 2)));
        assert!(s.pop_due(SimTime::MAX).is_none());
    }

    fn max_time_ties_case<S: Scheduler<u64>>() {
        // Saturated timestamps: several events at exactly `SimTime::MAX`
        // (far outside the wheel horizon, so they ride the overflow heap)
        // must still deliver in seq order. Regression test: pulling the
        // overflow head into the wheel used to promote its same-window
        // peers first, putting later seqs ahead of it in the shared slot.
        let mut s = S::default();
        for seq in 0..4 {
            s.schedule(SimTime::MAX, seq, 0, seq);
        }
        let got = drain(&mut s);
        let want: Vec<_> = (0..4).map(|seq| (u64::MAX, 0, seq)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn both_schedulers_order_saturated_max_time_ties() {
        max_time_ties_case::<TimingWheel<u64>>();
        max_time_ties_case::<BinaryHeapSched<u64>>();
    }

    fn matching_case<S: Scheduler<u64>>() {
        let mut s = S::default();
        // Three same-time events to node 0, a same-time event to node 1
        // wedged between them in seq order, and a later event.
        s.schedule(SimTime(100), 0, 0, 10);
        s.schedule(SimTime(100), 1, 0, 11);
        s.schedule(SimTime(100), 2, 1, 20);
        s.schedule(SimTime(100), 3, 0, 12);
        s.schedule(SimTime(200), 4, 0, 13);
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(100), 0, 10)));
        // Collect the same-instant run for node 0: stops at the node-1
        // event even though a later node-0 event is also due at t=100.
        assert_eq!(s.pop_due_matching(SimTime(100), 0, &mut |_| true), Some(11));
        assert_eq!(s.pop_due_matching(SimTime(100), 0, &mut |_| true), None);
        // An ineligible head stays queued and still delivers via pop_due.
        assert_eq!(s.pop_due_matching(SimTime(100), 1, &mut |_| false), None);
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(100), 1, 20)));
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(100), 0, 12)));
        // Never crosses a timestamp boundary.
        assert_eq!(s.pop_due_matching(SimTime(100), 0, &mut |_| true), None);
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(200), 0, 13)));
        assert!(s.pop_due(SimTime::MAX).is_none());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn both_schedulers_pop_matching_identically() {
        matching_case::<TimingWheel<u64>>();
        matching_case::<BinaryHeapSched<u64>>();
    }

    fn matching_reclaims_dead_case<S: Scheduler<u64>>() {
        let mut s = S::default();
        s.schedule(SimTime(50), 0, 0, 0);
        let h = s.schedule(SimTime(50), 1, 0, 1);
        s.schedule(SimTime(50), 2, 0, 2);
        s.cancel(h);
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(50), 0, 0)));
        // The cancelled peer is reclaimed on the way to the live one.
        assert_eq!(s.pop_due_matching(SimTime(50), 0, &mut |_| true), Some(2));
        assert_eq!(s.pop_due_matching(SimTime(50), 0, &mut |_| true), None);
        assert_eq!(s.cancelled_backlog(), 0);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn both_schedulers_pop_matching_reclaims_dead_peers() {
        matching_reclaims_dead_case::<TimingWheel<u64>>();
        matching_reclaims_dead_case::<BinaryHeapSched<u64>>();
    }

    fn matching_after_overflow_case<S: Scheduler<u64>>() {
        // Same-time peers that arrived via the far-future overflow path
        // must be burst-collectable after the first pop, in seq order.
        let mut s = S::default();
        let far = 1u64 << 50;
        for seq in 0..4 {
            s.schedule(SimTime(far), seq, 0, seq);
        }
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime(far), 0, 0)));
        for want in 1..4 {
            assert_eq!(
                s.pop_due_matching(SimTime(far), 0, &mut |_| true),
                Some(want)
            );
        }
        assert_eq!(s.pop_due_matching(SimTime(far), 0, &mut |_| true), None);
    }

    #[test]
    fn both_schedulers_pop_matching_after_overflow_promotion() {
        matching_after_overflow_case::<TimingWheel<u64>>();
        matching_after_overflow_case::<BinaryHeapSched<u64>>();
    }

    #[test]
    fn wheel_rewinds_after_full_drain() {
        let mut s = TimingWheel::<u64>::default();
        let h = s.schedule(SimTime::from_secs(60), 0, 0, 0);
        s.cancel(h);
        assert!(s.pop_due(SimTime::MAX).is_none());
        // A fresh event earlier than the cancelled one must be schedulable
        // (the internal clock rewound on empty).
        s.schedule(SimTime::from_secs(1), 1, 0, 1);
        assert_eq!(s.pop_due(SimTime::MAX), Some((SimTime::from_secs(1), 0, 1)));
        let _ = SimDuration::ZERO;
    }
}
