//! # fastrak-sim
//!
//! Deterministic discrete-event simulation (DES) engine used by the FasTrak
//! reproduction to stand in for the paper's physical testbed (servers, NICs,
//! a ToR switch, and the Linux/kvm/OVS software stack).
//!
//! The engine is deliberately small and fully deterministic:
//!
//! * [`kernel::Kernel`] owns a set of [`kernel::Node`]s (one per physical
//!   server / switch / controller) and a time-ordered event queue. Events are
//!   delivered to one node at a time; nodes interact only through events, so
//!   every run with the same seed replays identically.
//! * [`time`] provides nanosecond-resolution simulated time.
//! * [`rng::Rng`] is a self-contained xoshiro256** PRNG with the handful of
//!   distributions the workloads need (deterministic across platforms, unlike
//!   hashing-based seeds).
//! * [`cpu::CpuPool`] models a pool of logical CPUs as a multi-server FIFO
//!   queue with *analytic enqueue*: callers ask "when will this work
//!   complete?" and schedule their own continuation, which keeps the hot path
//!   allocation-free.
//! * [`tbf::TokenBucket`] models `tc` htb-style rate limiting.
//! * [`stats`] provides counters and an HDR-style log-bucketed histogram for
//!   latency percentiles.
//!
//! The engine is synchronous and single-threaded by design: the paper's
//! experiments need reproducibility and causal ordering far more than wall
//! clock speed, and a single seeded run of the largest experiment finishes in
//! well under a second of host time.

pub mod chaos;
pub mod cpu;
pub mod fault;
pub mod kernel;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod tbf;
pub mod time;
pub mod trace;

/// The fast deterministic hasher now lives in `fastrak-telemetry` (the
/// bottom of the dependency stack); re-exported so `fastrak_sim::fxhash::*`
/// paths keep working.
pub use fastrak_telemetry::fxhash;

pub use chaos::{ChaosConfig, ChaosCounters, ChaosPlane};
pub use cpu::CpuPool;
pub use fault::{FaultConfig, FaultDecision, FaultLayer, FaultPlane, LinkFaults};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use kernel::{Api, EventHandle, Kernel, Node, NodeId};
pub use queue::{DropTailQueue, QueueDropStats};
pub use rng::Rng;
pub use sched::{BinaryHeapSched, Scheduler, TimingWheel};
pub use stats::{Counter, FaultCounters, Histogram, HistogramDurationExt, MeterRate, TimeWeighted};
pub use tbf::TokenBucket;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceRecord, TraceRing};
