//! The discrete-event kernel: a time-ordered event queue plus a set of nodes.
//!
//! A **node** models one independently scheduled entity — in this repository a
//! physical server (with its VMs, vswitch and NIC inside), a ToR switch, the
//! fabric core, or a controller process. Nodes interact exclusively by
//! sending each other timestamped events through [`Api::send`], which keeps
//! the simulation deterministic and makes causality auditable in traces.
//!
//! The kernel is generic over the event type `E` and a shared context `C`
//! (topology, global configuration, metric registries). Event delivery order
//! is total: ties on timestamp break by schedule order (FIFO), so repeated
//! runs replay identically.
//!
//! Event storage is delegated to [`crate::sched`]: a hierarchical
//! [`crate::sched::TimingWheel`] by default (O(1) amortized schedule/expire,
//! O(1) in-place cancel), or the retained
//! [`crate::sched::BinaryHeapSched`] oracle when the crate is built with
//! `--features heap-sched`. Both deliver the identical total order, which
//! `tests/sched_differential.rs` and `tests/determinism.rs` pin down.

use std::any::Any;

use crate::fault::{FaultDecision, FaultLayer};
use crate::rng::Rng;
use crate::sched::Scheduler;
use crate::time::{SimDuration, SimTime};

pub use crate::sched::EventHandle;

/// Index of a node registered with the kernel.
pub type NodeId = usize;

/// Maximum events collected into one burst — the VPP-style vector size.
/// Bounding it keeps a pathological same-instant pileup from starving the
/// rest of the slot and caps the reusable buffer's working set.
pub const MAX_BURST: usize = 64;

/// The scheduler the kernel runs on. The timing wheel is the default; the
/// `heap-sched` feature swaps in the binary-heap oracle so the whole
/// simulation (tests, experiments) can be replayed on it for differential
/// validation.
#[cfg(not(feature = "heap-sched"))]
type SchedImpl<E> = crate::sched::TimingWheel<E>;
#[cfg(feature = "heap-sched")]
type SchedImpl<E> = crate::sched::BinaryHeapSched<E>;

/// A simulated entity that receives timestamped events.
pub trait Node<E, C>: Any {
    /// Handle one event addressed to this node. `api` gives access to the
    /// clock, shared context, RNG, and event scheduling.
    fn on_event(&mut self, ev: E, api: &mut Api<'_, E, C>);

    /// May `ev` be collected into a same-instant burst for this node?
    ///
    /// The kernel asks *before* extracting an event from the scheduler, so
    /// an ineligible event keeps its queue position and stays cancellable.
    /// Only opt in event kinds that are never cancelled after being sent
    /// (data-plane frames); timers and control messages must stay out.
    /// Default: nothing is burst-eligible.
    fn burst_eligible(&self, _ev: &E) -> bool {
        false
    }

    /// Handle a burst of ≥ 2 events that share one timestamp, in schedule
    /// order. The default drains the burst through [`Node::on_event`] —
    /// semantically, batching is only ever an amortization of the scalar
    /// path, so any override must produce bit-identical behavior to this
    /// default (the `scalar-datapath` differential builds enforce it).
    fn on_burst(&mut self, evs: &mut Vec<E>, api: &mut Api<'_, E, C>) {
        for ev in evs.drain(..) {
            self.on_event(ev, api);
        }
    }

    /// Human-readable name for traces and panics. Borrowed, not allocated:
    /// callers that need an owned copy (the kernel's name registry, trace
    /// records) pay for it explicitly.
    fn name(&self) -> &str {
        "node"
    }
}

/// The one place events enter the scheduler: applies fault injection (when
/// a layer is attached and the send crosses nodes), clamps past timestamps
/// to `now`, assigns the FIFO tie-break sequence number, and inserts. Both
/// [`Api::send_at`] and [`Kernel::post`] funnel through here so the
/// (time, seq) total order has a single owner.
///
/// `src` is `Some` only for node-originated sends ([`Api::send_at`]);
/// harness-level [`Kernel::post`] passes `None` and is never faulted, and
/// self-sends (timers) are exempt because they model node-internal
/// scheduling, not network messages. A dropped event returns
/// [`EventHandle::NULL`], which `cancel` treats as a no-op.
#[inline]
#[allow(clippy::too_many_arguments)] // the kernel's single scheduling funnel
fn schedule_event<E>(
    sched: &mut SchedImpl<E>,
    next_seq: &mut u64,
    fault: &mut Option<FaultLayer<E>>,
    now: SimTime,
    src: Option<NodeId>,
    dst: NodeId,
    at: SimTime,
    ev: E,
) -> EventHandle {
    let mut at = at.max(now);
    let mut dup: Option<(E, SimTime)> = None;
    if let (Some(layer), Some(src)) = (fault.as_mut(), src) {
        // Component outages first: a dark ToR or flapping link blackholes
        // data-plane frames outright (no RNG — the chaos plane is scripted).
        if !layer.plane.chaos.is_idle()
            && src != dst
            && (layer.is_frame)(&ev)
            && layer.plane.chaos.frame_blocked(src, dst, now)
        {
            return EventHandle::NULL;
        }
        if !layer.plane.is_idle() && src != dst && (layer.classify)(&ev) {
            match layer.plane.decide(src, dst, now) {
                FaultDecision::Deliver => {}
                FaultDecision::Drop => return EventHandle::NULL,
                FaultDecision::Delay(extra) => at += extra,
                FaultDecision::DeliverAndDuplicate(extra) => {
                    dup = (layer.duplicate)(&ev).map(|copy| (copy, at + extra));
                }
            }
        }
    }
    let seq = *next_seq;
    *next_seq += 1;
    let handle = sched.schedule(at, seq, dst, ev);
    if let Some((copy, dup_at)) = dup {
        let seq = *next_seq;
        *next_seq += 1;
        sched.schedule(dup_at, seq, dst, copy);
    }
    handle
}

/// Per-event view handed to [`Node::on_event`].
///
/// Splitting the kernel into `Api` + the node being delivered to lets the
/// node mutate itself while scheduling follow-up events, without interior
/// mutability.
pub struct Api<'a, E, C> {
    /// Current simulated time.
    pub now: SimTime,
    /// The node currently handling an event.
    pub self_id: NodeId,
    /// Shared simulation context (topology, config, metrics).
    pub ctx: &'a mut C,
    /// Deterministic RNG (one shared stream; fork per node for isolation).
    pub rng: &'a mut Rng,
    sched: &'a mut SchedImpl<E>,
    next_seq: &'a mut u64,
    fault: &'a mut Option<FaultLayer<E>>,
    cancels_requested: &'a mut u64,
}

impl<'a, E, C> Api<'a, E, C> {
    /// Schedule `ev` for delivery to `dst` after `delay`.
    pub fn send(&mut self, dst: NodeId, delay: SimDuration, ev: E) -> EventHandle {
        self.send_at(dst, self.now + delay, ev)
    }

    /// Schedule `ev` for delivery to `dst` at absolute time `at` (clamped to
    /// now if in the past). Subject to fault injection when a layer is
    /// attached and `dst` is another node; a dropped message returns
    /// [`EventHandle::NULL`] (cancel-safe, refers to nothing).
    pub fn send_at(&mut self, dst: NodeId, at: SimTime, ev: E) -> EventHandle {
        schedule_event(
            self.sched,
            self.next_seq,
            self.fault,
            self.now,
            Some(self.self_id),
            dst,
            at,
            ev,
        )
    }

    /// True when a scripted fault window (see [`crate::fault`]) forces the
    /// current hardware rule install to fail. Always false when no fault
    /// layer is attached.
    pub fn fault_forces_install_failure(&mut self) -> bool {
        match self.fault.as_mut() {
            Some(layer) => layer.plane.install_should_fail(self.now),
            None => false,
        }
    }

    /// This node's chaos boot epoch (number of scripted ToR reboots that
    /// have started). 0 when no fault layer or chaos script is attached.
    /// The switch model wipes hardware state when the value changes.
    pub fn chaos_tor_boot_epoch(&self) -> u64 {
        match self.fault.as_ref() {
            Some(layer) => layer.plane.chaos.tor_boot_epoch(self.self_id, self.now),
            None => 0,
        }
    }

    /// Is this node (a ToR) currently inside a scripted outage window?
    pub fn chaos_tor_dark(&self) -> bool {
        match self.fault.as_ref() {
            Some(layer) => layer.plane.chaos.tor_dark(self.self_id, self.now),
            None => false,
        }
    }

    /// Is `node`'s SR-IOV hardware path currently scripted dark? Queried by
    /// the server for itself and by its local controller (a different node)
    /// standing in for NIC health registers.
    pub fn chaos_vf_down_at(&self, node: NodeId) -> bool {
        match self.fault.as_ref() {
            Some(layer) => layer.plane.chaos.vf_down(node, self.now),
            None => false,
        }
    }

    /// This node's chaos restart epoch (number of scripted controller
    /// crash+restart instants that have passed). 0 when nothing is
    /// attached. The controller model wipes volatile state on change.
    pub fn chaos_ctrl_restart_epoch(&self) -> u64 {
        match self.fault.as_ref() {
            Some(layer) => layer.plane.chaos.ctrl_restart_epoch(self.self_id, self.now),
            None => 0,
        }
    }

    /// Schedule an event to this node itself (timer idiom).
    pub fn timer(&mut self, delay: SimDuration, ev: E) -> EventHandle {
        self.send(self.self_id, delay, ev)
    }

    /// Cancel a previously scheduled event in O(1). Cancelling an event that
    /// already fired is a harmless no-op (the wheel's generation stamp — or
    /// the oracle's delivery watermark — proves the event is gone).
    pub fn cancel(&mut self, h: EventHandle) {
        *self.cancels_requested += 1;
        self.sched.cancel(h);
    }
}

/// The simulation kernel: nodes + event scheduler + clock.
pub struct Kernel<E, C> {
    nodes: Vec<Option<Box<dyn NodeObj<E, C>>>>,
    names: Vec<String>,
    sched: SchedImpl<E>,
    now: SimTime,
    next_seq: u64,
    events_processed: u64,
    cancels_requested: u64,
    /// Deliver same-instant eligible event runs as bursts (see
    /// [`Node::on_burst`]). Defaults on; the `scalar-datapath` oracle build
    /// defaults off, and [`Kernel::set_burst_delivery`] flips it at runtime
    /// for same-binary differential tests.
    burst_enabled: bool,
    /// Reusable burst collection buffer (allocation-free steady state).
    burst_buf: Vec<E>,
    bursts_formed: u64,
    burst_events: u64,
    fault: Option<FaultLayer<E>>,
    /// Shared context available to every node during event handling.
    pub ctx: C,
    /// Root RNG stream.
    pub rng: Rng,
}

/// Object-safe shim adding `Any`-based downcasting on top of [`Node`].
trait NodeObj<E, C> {
    fn on_event_obj(&mut self, ev: E, api: &mut Api<'_, E, C>);
    fn burst_eligible_obj(&self, ev: &E) -> bool;
    fn on_burst_obj(&mut self, evs: &mut Vec<E>, api: &mut Api<'_, E, C>);
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn as_any(&self) -> &dyn Any;
}

impl<E, C, T: Node<E, C>> NodeObj<E, C> for T {
    fn on_event_obj(&mut self, ev: E, api: &mut Api<'_, E, C>) {
        self.on_event(ev, api)
    }
    fn burst_eligible_obj(&self, ev: &E) -> bool {
        self.burst_eligible(ev)
    }
    fn on_burst_obj(&mut self, evs: &mut Vec<E>, api: &mut Api<'_, E, C>) {
        self.on_burst(evs, api)
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

thread_local! {
    /// Per-thread override for the burst-delivery default of newly built
    /// kernels (see [`set_burst_delivery_default`]).
    static BURST_DELIVERY_DEFAULT: std::cell::Cell<Option<bool>> =
        const { std::cell::Cell::new(None) };
}

/// Override the burst-delivery default for kernels subsequently constructed
/// on this thread; `None` restores the build default (on, unless the
/// `scalar-datapath` oracle feature is active). Differential tests use this
/// to drive whole experiment worlds — which build their kernels internally —
/// through both delivery modes in one binary. Thread-local, so parallel
/// tests cannot race each other.
pub fn set_burst_delivery_default(v: Option<bool>) {
    BURST_DELIVERY_DEFAULT.with(|c| c.set(v));
}

/// The burst-delivery setting newly constructed kernels start with.
pub fn default_burst_delivery() -> bool {
    BURST_DELIVERY_DEFAULT
        .with(|c| c.get())
        .unwrap_or(cfg!(not(feature = "scalar-datapath")))
}

impl<E, C> Kernel<E, C> {
    /// Create a kernel with the given shared context and RNG seed.
    pub fn new(ctx: C, seed: u64) -> Self {
        Kernel {
            nodes: Vec::new(),
            names: Vec::new(),
            sched: SchedImpl::default(),
            now: SimTime::ZERO,
            next_seq: 0,
            events_processed: 0,
            cancels_requested: 0,
            burst_enabled: default_burst_delivery(),
            burst_buf: Vec::new(),
            bursts_formed: 0,
            burst_events: 0,
            fault: None,
            ctx,
            rng: Rng::new(seed),
        }
    }

    /// Register a node; returns its id. Ids are dense and assigned in
    /// registration order (experiments rely on this for readable traces).
    pub fn add_node<T: Node<E, C>>(&mut self, node: T) -> NodeId {
        let id = self.nodes.len();
        self.names.push(node.name().to_string());
        self.nodes.push(Some(Box::new(node)));
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Registered name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id]
    }

    /// Schedule an event from outside any node (harness setup). Never
    /// subject to fault injection — the harness is not a simulated link.
    pub fn post(&mut self, dst: NodeId, at: SimTime, ev: E) -> EventHandle {
        schedule_event(
            &mut self.sched,
            &mut self.next_seq,
            &mut self.fault,
            self.now,
            None,
            dst,
            at,
            ev,
        )
    }

    /// Attach (or replace) the fault-injection layer. With no layer — or a
    /// layer whose probabilities are all zero — the send path is untouched
    /// and runs replay identically.
    pub fn set_fault_layer(&mut self, layer: FaultLayer<E>) {
        self.fault = Some(layer);
    }

    /// The attached fault plane, if any (experiments read its counters).
    pub fn fault_plane(&self) -> Option<&crate::fault::FaultPlane> {
        self.fault.as_ref().map(|l| &l.plane)
    }

    /// Mutable access to the attached fault plane, if any.
    pub fn fault_plane_mut(&mut self) -> Option<&mut crate::fault::FaultPlane> {
        self.fault.as_mut().map(|l| &mut l.plane)
    }

    /// Cancel an event scheduled via [`Kernel::post`] or [`Api::send`].
    /// Cancelling an event that already fired is a no-op and leaves no state
    /// behind.
    pub fn cancel(&mut self, h: EventHandle) {
        self.cancels_requested += 1;
        self.sched.cancel(h);
    }

    /// Total cancel requests (including no-op cancels of already-fired
    /// events) — a telemetry counter, not scheduler state.
    pub fn cancels_requested(&self) -> u64 {
        self.cancels_requested
    }

    /// Turn same-instant burst delivery on or off at runtime. Both settings
    /// produce bit-identical runs (the differential suites pin this); the
    /// toggle exists so one binary can compare them.
    pub fn set_burst_delivery(&mut self, on: bool) {
        self.burst_enabled = on;
    }

    /// Is burst delivery currently enabled?
    pub fn burst_delivery(&self) -> bool {
        self.burst_enabled
    }

    /// Bursts (≥ 2 events) delivered via [`Node::on_burst`].
    pub fn bursts_formed(&self) -> u64 {
        self.bursts_formed
    }

    /// Events delivered inside those bursts.
    pub fn burst_events(&self) -> u64 {
        self.burst_events
    }

    /// Immutable typed access to a node (harness inspection between events).
    ///
    /// # Panics
    /// Panics if the id is invalid or the concrete type does not match.
    pub fn node<T: Node<E, C>>(&self, id: NodeId) -> &T {
        self.nodes[id]
            .as_ref()
            .unwrap_or_else(|| panic!("node {id} is mid-delivery"))
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("node {id} has unexpected type"))
    }

    /// Mutable typed access to a node (harness configuration between events).
    ///
    /// # Panics
    /// Panics if the id is invalid or the concrete type does not match.
    pub fn node_mut<T: Node<E, C>>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id]
            .as_mut()
            .unwrap_or_else(|| panic!("node {id} is mid-delivery"))
            .as_any_mut()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("node {id} has unexpected type"))
    }

    /// Typed access to two distinct nodes at once.
    pub fn node_pair_mut<A: Node<E, C>, B: Node<E, C>>(
        &mut self,
        a: NodeId,
        b: NodeId,
    ) -> (&mut A, &mut B) {
        assert_ne!(a, b, "node_pair_mut requires distinct ids");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (left, right) = self.nodes.split_at_mut(hi);
        let lo_ref = left[lo].as_mut().expect("node mid-delivery").as_any_mut();
        let hi_ref = right[0].as_mut().expect("node mid-delivery").as_any_mut();
        if a < b {
            (
                lo_ref.downcast_mut::<A>().expect("type mismatch"),
                hi_ref.downcast_mut::<B>().expect("type mismatch"),
            )
        } else {
            (
                hi_ref.downcast_mut::<A>().expect("type mismatch"),
                lo_ref.downcast_mut::<B>().expect("type mismatch"),
            )
        }
    }

    /// Deliver the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.step_due(SimTime::MAX)
    }

    /// Deliver the next event if it is due at or before `deadline`.
    /// Returns `false` when nothing (live) is due.
    ///
    /// When burst delivery is on and the popped event is burst-eligible for
    /// its node, the scheduler is probed for same-instant eligible peers
    /// addressed to the same node (a seq-order prefix, up to [`MAX_BURST`])
    /// and the run is handed to [`Node::on_burst`] in one call. Collection
    /// happens before the node runs, so anything the node schedules —
    /// including zero-delay self-sends — carries a higher seq and sorts
    /// after the collected run, exactly as it would under scalar delivery.
    fn step_due(&mut self, deadline: SimTime) -> bool {
        let Some((time, dst, ev)) = self.sched.pop_due(deadline) else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue time went backwards");
        self.now = time;
        self.events_processed += 1;
        let mut node = self.nodes[dst]
            .take()
            .unwrap_or_else(|| panic!("node {dst} delivered to recursively"));
        if self.burst_enabled && node.burst_eligible_obj(&ev) {
            let mut buf = std::mem::take(&mut self.burst_buf);
            debug_assert!(buf.is_empty());
            buf.push(ev);
            while buf.len() < MAX_BURST {
                let Some(peer) = self
                    .sched
                    .pop_due_matching(time, dst, &mut |e| node.burst_eligible_obj(e))
                else {
                    break;
                };
                buf.push(peer);
            }
            self.events_processed += buf.len() as u64 - 1;
            {
                let mut api = Api {
                    now: self.now,
                    self_id: dst,
                    ctx: &mut self.ctx,
                    rng: &mut self.rng,
                    sched: &mut self.sched,
                    next_seq: &mut self.next_seq,
                    fault: &mut self.fault,
                    cancels_requested: &mut self.cancels_requested,
                };
                if buf.len() >= 2 {
                    self.bursts_formed += 1;
                    self.burst_events += buf.len() as u64;
                    node.on_burst_obj(&mut buf, &mut api);
                } else {
                    // A burst of one IS the scalar path — by construction,
                    // not by convention.
                    let ev = buf.pop().expect("holds the popped event");
                    node.on_event_obj(ev, &mut api);
                }
            }
            buf.clear();
            self.burst_buf = buf;
        } else {
            let mut api = Api {
                now: self.now,
                self_id: dst,
                ctx: &mut self.ctx,
                rng: &mut self.rng,
                sched: &mut self.sched,
                next_seq: &mut self.next_seq,
                fault: &mut self.fault,
                cancels_requested: &mut self.cancels_requested,
            };
            node.on_event_obj(ev, &mut api);
        }
        self.nodes[dst] = Some(node);
        true
    }

    /// Run until the queue is empty or simulated time would pass `deadline`.
    /// Events at exactly `deadline` are delivered.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.step_due(deadline) {}
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run until the event queue drains completely.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Timestamp of the next pending (non-cancelled) event, if any.
    ///
    /// Borrowing `&self` only: the wheel peeks through its occupancy bitmaps
    /// (and the heap oracle scans past tombstoned heads), so inspection
    /// never perturbs scheduler state.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.sched.next_time()
    }

    /// Number of pending events (including cancelled-but-unreclaimed ones).
    pub fn pending_events(&self) -> usize {
        self.sched.len()
    }

    /// Number of outstanding cancellation tombstones. Bounded by the number
    /// of cancelled-but-not-yet-reclaimed events; exposed so tests can
    /// assert the backlog does not leak across long runs.
    pub fn cancelled_backlog(&self) -> usize {
        self.sched.cancelled_backlog()
    }

    /// Mirror kernel-level counters (and the fault plane's, when attached)
    /// into a telemetry registry under `sim.*`.
    ///
    /// Pull model: called at snapshot time by the harness, so the event loop
    /// itself carries no registry writes. Values are absolute overwrites —
    /// the kernel's own fields stay the single source of truth.
    pub fn publish_telemetry_into(&self, reg: &mut fastrak_telemetry::Registry) {
        let c = reg.counter("sim.kernel.events_processed", &[]);
        reg.set_counter(c, self.events_processed);
        let c = reg.counter("sim.kernel.cancels_requested", &[]);
        reg.set_counter(c, self.cancels_requested);
        let c = reg.counter("sim.kernel.bursts_formed", &[]);
        reg.set_counter(c, self.bursts_formed);
        let c = reg.counter("sim.kernel.burst_events", &[]);
        reg.set_counter(c, self.burst_events);
        let g = reg.gauge("sim.kernel.pending_events", &[]);
        reg.gauge_set(g, self.pending_events() as f64);
        let g = reg.gauge("sim.kernel.cancelled_backlog", &[]);
        reg.gauge_set(g, self.cancelled_backlog() as f64);
        if let Some(plane) = self.fault_plane() {
            plane.stats.publish_into(reg);
            plane.chaos.stats.publish_into(reg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Tick,
    }

    #[derive(Default)]
    struct Ctx {
        log: Vec<(u64, usize, u32)>,
    }

    struct Echo {
        peer: Option<NodeId>,
        received: Vec<u32>,
        ticks: u32,
    }

    impl Node<Ev, Ctx> for Echo {
        fn on_event(&mut self, ev: Ev, api: &mut Api<'_, Ev, Ctx>) {
            match ev {
                Ev::Ping(n) => {
                    self.received.push(n);
                    api.ctx.log.push((api.now.as_nanos(), api.self_id, n));
                    if n > 0 {
                        if let Some(peer) = self.peer {
                            api.send(peer, SimDuration::from_micros(10), Ev::Ping(n - 1));
                        }
                    }
                }
                Ev::Tick => {
                    self.ticks += 1;
                    if self.ticks < 3 {
                        api.timer(SimDuration::from_millis(1), Ev::Tick);
                    }
                }
            }
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    fn two_node_kernel() -> (Kernel<Ev, Ctx>, NodeId, NodeId) {
        let mut k = Kernel::new(Ctx::default(), 1);
        let a = k.add_node(Echo {
            peer: None,
            received: vec![],
            ticks: 0,
        });
        let b = k.add_node(Echo {
            peer: Some(a),
            received: vec![],
            ticks: 0,
        });
        k.node_mut::<Echo>(a).peer = Some(b);
        (k, a, b)
    }

    #[test]
    fn ping_pong_alternates_and_advances_time() {
        let (mut k, a, b) = two_node_kernel();
        k.post(a, SimTime::ZERO, Ev::Ping(4));
        k.run_to_completion();
        assert_eq!(k.node::<Echo>(a).received, vec![4, 2, 0]);
        assert_eq!(k.node::<Echo>(b).received, vec![3, 1]);
        // 4 forwarded pings at 10us apart.
        assert_eq!(k.now(), SimTime::from_micros(40));
        assert_eq!(k.events_processed(), 5);
    }

    #[test]
    fn ties_break_in_fifo_order() {
        let (mut k, a, b) = two_node_kernel();
        k.node_mut::<Echo>(a).peer = None;
        k.node_mut::<Echo>(b).peer = None;
        k.post(b, SimTime::from_micros(5), Ev::Ping(0));
        k.post(a, SimTime::from_micros(5), Ev::Ping(0));
        k.run_to_completion();
        // b was scheduled first at the same timestamp, so b logs first.
        let order: Vec<usize> = k.ctx.log.iter().map(|&(_, id, _)| id).collect();
        assert_eq!(order, vec![b, a]);
    }

    #[test]
    fn self_timers_fire() {
        let (mut k, a, _) = two_node_kernel();
        k.post(a, SimTime::ZERO, Ev::Tick);
        k.run_to_completion();
        assert_eq!(k.node::<Echo>(a).ticks, 3);
        assert_eq!(k.now(), SimTime::from_millis(2));
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let (mut k, a, _) = two_node_kernel();
        k.post(a, SimTime::ZERO, Ev::Tick);
        k.run_until(SimTime::from_micros(1500));
        assert_eq!(k.node::<Echo>(a).ticks, 2); // ticks at 0 and 1ms.
        assert_eq!(k.now(), SimTime::from_micros(1500));
        k.run_to_completion();
        assert_eq!(k.node::<Echo>(a).ticks, 3);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let (mut k, a, _) = two_node_kernel();
        let h = k.post(a, SimTime::from_micros(5), Ev::Ping(0));
        k.cancel(h);
        k.post(a, SimTime::from_micros(9), Ev::Ping(0));
        k.run_to_completion();
        assert_eq!(k.node::<Echo>(a).received, vec![0]);
        assert_eq!(k.events_processed(), 1);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let (mut k, a, _) = two_node_kernel();
        let h = k.post(a, SimTime::ZERO, Ev::Ping(0));
        k.run_to_completion();
        k.cancel(h);
        k.post(a, SimTime::from_micros(1), Ev::Ping(0));
        k.run_to_completion();
        assert_eq!(k.node::<Echo>(a).received.len(), 2);
    }

    #[test]
    fn next_event_time_skips_cancelled() {
        let (mut k, a, _) = two_node_kernel();
        let h = k.post(a, SimTime::from_micros(5), Ev::Ping(0));
        k.post(a, SimTime::from_micros(8), Ev::Ping(0));
        k.cancel(h);
        assert_eq!(k.next_event_time(), Some(SimTime::from_micros(8)));
    }

    #[test]
    fn cancel_tombstones_stay_bounded_in_timer_heavy_run() {
        // The classic transport idiom: arm a retransmit timer, then cancel
        // it after it (logically) completed — i.e. cancel handles of events
        // that already fired. The seed kernel leaked one tombstone per such
        // cancel; the generation stamp (wheel) / watermark (heap oracle)
        // makes them no-ops.
        let (mut k, a, _) = two_node_kernel();
        let mut fired: Vec<EventHandle> = Vec::new();
        for round in 0..10_000u64 {
            let h = k.post(a, SimTime::from_micros(round), Ev::Ping(0));
            fired.push(h);
            k.run_until(SimTime::from_micros(round));
            // Cancel the already-fired timer (no-op) plus a handful of old ones.
            k.cancel(h);
            if let Some(&old) = fired.get(round as usize / 2) {
                k.cancel(old);
            }
        }
        assert_eq!(
            k.cancelled_backlog(),
            0,
            "fired-event cancels must not leak"
        );

        // Live cancellations do occupy the backlog — but only until reclaim.
        let pending: Vec<_> = (0..100)
            .map(|i| k.post(a, k.now() + SimDuration::from_micros(i + 1), Ev::Ping(0)))
            .collect();
        for h in &pending {
            k.cancel(*h);
        }
        assert_eq!(k.cancelled_backlog(), 100);
        k.run_to_completion();
        assert_eq!(k.cancelled_backlog(), 0, "popped tombstones must be pruned");
        assert_eq!(k.pending_events(), 0);
    }

    /// Collects pings; opts into burst delivery and records burst sizes.
    struct BurstSink {
        got: Vec<u32>,
        bursts: Vec<usize>,
    }

    impl Node<Ev, Ctx> for BurstSink {
        fn on_event(&mut self, ev: Ev, api: &mut Api<'_, Ev, Ctx>) {
            if let Ev::Ping(n) = ev {
                self.got.push(n);
                api.ctx.log.push((api.now.as_nanos(), api.self_id, n));
            }
        }
        fn burst_eligible(&self, ev: &Ev) -> bool {
            matches!(ev, Ev::Ping(_))
        }
        fn on_burst(&mut self, evs: &mut Vec<Ev>, api: &mut Api<'_, Ev, Ctx>) {
            self.bursts.push(evs.len());
            for ev in evs.drain(..) {
                self.on_event(ev, api);
            }
        }
        fn name(&self) -> &str {
            "burst-sink"
        }
    }

    fn burst_kernel() -> (Kernel<Ev, Ctx>, NodeId) {
        let mut k = Kernel::new(Ctx::default(), 1);
        // Forced on so these tests exercise burst formation even in the
        // `scalar-datapath` oracle build (whose default is off).
        k.set_burst_delivery(true);
        let a = k.add_node(BurstSink {
            got: vec![],
            bursts: vec![],
        });
        (k, a)
    }

    #[test]
    fn burst_delivery_default_follows_the_oracle_feature() {
        let k = Kernel::<Ev, Ctx>::new(Ctx::default(), 1);
        assert_eq!(
            k.burst_delivery(),
            cfg!(not(feature = "scalar-datapath")),
            "scalar-datapath must flip the kernel to per-event delivery"
        );
    }

    #[test]
    fn same_instant_eligible_events_form_a_burst() {
        let (mut k, a) = burst_kernel();
        for n in 0..5 {
            k.post(a, SimTime::from_micros(10), Ev::Ping(n));
        }
        k.post(a, SimTime::from_micros(20), Ev::Ping(99));
        k.run_to_completion();
        let sink = k.node::<BurstSink>(a);
        assert_eq!(sink.got, vec![0, 1, 2, 3, 4, 99]);
        assert_eq!(sink.bursts, vec![5], "lone trailing event stays scalar");
        assert_eq!(k.events_processed(), 6);
        assert_eq!(k.bursts_formed(), 1);
        assert_eq!(k.burst_events(), 5);
    }

    #[test]
    fn ineligible_event_splits_the_burst_in_seq_order() {
        let (mut k, a) = burst_kernel();
        let t = SimTime::from_micros(10);
        k.post(a, t, Ev::Ping(0));
        k.post(a, t, Ev::Ping(1));
        k.post(a, t, Ev::Tick); // not burst-eligible: delivered scalar
        k.post(a, t, Ev::Ping(2));
        k.run_to_completion();
        let sink = k.node::<BurstSink>(a);
        assert_eq!(sink.got, vec![0, 1, 2]);
        assert_eq!(sink.bursts, vec![2], "collection must stop at the timer");
        assert_eq!(k.events_processed(), 4);
    }

    #[test]
    fn bursts_are_capped_at_max_burst() {
        let (mut k, a) = burst_kernel();
        for n in 0..(MAX_BURST as u32 + 10) {
            k.post(a, SimTime::from_micros(1), Ev::Ping(n));
        }
        k.run_to_completion();
        let sink = k.node::<BurstSink>(a);
        assert_eq!(sink.got.len(), MAX_BURST + 10);
        assert!(sink.got.windows(2).all(|w| w[0] < w[1]), "order preserved");
        assert_eq!(sink.bursts, vec![MAX_BURST, 10]);
    }

    #[test]
    fn burst_delivery_toggle_is_invisible_to_results() {
        let run = |burst: bool| {
            let (mut k, a) = burst_kernel();
            k.set_burst_delivery(burst);
            for n in 0..7 {
                k.post(a, SimTime::from_micros(3), Ev::Ping(n));
                k.post(a, SimTime::from_micros(5), Ev::Ping(100 + n));
            }
            k.run_to_completion();
            let sink = k.node::<BurstSink>(a);
            (
                sink.got.clone(),
                k.ctx.log.clone(),
                k.events_processed(),
                k.bursts_formed(),
            )
        };
        let (got_b, log_b, n_b, bursts_b) = run(true);
        let (got_s, log_s, n_s, bursts_s) = run(false);
        assert_eq!(got_b, got_s);
        assert_eq!(log_b, log_s);
        assert_eq!(n_b, n_s, "per-event accounting must not depend on bursts");
        assert_eq!(bursts_b, 2);
        assert_eq!(bursts_s, 0, "disabled delivery must never call on_burst");
    }

    #[test]
    fn publish_telemetry_mirrors_kernel_counters() {
        let (mut k, a, _) = two_node_kernel();
        let h = k.post(a, SimTime::from_micros(5), Ev::Ping(0));
        k.cancel(h);
        k.post(a, SimTime::ZERO, Ev::Ping(2));
        k.run_to_completion();
        let mut reg = fastrak_telemetry::Registry::default();
        k.publish_telemetry_into(&mut reg);
        assert_eq!(
            reg.counter_by_name("sim.kernel.events_processed"),
            Some(k.events_processed())
        );
        assert_eq!(reg.counter_by_name("sim.kernel.cancels_requested"), Some(1));
        assert_eq!(reg.gauge_by_name("sim.kernel.pending_events"), Some(0.0));
        // No fault layer attached: no sim.fault.* metrics registered.
        assert_eq!(reg.counter_by_name("sim.fault.dropped"), None);
    }

    #[test]
    fn node_pair_mut_gives_both() {
        let (mut k, a, b) = two_node_kernel();
        let (na, nb) = k.node_pair_mut::<Echo, Echo>(a, b);
        na.ticks = 7;
        nb.ticks = 9;
        assert_eq!(k.node::<Echo>(a).ticks, 7);
        assert_eq!(k.node::<Echo>(b).ticks, 9);
        // Reversed order too.
        let (nb2, na2) = k.node_pair_mut::<Echo, Echo>(b, a);
        assert_eq!(nb2.ticks, 9);
        assert_eq!(na2.ticks, 7);
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn wrong_downcast_panics() {
        struct Other;
        impl Node<Ev, Ctx> for Other {
            fn on_event(&mut self, _: Ev, _: &mut Api<'_, Ev, Ctx>) {}
        }
        let mut k = Kernel::new(Ctx::default(), 1);
        let id = k.add_node(Other);
        let _ = k.node::<Echo>(id);
    }
}
