//! Deterministic pseudo-random number generation.
//!
//! The engine deliberately carries its own PRNG (xoshiro256** seeded through
//! SplitMix64) instead of pulling in platform-dependent entropy: experiment
//! runs must replay bit-identically from a seed, and the controller's
//! decisions depend on measured traffic, so nondeterminism anywhere would make
//! the regression tests flaky.

use crate::time::SimDuration;

/// xoshiro256** PRNG. Small, fast, and statistically solid for simulation use.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed. Every distinct seed produces an
    /// independent-looking stream; seed 0 is fine.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive a child generator (e.g. one per node) that is decorrelated from
    /// the parent stream.
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::new(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift with rejection for unbiased results.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean >= 0.0);
        let u = 1.0 - self.f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs_f64()))
    }

    /// Standard normal via Box-Muller (single value; the pair is not cached so
    /// the stream stays a pure function of call count).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Bounded Pareto sample (heavy-tailed flow sizes), shape `alpha`,
    /// support `[lo, hi]`. Inverse-CDF: `x = (-(u*ha - u*la - ha)/(ha*la))^(-1/alpha)`
    /// with `la = lo^alpha`, `ha = hi^alpha`.
    pub fn pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        debug_assert!(alpha > 0.0 && lo > 0.0 && hi >= lo);
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Zipf-like rank selection over `n` items with skew `s` (rank 0 is the
    /// most popular). Uses rejection-free inverse-CDF over the harmonic
    /// weights, computed lazily by the caller via [`ZipfTable`].
    pub fn zipf(&mut self, table: &ZipfTable) -> usize {
        table.sample(self)
    }
}

/// Precomputed cumulative distribution for Zipf-distributed popularity.
///
/// Memcached key popularity and per-destination flow locality both use this:
/// "temporal locality in flows" (paper §1) is what makes MFU offload work.
#[derive(Clone, Debug)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Build the CDF for `n` ranks with exponent `s` (s = 0 is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf table needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the table has no ranks. Kept for the conventional
    /// `len`/`is_empty` pairing; unreachable through [`ZipfTable::new`],
    /// whose `n > 0` assert guarantees at least one rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_decorrelates() {
        let mut root = Rng::new(7);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = Rng::new(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for c in counts {
            // Expect 10_000 +- ~5%.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = Rng::new(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = Rng::new(13);
        let n = 200_000;
        let vals: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let table = ZipfTable::new(100, 1.0);
        let mut r = Rng::new(17);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[r.zipf(&table)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_zero_skew_is_uniformish() {
        let table = ZipfTable::new(10, 0.0);
        let mut r = Rng::new(19);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[r.zipf(&table)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn zipf_table_is_never_empty() {
        // `new` asserts n > 0, so every constructible table has at least one
        // rank; `is_empty` must agree with `len` (and always be false here).
        for n in [1, 2, 100] {
            let table = ZipfTable::new(n, 1.0);
            assert_eq!(table.len(), n);
            assert!(!table.is_empty());
        }
    }

    #[test]
    fn pareto_within_bounds() {
        let mut r = Rng::new(23);
        for _ in 0..10_000 {
            let v = r.pareto(1.2, 100.0, 1_000_000.0);
            assert!((99.999..=1_000_000.001).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        // With alpha=1.2 most samples are near the low end.
        let mut r = Rng::new(29);
        let n = 50_000;
        let below_10x = (0..n)
            .filter(|_| r.pareto(1.2, 100.0, 1_000_000.0) < 1_000.0)
            .count();
        assert!(below_10x as f64 / n as f64 > 0.8);
    }

    #[test]
    fn exp_duration_zero_mean_is_zero() {
        let mut r = Rng::new(21);
        assert_eq!(r.exp_duration(SimDuration::ZERO), SimDuration::ZERO);
    }
}
