//! Bounded event trace ring, in the spirit of the paper's receiver-side
//! packet capture (Fig. 12 uses tcpdump + netstat to show TCP sequence
//! progression across a flow migration).
//!
//! Components push [`TraceRecord`]s; the harness drains them after a run.
//! The ring is bounded so a long experiment cannot exhaust memory, and
//! tracing is off by default (zero cost on the packet path beyond a branch).
//!
//! Component names are interned ([`Istr`]): the old `who: String` field
//! cloned an allocation per pushed record, which at packet rate dominated
//! the cost of enabled tracing. Now the first push of a given name allocates
//! once and every later push is a ref-count bump. [`Istr`] derefs to `str`,
//! so consumers (`starts_with`, `as_bytes`, equality against literals) are
//! unchanged.

use std::collections::VecDeque;

use fastrak_telemetry::intern::Interner;
pub use fastrak_telemetry::intern::Istr;

use crate::time::SimTime;

/// One traced occurrence (packet seen, rule installed, decision made, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// When it happened.
    pub at: SimTime,
    /// Component that recorded it (interned, e.g. "tor0", "vm2/tcp").
    pub who: Istr,
    /// Event kind tag, e.g. "tx", "rx", "offload", "demote".
    pub kind: &'static str,
    /// Up to three numeric attributes (seq number, bytes, flow hash, ...).
    pub vals: [u64; 3],
}

/// A bounded ring of trace records.
#[derive(Debug)]
pub struct TraceRing {
    records: VecDeque<TraceRecord>,
    interner: Interner,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl TraceRing {
    /// Create a disabled ring holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        TraceRing {
            records: VecDeque::with_capacity(capacity.min(4096)),
            interner: Interner::default(),
            capacity,
            enabled: false,
            dropped: 0,
        }
    }

    /// Turn tracing on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is tracing currently enabled?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (drops the oldest record when full). `who` is
    /// interned: pass `&str` — repeated names cost no allocation.
    pub fn push(&mut self, at: SimTime, who: impl AsRef<str>, kind: &'static str, vals: [u64; 3]) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            at,
            who: self.interner.intern(who.as_ref()),
            kind,
            vals,
        });
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Records of a given kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| r.kind == kind)
    }

    /// How many records were evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of held records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drain all records, oldest first (the interner is retained, so a
    /// later push of the same component stays allocation-free).
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        self.records.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_records_nothing() {
        let mut r = TraceRing::new(8);
        r.push(SimTime::ZERO, "x", "tx", [0; 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn records_in_order() {
        let mut r = TraceRing::new(8);
        r.set_enabled(true);
        r.push(SimTime::from_micros(1), "a", "tx", [1, 0, 0]);
        r.push(SimTime::from_micros(2), "a", "rx", [2, 0, 0]);
        let v: Vec<_> = r.records().map(|rec| rec.vals[0]).collect();
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut r = TraceRing::new(2);
        r.set_enabled(true);
        for i in 0..5u64 {
            r.push(SimTime::ZERO, "a", "tx", [i, 0, 0]);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let v: Vec<_> = r.records().map(|rec| rec.vals[0]).collect();
        assert_eq!(v, vec![3, 4]);
    }

    #[test]
    fn kind_filter() {
        let mut r = TraceRing::new(8);
        r.set_enabled(true);
        r.push(SimTime::ZERO, "a", "tx", [0; 3]);
        r.push(SimTime::ZERO, "a", "rx", [0; 3]);
        r.push(SimTime::ZERO, "a", "tx", [0; 3]);
        assert_eq!(r.of_kind("tx").count(), 2);
        assert_eq!(r.of_kind("rx").count(), 1);
    }

    #[test]
    fn drain_empties() {
        let mut r = TraceRing::new(4);
        r.set_enabled(true);
        r.push(SimTime::ZERO, "a", "tx", [0; 3]);
        let drained = r.drain();
        assert_eq!(drained.len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn who_is_interned_not_cloned() {
        let mut r = TraceRing::new(8);
        r.set_enabled(true);
        r.push(SimTime::ZERO, "s1/vm0", "tx", [0; 3]);
        r.push(SimTime::ZERO, String::from("s1/vm0"), "rx", [0; 3]);
        let recs: Vec<_> = r.records().collect();
        // Same interned string: both records share one allocation, and the
        // str-like API (starts_with / equality) still works.
        assert_eq!(recs[0].who, recs[1].who);
        assert!(recs[0].who.starts_with("s1"));
        assert_eq!(recs[1].who, "s1/vm0");
    }
}
