//! Bounded drop-tail FIFO queue with byte and packet accounting.
//!
//! Used for NIC transmit rings, ToR egress queues, and the vswitch backlog.
//! Drops are counted rather than silently discarded so experiments can report
//! loss (Fig. 12 depends on losses during flow migration being visible to
//! TCP as dup-acks).

use std::collections::VecDeque;

/// A bounded FIFO with drop-tail semantics.
#[derive(Debug, Clone)]
pub struct DropTailQueue<T> {
    items: VecDeque<(T, u64)>,
    max_packets: usize,
    max_bytes: u64,
    cur_bytes: u64,
    enqueued: u64,
    dropped: u64,
}

impl<T> DropTailQueue<T> {
    /// Queue bounded by both packet count and byte depth.
    pub fn new(max_packets: usize, max_bytes: u64) -> Self {
        assert!(max_packets > 0 && max_bytes > 0);
        DropTailQueue {
            items: VecDeque::new(),
            max_packets,
            max_bytes,
            cur_bytes: 0,
            enqueued: 0,
            dropped: 0,
        }
    }

    /// Attempt to enqueue `item` of `bytes`; returns `false` (and counts a
    /// drop) when either bound would be exceeded.
    pub fn push(&mut self, item: T, bytes: u64) -> bool {
        if self.items.len() >= self.max_packets || self.cur_bytes + bytes > self.max_bytes {
            self.dropped += 1;
            return false;
        }
        self.items.push_back((item, bytes));
        self.cur_bytes += bytes;
        self.enqueued += 1;
        true
    }

    /// Dequeue the head, if any.
    pub fn pop(&mut self) -> Option<(T, u64)> {
        let (item, bytes) = self.items.pop_front()?;
        self.cur_bytes -= bytes;
        Some((item, bytes))
    }

    /// Peek at the head without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front().map(|(t, _)| t)
    }

    /// Current queue length in packets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Current queue depth in bytes.
    pub fn bytes(&self) -> u64 {
        self.cur_bytes
    }

    /// Packets accepted since construction.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Packets dropped since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(10, 10_000);
        q.push('a', 100);
        q.push('b', 100);
        q.push('c', 100);
        assert_eq!(q.pop().map(|(c, _)| c), Some('a'));
        assert_eq!(q.pop().map(|(c, _)| c), Some('b'));
        assert_eq!(q.pop().map(|(c, _)| c), Some('c'));
        assert!(q.pop().is_none());
    }

    #[test]
    fn packet_bound_drops_tail() {
        let mut q = DropTailQueue::new(2, 10_000);
        assert!(q.push(1, 1));
        assert!(q.push(2, 1));
        assert!(!q.push(3, 1));
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn byte_bound_drops_tail() {
        let mut q = DropTailQueue::new(100, 2_000);
        assert!(q.push(1, 1500));
        assert!(!q.push(2, 1500));
        assert!(q.push(3, 500)); // still fits by bytes
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.bytes(), 2_000);
    }

    #[test]
    fn bytes_released_on_pop() {
        let mut q = DropTailQueue::new(100, 2_000);
        q.push(1, 1500);
        q.pop();
        assert!(q.push(2, 1500));
        assert_eq!(q.enqueued(), 2);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = DropTailQueue::new(10, 1_000);
        q.push('x', 10);
        assert_eq!(q.peek(), Some(&'x'));
        assert_eq!(q.len(), 1);
    }
}
