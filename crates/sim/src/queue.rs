//! Bounded drop-tail FIFO queue with byte and packet accounting.
//!
//! Used for NIC transmit rings, ToR egress queues, and the vswitch backlog.
//! Drops are counted rather than silently discarded so experiments can report
//! loss (Fig. 12 depends on losses during flow migration being visible to
//! TCP as dup-acks), and they are counted *per cause* — packet-bound vs
//! byte-bound — so migration-window loss can be attributed to ring depth vs
//! byte backlog instead of one opaque total.

use std::collections::VecDeque;

/// Drop counters split by which bound rejected the packet.
///
/// When a packet would exceed both bounds at once, the packet bound wins the
/// attribution (it is checked first: ring slots are the scarcer resource in
/// the NIC model this queue stands in for).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueDropStats {
    /// Drops because the queue already held `max_packets` items.
    pub packet_bound: u64,
    /// Drops because admitting the packet would exceed `max_bytes`.
    pub byte_bound: u64,
}

impl QueueDropStats {
    /// Total drops regardless of cause.
    pub fn total(&self) -> u64 {
        self.packet_bound + self.byte_bound
    }
}

/// Which bound rejected a packet on the batch admit path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// The queue already held `max_packets` items.
    PacketBound,
    /// Admitting the packet would have exceeded `max_bytes`.
    ByteBound,
}

/// Outcome of an ECN-aware admit ([`DropTailQueue::push_ecn`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcnVerdict {
    /// The packet was enqueued; `marked` is true when the instantaneous
    /// byte depth was at or above the marking threshold and the packet was
    /// ECT. A marked packet is admitted — it is never also a drop.
    Admitted {
        /// CE mark applied.
        marked: bool,
    },
    /// The packet was rejected by a bound (identical semantics and
    /// accounting to [`DropTailQueue::push`]).
    Dropped(DropCause),
}

/// A bounded FIFO with drop-tail semantics.
#[derive(Debug, Clone)]
pub struct DropTailQueue<T> {
    items: VecDeque<(T, u64)>,
    max_packets: usize,
    max_bytes: u64,
    cur_bytes: u64,
    enqueued: u64,
    drops: QueueDropStats,
    /// RED/DCTCP-style marking threshold in bytes (`None` = marking off).
    ecn_threshold: Option<u64>,
    marks: u64,
}

impl<T> DropTailQueue<T> {
    /// Queue bounded by both packet count and byte depth.
    pub fn new(max_packets: usize, max_bytes: u64) -> Self {
        assert!(max_packets > 0 && max_bytes > 0);
        DropTailQueue {
            items: VecDeque::new(),
            max_packets,
            max_bytes,
            cur_bytes: 0,
            enqueued: 0,
            drops: QueueDropStats::default(),
            ecn_threshold: None,
            marks: 0,
        }
    }

    /// Enable (or disable with `None`) ECN marking: an admitted ECT packet
    /// is CE-marked when the byte depth at enqueue time is at or above
    /// `bytes` — DCTCP's instantaneous single-threshold K. The plain
    /// [`Self::push`]/[`Self::push_burst`] paths are unaffected.
    pub fn set_ecn_threshold(&mut self, bytes: Option<u64>) {
        self.ecn_threshold = bytes;
    }

    /// Packets CE-marked since construction. Disjoint from drops by
    /// construction: only admitted packets can be marked.
    pub fn marks(&self) -> u64 {
        self.marks
    }

    /// Attempt to enqueue `item` of `bytes`; returns `false` (and counts a
    /// drop against the bound that rejected it) when either bound would be
    /// exceeded. Byte accounting saturates, so a pathological `bytes` value
    /// cannot overflow the depth counter.
    pub fn push(&mut self, item: T, bytes: u64) -> bool {
        if self.items.len() >= self.max_packets {
            self.drops.packet_bound += 1;
            return false;
        }
        match self.cur_bytes.checked_add(bytes) {
            Some(new_bytes) if new_bytes <= self.max_bytes => {
                self.items.push_back((item, bytes));
                self.cur_bytes = new_bytes;
                self.enqueued += 1;
                true
            }
            // Overflowing u64 byte depth certainly exceeds the bound.
            _ => {
                self.drops.byte_bound += 1;
                false
            }
        }
    }

    /// Batch admit: offer a burst of `(item, bytes)` in order, applying the
    /// exact per-packet bound checks of [`Self::push`] — each drop is
    /// attributed to the bound that rejected *that packet*, never summed or
    /// decided once for the whole burst. (Within one burst a packet-bound
    /// drop implies the rest also drop packet-bound, since the queue cannot
    /// shrink mid-admit; a byte-bound drop implies nothing — a smaller
    /// packet later in the burst may still fit.) Rejected items are handed
    /// to `on_drop` with their cause; returns the number admitted.
    pub fn push_burst(
        &mut self,
        items: impl IntoIterator<Item = (T, u64)>,
        mut on_drop: impl FnMut(T, u64, DropCause),
    ) -> usize {
        let mut admitted = 0;
        for (item, bytes) in items {
            if self.items.len() >= self.max_packets {
                self.drops.packet_bound += 1;
                on_drop(item, bytes, DropCause::PacketBound);
                continue;
            }
            match self.cur_bytes.checked_add(bytes) {
                Some(new_bytes) if new_bytes <= self.max_bytes => {
                    self.items.push_back((item, bytes));
                    self.cur_bytes = new_bytes;
                    self.enqueued += 1;
                    admitted += 1;
                }
                _ => {
                    self.drops.byte_bound += 1;
                    on_drop(item, bytes, DropCause::ByteBound);
                }
            }
        }
        admitted
    }

    /// ECN-aware admit: apply the exact bound checks of [`Self::push`];
    /// when the packet is admitted, ECT, and the pre-admit byte depth is at
    /// or above the marking threshold, it is counted as marked. Marking and
    /// dropping are mutually exclusive per packet — a drop is attributed to
    /// its bound and never counted as a mark, and vice versa.
    pub fn push_ecn(&mut self, item: T, bytes: u64, ect: bool) -> EcnVerdict {
        if self.items.len() >= self.max_packets {
            self.drops.packet_bound += 1;
            return EcnVerdict::Dropped(DropCause::PacketBound);
        }
        match self.cur_bytes.checked_add(bytes) {
            Some(new_bytes) if new_bytes <= self.max_bytes => {
                let marked = ect && self.ecn_threshold.is_some_and(|k| self.cur_bytes >= k);
                if marked {
                    self.marks += 1;
                }
                self.items.push_back((item, bytes));
                self.cur_bytes = new_bytes;
                self.enqueued += 1;
                EcnVerdict::Admitted { marked }
            }
            _ => {
                self.drops.byte_bound += 1;
                EcnVerdict::Dropped(DropCause::ByteBound)
            }
        }
    }

    /// ECN-aware batch admit: per-packet [`Self::push_ecn`] semantics over
    /// a burst of `(item, bytes, ect)`. Rejected items go to `on_drop` with
    /// the bound that rejected *that packet*; items marked at admission are
    /// handed to `on_mark` (to stamp CE) before they are stored. Returns
    /// the number admitted. A packet reaches at most one callback: marks
    /// are never double-counted as drops.
    pub fn push_burst_ecn(
        &mut self,
        items: impl IntoIterator<Item = (T, u64, bool)>,
        mut on_drop: impl FnMut(T, u64, DropCause),
        mut on_mark: impl FnMut(&mut T),
    ) -> usize {
        let mut admitted = 0;
        for (mut item, bytes, ect) in items {
            if self.items.len() >= self.max_packets {
                self.drops.packet_bound += 1;
                on_drop(item, bytes, DropCause::PacketBound);
                continue;
            }
            match self.cur_bytes.checked_add(bytes) {
                Some(new_bytes) if new_bytes <= self.max_bytes => {
                    if ect && self.ecn_threshold.is_some_and(|k| self.cur_bytes >= k) {
                        self.marks += 1;
                        on_mark(&mut item);
                    }
                    self.items.push_back((item, bytes));
                    self.cur_bytes = new_bytes;
                    self.enqueued += 1;
                    admitted += 1;
                }
                _ => {
                    self.drops.byte_bound += 1;
                    on_drop(item, bytes, DropCause::ByteBound);
                }
            }
        }
        admitted
    }

    /// Dequeue the head, if any.
    pub fn pop(&mut self) -> Option<(T, u64)> {
        let (item, bytes) = self.items.pop_front()?;
        self.cur_bytes = self.cur_bytes.saturating_sub(bytes);
        Some((item, bytes))
    }

    /// Peek at the head without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front().map(|(t, _)| t)
    }

    /// Current queue length in packets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Current queue depth in bytes.
    pub fn bytes(&self) -> u64 {
        self.cur_bytes
    }

    /// Packets accepted since construction.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Packets dropped since construction (all causes).
    pub fn dropped(&self) -> u64 {
        self.drops.total()
    }

    /// Per-cause drop counters.
    pub fn drop_stats(&self) -> QueueDropStats {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(10, 10_000);
        q.push('a', 100);
        q.push('b', 100);
        q.push('c', 100);
        assert_eq!(q.pop().map(|(c, _)| c), Some('a'));
        assert_eq!(q.pop().map(|(c, _)| c), Some('b'));
        assert_eq!(q.pop().map(|(c, _)| c), Some('c'));
        assert!(q.pop().is_none());
    }

    #[test]
    fn packet_bound_drops_tail() {
        let mut q = DropTailQueue::new(2, 10_000);
        assert!(q.push(1, 1));
        assert!(q.push(2, 1));
        assert!(!q.push(3, 1));
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.drop_stats().packet_bound, 1);
        assert_eq!(q.drop_stats().byte_bound, 0);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn byte_bound_drops_tail() {
        let mut q = DropTailQueue::new(100, 2_000);
        assert!(q.push(1, 1500));
        assert!(!q.push(2, 1500));
        assert!(q.push(3, 500)); // still fits by bytes
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.drop_stats().byte_bound, 1);
        assert_eq!(q.drop_stats().packet_bound, 0);
        assert_eq!(q.bytes(), 2_000);
    }

    #[test]
    fn drop_causes_attributed_independently() {
        let mut q = DropTailQueue::new(2, 1_000);
        assert!(q.push(1, 900));
        assert!(!q.push(2, 200)); // byte-bound
        assert!(q.push(3, 50));
        assert!(!q.push(4, 10)); // packet-bound (2 items queued)
        let stats = q.drop_stats();
        assert_eq!(
            stats,
            QueueDropStats {
                packet_bound: 1,
                byte_bound: 1
            }
        );
        assert_eq!(stats.total(), q.dropped());
    }

    #[test]
    fn full_queue_attributes_to_packet_bound_first() {
        // Both bounds exceeded at once: attribution goes to the packet
        // bound, which is checked first.
        let mut q = DropTailQueue::new(1, 100);
        assert!(q.push(1, 100));
        assert!(!q.push(2, 200));
        assert_eq!(q.drop_stats().packet_bound, 1);
        assert_eq!(q.drop_stats().byte_bound, 0);
    }

    #[test]
    fn pathological_byte_sizes_do_not_overflow() {
        let mut q = DropTailQueue::new(10, u64::MAX);
        assert!(q.push(1, u64::MAX - 10));
        assert!(!q.push(2, u64::MAX)); // would saturate past the bound
        assert_eq!(q.drop_stats().byte_bound, 1);
        assert_eq!(q.bytes(), u64::MAX - 10);
        q.pop();
        assert_eq!(q.bytes(), 0);
    }

    /// Burst admit must attribute each drop to the bound that rejected that
    /// packet: here one byte-bound drop, then an admit that fills the ring,
    /// then a packet-bound drop — all inside a single burst.
    #[test]
    fn burst_admit_attributes_drop_causes_per_packet() {
        let mut q = DropTailQueue::new(2, 1_000);
        let mut dropped = Vec::new();
        let admitted = q.push_burst(
            vec![(1, 900), (2, 200), (3, 50), (4, 10)],
            |item, bytes, cause| dropped.push((item, bytes, cause)),
        );
        assert_eq!(admitted, 2);
        assert_eq!(
            dropped,
            vec![
                (2, 200, DropCause::ByteBound),
                (4, 10, DropCause::PacketBound)
            ]
        );
        assert_eq!(
            q.drop_stats(),
            QueueDropStats {
                packet_bound: 1,
                byte_bound: 1
            }
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.bytes(), 950);
    }

    /// Differential: any burst, split any way, must leave the queue in the
    /// same state as scalar pushes — admit decisions, order, and per-cause
    /// counters all identical.
    #[test]
    fn burst_admit_matches_scalar_pushes() {
        let sizes: Vec<u64> = (0..40).map(|i| (i * 37) % 900 + 50).collect();
        let mut scalar = DropTailQueue::new(16, 8_000);
        let mut batched = DropTailQueue::new(16, 8_000);
        for (i, &b) in sizes.iter().enumerate() {
            scalar.push(i, b);
        }
        batched.push_burst(sizes.iter().copied().enumerate(), |_, _, _| {});
        assert_eq!(scalar.drop_stats(), batched.drop_stats());
        assert_eq!(scalar.enqueued(), batched.enqueued());
        assert_eq!(scalar.bytes(), batched.bytes());
        while let Some(a) = scalar.pop() {
            assert_eq!(Some(a), batched.pop());
        }
        assert!(batched.pop().is_none());
    }

    /// Regression (drop/mark attribution): a packet is counted as a mark
    /// *or* a drop, never both — and admitted+dropped partitions the burst.
    #[test]
    fn ecn_marks_never_double_counted_as_drops() {
        let mut q = DropTailQueue::new(4, 4_000);
        q.set_ecn_threshold(Some(1_000));
        let mut drops = Vec::new();
        let mut marked = Vec::new();
        // 6 ECT packets of 900B: 4 admitted (depth crosses 1000B at the
        // 2nd), then the ring is full — 2 packet-bound drops.
        let admitted = q.push_burst_ecn(
            (0..6).map(|i| (i, 900, true)),
            |item, _, cause| drops.push((item, cause)),
            |item| marked.push(*item),
        );
        assert_eq!(admitted, 4);
        assert_eq!(
            drops,
            vec![(4, DropCause::PacketBound), (5, DropCause::PacketBound)]
        );
        // Depth before items 2 and 3 was 1800/2700 ≥ K; item 1 saw 900.
        assert_eq!(marked, vec![2, 3]);
        assert_eq!(q.marks(), 2);
        assert_eq!(q.dropped(), 2);
        // Partition: every packet is exactly one of admitted/dropped, and
        // marks only ever come out of the admitted set.
        assert_eq!(admitted as u64 + q.dropped(), 6);
        assert!(q.marks() <= admitted as u64);
    }

    #[test]
    fn ecn_marking_requires_ect_and_threshold() {
        let mut q = DropTailQueue::new(100, 100_000);
        // Threshold unset: nothing marks.
        assert_eq!(
            q.push_ecn(1, 2_000, true),
            EcnVerdict::Admitted { marked: false }
        );
        q.set_ecn_threshold(Some(1_000));
        // Not-ECT above threshold: no mark (a real RED would drop; this
        // queue only bounds, so the packet just rides unmarked).
        assert_eq!(
            q.push_ecn(2, 500, false),
            EcnVerdict::Admitted { marked: false }
        );
        // ECT above threshold: marked.
        assert_eq!(
            q.push_ecn(3, 500, true),
            EcnVerdict::Admitted { marked: true }
        );
        assert_eq!(q.marks(), 1);
        assert_eq!(q.dropped(), 0);
    }

    /// Differential: with marking off (or all-not-ECT), the ECN admit paths
    /// are bit-identical to the plain ones — admits, order, and per-cause
    /// drop counters all agree.
    #[test]
    fn ecn_paths_match_plain_paths_when_not_ect() {
        let sizes: Vec<u64> = (0..40).map(|i| (i * 37) % 900 + 50).collect();
        let mut plain = DropTailQueue::new(16, 8_000);
        let mut ecn = DropTailQueue::new(16, 8_000);
        ecn.set_ecn_threshold(Some(100)); // armed, but nothing is ECT
        for (i, &b) in sizes.iter().enumerate() {
            plain.push(i, b);
            ecn.push_ecn(i, b, false);
        }
        assert_eq!(plain.drop_stats(), ecn.drop_stats());
        assert_eq!(plain.enqueued(), ecn.enqueued());
        assert_eq!(ecn.marks(), 0);
        while let Some(a) = plain.pop() {
            assert_eq!(Some(a), ecn.pop());
        }
        assert!(ecn.pop().is_none());
    }

    #[test]
    fn bytes_released_on_pop() {
        let mut q = DropTailQueue::new(100, 2_000);
        q.push(1, 1500);
        q.pop();
        assert!(q.push(2, 1500));
        assert_eq!(q.enqueued(), 2);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = DropTailQueue::new(10, 1_000);
        q.push('x', 10);
        assert_eq!(q.peek(), Some(&'x'));
        assert_eq!(q.len(), 1);
    }
}
