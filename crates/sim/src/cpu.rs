//! Logical-CPU pool model.
//!
//! The paper's central cost argument is that hypervisor rule processing burns
//! host CPU on a per-packet basis (§3: 96% of host CPU in network I/O for
//! baseline OVS, vs 59% idle with SR-IOV). We model a server's logical CPUs
//! as a multi-server FIFO queue with *analytic enqueue*: submitting a work
//! item immediately returns the simulated time at which it will complete,
//! given everything already queued. The caller schedules its continuation at
//! that time. This keeps per-packet processing O(log C) in the number of
//! logical CPUs with zero allocation.
//!
//! Utilization accounting mirrors the paper's "# of logical CPUs for test"
//! metric: `busy_time / elapsed` is exactly the average number of busy
//! logical CPUs over the window.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A pool of identical logical CPUs servicing FIFO work.
#[derive(Debug, Clone)]
pub struct CpuPool {
    /// `free_at[i]` is when CPU *slot* i becomes free; min-heap over times.
    free_at: BinaryHeap<Reverse<SimTime>>,
    n_cpus: usize,
    busy: SimDuration,
    window_start: SimTime,
    window_busy: SimDuration,
    completed: u64,
}

impl CpuPool {
    /// A pool with `n_cpus` logical CPUs (must be > 0).
    pub fn new(n_cpus: usize) -> Self {
        assert!(n_cpus > 0, "CPU pool needs at least one CPU");
        let mut free_at = BinaryHeap::with_capacity(n_cpus);
        for _ in 0..n_cpus {
            free_at.push(Reverse(SimTime::ZERO));
        }
        CpuPool {
            free_at,
            n_cpus,
            busy: SimDuration::ZERO,
            window_start: SimTime::ZERO,
            window_busy: SimDuration::ZERO,
            completed: 0,
        }
    }

    /// Number of logical CPUs in the pool.
    pub fn n_cpus(&self) -> usize {
        self.n_cpus
    }

    /// Submit `cost` of CPU work at time `now`; returns the completion time.
    ///
    /// Work starts on the earliest-free CPU (or immediately if one is idle)
    /// and runs non-preemptively for `cost`.
    pub fn submit(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let Reverse(free) = self.free_at.pop().expect("pool always has slots");
        let start = free.max(now);
        let done = start + cost;
        self.free_at.push(Reverse(done));
        self.busy += cost;
        self.window_busy += cost;
        self.completed += 1;
        done
    }

    /// Batch [`CpuPool::submit`]: dispatch a same-instant run of work items
    /// in order, appending each completion time to `out`. The heap pops and
    /// pushes are inherent (each item's start depends on the previous
    /// dispatches), but the busy/window/completed accounting is folded into
    /// one update per burst. Completion times are identical, item for item,
    /// to the scalar loop.
    pub fn submit_batch(&mut self, now: SimTime, costs: &[SimDuration], out: &mut Vec<SimTime>) {
        out.reserve(costs.len());
        let mut total = SimDuration::ZERO;
        for &cost in costs {
            let Reverse(free) = self.free_at.pop().expect("pool always has slots");
            let start = free.max(now);
            let done = start + cost;
            self.free_at.push(Reverse(done));
            total += cost;
            out.push(done);
        }
        self.busy += total;
        self.window_busy += total;
        self.completed += costs.len() as u64;
    }

    /// Like [`CpuPool::submit`] but refuses work that could not *start*
    /// within `max_queue_delay`; returns `None` in that case (models a
    /// bounded softirq backlog that drops instead of queueing unboundedly).
    pub fn try_submit(
        &mut self,
        now: SimTime,
        cost: SimDuration,
        max_queue_delay: SimDuration,
    ) -> Option<SimTime> {
        let Reverse(free) = *self.free_at.peek().expect("pool always has slots");
        if free > now + max_queue_delay {
            return None;
        }
        Some(self.submit(now, cost))
    }

    /// Earliest time at which a newly submitted item would start executing.
    pub fn earliest_start(&self, now: SimTime) -> SimTime {
        let Reverse(free) = *self.free_at.peek().expect("pool always has slots");
        free.max(now)
    }

    /// Total CPU time consumed since construction.
    pub fn total_busy(&self) -> SimDuration {
        self.busy
    }

    /// Number of completed work items.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Begin a measurement window at `now` (resets windowed busy time).
    pub fn begin_window(&mut self, now: SimTime) {
        self.window_start = now;
        self.window_busy = SimDuration::ZERO;
    }

    /// Average number of busy logical CPUs over the current window, i.e. the
    /// paper's "# of CPUs for test". Returns 0 for an empty window.
    pub fn cpus_used(&self, now: SimTime) -> f64 {
        let elapsed = now.since(self.window_start);
        if elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.window_busy.as_secs_f64() / elapsed.as_secs_f64()
    }

    /// Windowed busy CPU time.
    pub fn window_busy(&self) -> SimDuration {
        self.window_busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: SimDuration = SimDuration(1_000);

    #[test]
    fn idle_pool_starts_immediately() {
        let mut p = CpuPool::new(2);
        let done = p.submit(SimTime::from_micros(10), US);
        assert_eq!(done, SimTime::from_micros(11));
    }

    #[test]
    fn work_queues_when_all_cpus_busy() {
        let mut p = CpuPool::new(1);
        let t0 = SimTime::ZERO;
        let d1 = p.submit(t0, US * 5);
        assert_eq!(d1, SimTime::from_micros(5));
        // Second item must wait for the first.
        let d2 = p.submit(t0, US * 5);
        assert_eq!(d2, SimTime::from_micros(10));
    }

    #[test]
    fn two_cpus_run_in_parallel() {
        let mut p = CpuPool::new(2);
        let t0 = SimTime::ZERO;
        assert_eq!(p.submit(t0, US * 5), SimTime::from_micros(5));
        assert_eq!(p.submit(t0, US * 5), SimTime::from_micros(5));
        // Third queues behind whichever frees first.
        assert_eq!(p.submit(t0, US * 5), SimTime::from_micros(10));
    }

    #[test]
    fn idle_gaps_are_not_counted_busy() {
        let mut p = CpuPool::new(1);
        p.submit(SimTime::ZERO, US);
        // Gap from 1us to 100us.
        p.submit(SimTime::from_micros(100), US);
        assert_eq!(p.total_busy(), US * 2);
    }

    #[test]
    fn utilization_window() {
        let mut p = CpuPool::new(4);
        p.begin_window(SimTime::ZERO);
        // 2 CPUs busy for the whole 10us window.
        p.submit(SimTime::ZERO, US * 10);
        p.submit(SimTime::ZERO, US * 10);
        let used = p.cpus_used(SimTime::from_micros(10));
        assert!((used - 2.0).abs() < 1e-9, "cpus_used = {used}");
    }

    #[test]
    fn window_reset_clears_history() {
        let mut p = CpuPool::new(1);
        p.submit(SimTime::ZERO, US * 10);
        p.begin_window(SimTime::from_micros(10));
        assert_eq!(p.cpus_used(SimTime::from_micros(20)), 0.0);
    }

    #[test]
    fn try_submit_rejects_deep_backlog() {
        let mut p = CpuPool::new(1);
        p.submit(SimTime::ZERO, US * 100);
        // Would have to wait 100us; budget is 10us.
        assert!(p.try_submit(SimTime::ZERO, US, US * 10).is_none());
        // Accepted with a big enough budget.
        assert!(p.try_submit(SimTime::ZERO, US, US * 100).is_some());
    }

    #[test]
    fn batch_submit_matches_scalar_loop() {
        let costs: Vec<SimDuration> = (1..20).map(|i| US * i).collect();
        let mut scalar = CpuPool::new(3);
        let mut batched = CpuPool::new(3);
        let now = SimTime::from_micros(5);
        let want: Vec<SimTime> = costs.iter().map(|&c| scalar.submit(now, c)).collect();
        let mut got = Vec::new();
        batched.submit_batch(now, &costs, &mut got);
        assert_eq!(want, got);
        assert_eq!(scalar.total_busy(), batched.total_busy());
        assert_eq!(scalar.completed(), batched.completed());
        assert_eq!(scalar.window_busy(), batched.window_busy());
        // Follow-up scalar work sees the same pool state.
        assert_eq!(scalar.submit(now, US), batched.submit(now, US));
    }

    #[test]
    fn empty_window_reports_zero() {
        let p = CpuPool::new(1);
        assert_eq!(p.cpus_used(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_rejected() {
        let _ = CpuPool::new(0);
    }
}
