//! Token-bucket rate limiter, modelling `tc` htb class behaviour.
//!
//! The paper configures interface rate limits with `tc` on OVS VIFs
//! (§2.2 "OVS+Rate limiting") and in NIC/ToR hardware for the SR-IOV path
//! (§4.1.4). Both are byte-rate token buckets; the software one additionally
//! charges CPU for enqueue/dequeue, which the host model accounts separately.
//!
//! The DES-friendly API is *conformance time*: given a packet of `bytes` at
//! `now`, [`TokenBucket::earliest_departure`] returns when the packet may be
//! released, and [`TokenBucket::commit`] consumes the tokens. Packets are
//! released in FIFO order (the internal `fifo_free` clamp enforces ordering
//! even when bursts empty the bucket).

use crate::time::{SimDuration, SimTime};

/// A byte-rate token bucket with a configurable burst allowance.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bps: u64,
    burst_bytes: u64,
    tokens: f64,
    last_refill: SimTime,
    fifo_free: SimTime,
    conforming: u64,
    delayed: u64,
}

impl TokenBucket {
    /// New bucket at `rate_bps` bits/sec with `burst_bytes` of depth.
    /// The bucket starts full.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> Self {
        assert!(rate_bps > 0, "token bucket needs a positive rate");
        assert!(burst_bytes > 0, "token bucket needs a positive burst");
        TokenBucket {
            rate_bps,
            burst_bytes,
            tokens: burst_bytes as f64,
            last_refill: SimTime::ZERO,
            fifo_free: SimTime::ZERO,
            conforming: 0,
            delayed: 0,
        }
    }

    /// Configured rate in bits/sec.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Change the configured rate (used when FPS re-splits per-VM limits).
    /// Tokens accrued so far are kept, capped at the burst depth.
    pub fn set_rate(&mut self, now: SimTime, rate_bps: u64) {
        assert!(rate_bps > 0);
        self.refill(now);
        self.rate_bps = rate_bps;
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last_refill {
            let dt = now.since(self.last_refill).as_secs_f64();
            self.tokens =
                (self.tokens + dt * self.rate_bps as f64 / 8.0).min(self.burst_bytes as f64);
            self.last_refill = now;
        }
    }

    /// When could a packet of `bytes` depart if offered at `now`?
    /// Does not consume tokens; call [`TokenBucket::commit`] to take them.
    pub fn earliest_departure(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.refill(now);
        let need = bytes as f64;
        let at = if self.tokens >= need {
            now
        } else {
            let deficit = need - self.tokens;
            let wait = deficit * 8.0 / self.rate_bps as f64;
            now + SimDuration::from_secs_f64(wait)
        };
        at.max(self.fifo_free)
    }

    /// Consume tokens for a packet of `bytes` departing at `at` (as returned
    /// by [`TokenBucket::earliest_departure`]). Maintains FIFO ordering of
    /// subsequent departures.
    pub fn commit(&mut self, at: SimTime, bytes: u64) {
        self.refill(at);
        self.tokens -= bytes as f64;
        // Even with a deep bucket, packets leave in order.
        self.fifo_free = self.fifo_free.max(at);
        if self.tokens >= 0.0 && at <= self.last_refill {
            self.conforming += 1;
        } else {
            self.delayed += 1;
        }
    }

    /// Convenience: reserve a departure slot for `bytes` at/after `now`,
    /// consuming tokens, and return the departure time.
    pub fn acquire(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let at = self.earliest_departure(now, bytes);
        self.commit(at, bytes);
        at
    }

    /// Batch [`TokenBucket::acquire`] for a same-instant burst: refill once
    /// up front, then reserve per-packet departure slots in order, appending
    /// each departure time to `out`.
    ///
    /// Equivalent to the scalar loop *by construction*, not approximation:
    /// `refill` only acts when the clock advances, so the per-packet
    /// `refill(now)` calls the scalar path makes for packets 2..n are
    /// already no-ops (a delayed departure moves `last_refill` forward via
    /// `commit`, past `now`, which keeps them no-ops too). Hoisting the one
    /// real refill out of the loop therefore changes nothing but the number
    /// of clock comparisons — the admit sequence, token balance, and
    /// conforming/delayed counters come out bit-identical, which the seeded
    /// equivalence test pins down.
    pub fn acquire_burst(&mut self, now: SimTime, sizes: &[u64], out: &mut Vec<SimTime>) {
        self.refill(now);
        out.reserve(sizes.len());
        for &bytes in sizes {
            let need = bytes as f64;
            let at = if self.tokens >= need {
                now
            } else {
                let deficit = need - self.tokens;
                let wait = deficit * 8.0 / self.rate_bps as f64;
                now + SimDuration::from_secs_f64(wait)
            };
            let at = at.max(self.fifo_free);
            self.commit(at, bytes);
            out.push(at);
        }
    }

    /// Packets that departed without waiting.
    pub fn conforming(&self) -> u64 {
        self.conforming
    }

    /// Packets that had to wait for tokens.
    pub fn delayed(&self) -> u64 {
        self.delayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1 Gbps bucket with a 12500-byte burst (100 us at line rate).
    fn bucket() -> TokenBucket {
        TokenBucket::new(1_000_000_000, 12_500)
    }

    #[test]
    fn burst_passes_at_line_rate() {
        let mut b = bucket();
        let now = SimTime::from_millis(1);
        // 8 x 1500B = 12000 bytes < burst: all depart immediately.
        for _ in 0..8 {
            let at = b.acquire(now, 1500);
            assert_eq!(at, now);
        }
    }

    #[test]
    fn sustained_rate_is_enforced() {
        let mut b = bucket();
        let mut now = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        // Offer 10 MB instantly; the tail must drain at ~1 Gbps.
        let pkts = 10_000_000 / 1500;
        for _ in 0..pkts {
            last = b.acquire(now, 1500);
            now = now.max(last);
        }
        let expect = 10_000_000.0 * 8.0 / 1e9; // seconds
        let got = last.as_secs_f64();
        assert!(
            (got - expect).abs() / expect < 0.01,
            "drain time {got}, expected ~{expect}"
        );
    }

    #[test]
    fn tokens_refill_while_idle() {
        let mut b = bucket();
        // Drain the bucket.
        let mut now = SimTime::ZERO;
        for _ in 0..9 {
            now = b.acquire(now, 1500);
        }
        // Wait 1ms: refills 125000 bytes, capped at burst 12500.
        let later = now + SimDuration::from_millis(1);
        let at = b.acquire(later, 1500);
        assert_eq!(at, later, "refilled bucket should pass immediately");
    }

    #[test]
    fn fifo_ordering_preserved() {
        let mut b = bucket();
        let now = SimTime::ZERO;
        let a1 = b.acquire(now, 12_000); // nearly drains the bucket
        let a2 = b.acquire(now, 1500); // must wait for tokens
        let a3 = b.acquire(now, 1); // tiny, but must not pass a2
        assert!(a1 <= a2, "{a1} vs {a2}");
        assert!(a2 <= a3, "{a2} vs {a3}");
    }

    #[test]
    fn set_rate_takes_effect() {
        let mut b = bucket();
        let mut now = SimTime::ZERO;
        // Drain burst.
        for _ in 0..9 {
            now = b.acquire(now, 1500);
        }
        b.set_rate(now, 100_000_000); // cut to 100 Mbps
        let t1 = b.acquire(now, 1500);
        let gap = t1.since(now).as_secs_f64();
        let expect = 1500.0 * 8.0 / 1e8;
        assert!(
            (gap - expect).abs() / expect < 0.05,
            "gap {gap} expect {expect}"
        );
    }

    #[test]
    fn earliest_departure_does_not_consume() {
        let mut b = bucket();
        let now = SimTime::ZERO;
        let a = b.earliest_departure(now, 1500);
        let b2 = b.earliest_departure(now, 1500);
        assert_eq!(a, b2);
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn zero_rate_rejected() {
        let _ = TokenBucket::new(0, 1);
    }

    /// The burst-refill drift test: random bursts of random sizes at random
    /// (monotone) instants must produce the exact same departure sequence
    /// and counters whether tokens are refilled per packet or once per
    /// burst. Bit-exact equality, not tolerance — `f64` token arithmetic
    /// must follow the identical operation sequence on both paths.
    #[test]
    fn seeded_burst_refill_matches_scalar_exactly() {
        let mut rng = crate::rng::Rng::new(0xB0057);
        for case in 0..50u64 {
            let rate = rng.range(1_000_000, 10_000_000_000);
            let depth = rng.range(1_500, 100_000);
            let mut scalar = TokenBucket::new(rate, depth);
            let mut batched = TokenBucket::new(rate, depth);
            let mut now = SimTime::ZERO;
            for _ in 0..40 {
                now += SimDuration(rng.below(2_000_000)); // 0..2ms, may be 0
                let n = rng.range(1, 65) as usize;
                let sizes: Vec<u64> = (0..n).map(|_| rng.range(64, 9_001)).collect();
                let want: Vec<SimTime> = sizes.iter().map(|&b| scalar.acquire(now, b)).collect();
                let mut got = Vec::new();
                batched.acquire_burst(now, &sizes, &mut got);
                assert_eq!(want, got, "departure sequence diverged (case {case})");
                assert_eq!(scalar.tokens.to_bits(), batched.tokens.to_bits());
                assert_eq!(scalar.last_refill, batched.last_refill);
                assert_eq!(scalar.fifo_free, batched.fifo_free);
                assert_eq!(scalar.conforming, batched.conforming);
                assert_eq!(scalar.delayed, batched.delayed);
            }
        }
    }

    #[test]
    fn acquire_burst_of_one_equals_acquire() {
        let mut a = bucket();
        let mut b = bucket();
        let now = SimTime::from_micros(7);
        let mut out = Vec::new();
        b.acquire_burst(now, &[1500], &mut out);
        assert_eq!(out, vec![a.acquire(now, 1500)]);
    }
}
