//! Component-lifecycle fault injection ("chaos"): scripted outages of whole
//! components, layered under the per-message fault plane of [`crate::fault`].
//!
//! Where [`crate::fault::FaultPlane`] fails individual *messages*
//! (drop/delay/duplicate on control links), the [`ChaosPlane`] fails
//! *components*: a ToR reboots and loses its hardware state, a server's
//! SR-IOV path wedges, a data-plane link flaps, a controller process crashes
//! and restarts. The plane itself only answers clock-driven queries — the
//! component models own their failure semantics (what "rebooted" means for a
//! switch lives in the switch crate) and consult the plane through
//! [`crate::kernel::Api`] accessors, keeping the kernel ignorant of
//! component types.
//!
//! Every query is a pure function of the script and the clock: no randomness
//! is consumed, so a chaos script composes with probabilistic link faults
//! without perturbing their RNG stream, and an empty script ([`idle`]) is
//! short-circuited on the kernel send path — attaching an idle plane leaves
//! the event stream bit-identical to not attaching one (the same contract
//! the zero-probability fault plane honors).
//!
//! [`idle`]: ChaosPlane::is_idle

use crate::kernel::NodeId;
use crate::time::SimTime;

/// Scripted component outages. All windows are half-open `[start, end)`.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// ToR reboots: `(tor node, start, end)`. Data-plane frames to or from
    /// the node are dropped inside the window (ports dark), and the switch
    /// model wipes its hardware rule tables and flow counters when it
    /// observes its boot epoch change. Control messages still flow — the
    /// out-of-band management port stays up — so the switch can reject rule
    /// installs definitively instead of timing them out.
    pub tor_outages: Vec<(NodeId, SimTime, SimTime)>,
    /// SR-IOV failures: `(server node, start, end)`. The server's hardware
    /// path goes dark: VF transmits and receives are dropped at the NIC
    /// until the window closes.
    pub vf_outages: Vec<(NodeId, SimTime, SimTime)>,
    /// Data-plane link flaps: `(a, b, start, end)`. Frames between the two
    /// nodes — both directions — are dropped inside the window.
    pub link_flaps: Vec<(NodeId, NodeId, SimTime, SimTime)>,
    /// Controller crash+restart instants: `(controller node, at)`. The
    /// controller model wipes its volatile state when it observes its
    /// restart epoch change (an instantaneous fail-over to a cold standby
    /// that must rebuild state from the network, not from memory).
    pub controller_restarts: Vec<(NodeId, SimTime)>,
}

impl ChaosConfig {
    /// True when nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.tor_outages.is_empty()
            && self.vf_outages.is_empty()
            && self.link_flaps.is_empty()
            && self.controller_restarts.is_empty()
    }
}

/// Outcome counters for the chaos plane, published as `sim.chaos.*`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosCounters {
    /// Data-plane frames dropped because an endpoint was dark (ToR outage)
    /// or the link was inside a flap window.
    pub frames_blocked: u64,
}

impl ChaosCounters {
    /// Mirror these counters into a telemetry registry under `sim.chaos.*`
    /// (snapshot semantics, same contract as
    /// [`crate::stats::FaultCounters::publish_into`]).
    pub fn publish_into(&self, reg: &mut fastrak_telemetry::Registry) {
        let id = reg.counter("sim.chaos.frames_blocked", &[]);
        reg.set_counter(id, self.frames_blocked);
    }
}

/// The scripted component-outage engine. Owned by the kernel inside a
/// [`crate::fault::FaultPlane`]; component models query it via
/// [`crate::kernel::Api`].
#[derive(Debug)]
pub struct ChaosPlane {
    cfg: ChaosConfig,
    /// Nothing scripted: every query short-circuits. Precomputed because
    /// the frame-block hook sits on the kernel's send hot path.
    idle: bool,
    /// Outcome counters (frames blocked by outages/flaps).
    pub stats: ChaosCounters,
}

impl ChaosPlane {
    /// Build a plane from its script.
    pub fn new(cfg: ChaosConfig) -> ChaosPlane {
        let idle = cfg.is_empty();
        ChaosPlane {
            cfg,
            idle,
            stats: ChaosCounters::default(),
        }
    }

    /// True when nothing is scripted — all queries are free.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.idle
    }

    /// Is `node` a ToR currently inside a reboot outage window (ports dark)?
    pub fn tor_dark(&self, node: NodeId, now: SimTime) -> bool {
        !self.idle
            && self
                .cfg
                .tor_outages
                .iter()
                .any(|&(n, start, end)| n == node && now >= start && now < end)
    }

    /// The boot epoch of ToR `node` at `now`: the number of scripted reboots
    /// that have *started*. Epoch 0 is the initial boot; the switch model
    /// wipes hardware state whenever the epoch it observes exceeds the one
    /// it last recorded (the wipe happens at outage start — the moment power
    /// cycles — and the window models the dark time until forwarding
    /// resumes).
    pub fn tor_boot_epoch(&self, node: NodeId, now: SimTime) -> u64 {
        if self.idle {
            return 0;
        }
        self.cfg
            .tor_outages
            .iter()
            .filter(|&&(n, start, _)| n == node && now >= start)
            .count() as u64
    }

    /// Is server `node`'s SR-IOV hardware path currently dark?
    pub fn vf_down(&self, node: NodeId, now: SimTime) -> bool {
        !self.idle
            && self
                .cfg
                .vf_outages
                .iter()
                .any(|&(n, start, end)| n == node && now >= start && now < end)
    }

    /// The restart epoch of controller `node` at `now`: the number of
    /// scripted crash+restart instants that have passed. The controller
    /// model wipes volatile state when the epoch it observes exceeds the
    /// one it last recorded.
    pub fn ctrl_restart_epoch(&self, node: NodeId, now: SimTime) -> u64 {
        if self.idle {
            return 0;
        }
        self.cfg
            .controller_restarts
            .iter()
            .filter(|&&(n, at)| n == node && now >= at)
            .count() as u64
    }

    /// Should a data-plane frame from `src` to `dst` be dropped at `now`?
    /// True when either endpoint is a dark ToR or the (unordered) pair is
    /// inside a flap window. Counts blocked frames.
    pub fn frame_blocked(&mut self, src: NodeId, dst: NodeId, now: SimTime) -> bool {
        if self.idle {
            return false;
        }
        let blocked = self.tor_dark(src, now)
            || self.tor_dark(dst, now)
            || self.cfg.link_flaps.iter().any(|&(a, b, start, end)| {
                ((a == src && b == dst) || (a == dst && b == src)) && now >= start && now < end
            });
        if blocked {
            self.stats.frames_blocked += 1;
        }
        blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_script_is_idle_and_silent() {
        let mut p = ChaosPlane::new(ChaosConfig::default());
        assert!(p.is_idle());
        assert!(!p.tor_dark(0, SimTime(50)));
        assert!(!p.vf_down(1, SimTime(50)));
        assert!(!p.frame_blocked(0, 1, SimTime(50)));
        assert_eq!(p.tor_boot_epoch(0, SimTime::from_secs(100)), 0);
        assert_eq!(p.ctrl_restart_epoch(0, SimTime::from_secs(100)), 0);
        assert_eq!(p.stats.frames_blocked, 0);
    }

    #[test]
    fn tor_outage_windows_are_half_open() {
        let mut p = ChaosPlane::new(ChaosConfig {
            tor_outages: vec![(3, SimTime(100), SimTime(200))],
            ..ChaosConfig::default()
        });
        assert!(!p.is_idle());
        assert!(!p.tor_dark(3, SimTime(99)));
        assert!(p.tor_dark(3, SimTime(100)));
        assert!(p.tor_dark(3, SimTime(199)));
        assert!(!p.tor_dark(3, SimTime(200)));
        assert!(!p.tor_dark(4, SimTime(150)), "other nodes unaffected");
        // Frames touching the dark ToR are blocked in both directions.
        assert!(p.frame_blocked(0, 3, SimTime(150)));
        assert!(p.frame_blocked(3, 0, SimTime(150)));
        assert!(!p.frame_blocked(0, 1, SimTime(150)));
        assert_eq!(p.stats.frames_blocked, 2);
    }

    #[test]
    fn boot_epoch_counts_started_outages() {
        let p = ChaosPlane::new(ChaosConfig {
            tor_outages: vec![
                (3, SimTime(100), SimTime(200)),
                (3, SimTime(500), SimTime(600)),
                (7, SimTime(50), SimTime(60)),
            ],
            ..ChaosConfig::default()
        });
        assert_eq!(p.tor_boot_epoch(3, SimTime(99)), 0);
        assert_eq!(p.tor_boot_epoch(3, SimTime(100)), 1);
        assert_eq!(p.tor_boot_epoch(3, SimTime(450)), 1);
        assert_eq!(p.tor_boot_epoch(3, SimTime(500)), 2);
        assert_eq!(p.tor_boot_epoch(7, SimTime(500)), 1);
    }

    #[test]
    fn link_flaps_block_both_directions() {
        let mut p = ChaosPlane::new(ChaosConfig {
            link_flaps: vec![(1, 2, SimTime(10), SimTime(20))],
            ..ChaosConfig::default()
        });
        assert!(p.frame_blocked(1, 2, SimTime(15)));
        assert!(p.frame_blocked(2, 1, SimTime(15)));
        assert!(!p.frame_blocked(1, 2, SimTime(20)));
        assert!(!p.frame_blocked(1, 3, SimTime(15)));
    }

    #[test]
    fn vf_and_restart_queries_are_scoped() {
        let p = ChaosPlane::new(ChaosConfig {
            vf_outages: vec![(4, SimTime(10), SimTime(30))],
            controller_restarts: vec![(9, SimTime(25)), (9, SimTime(75))],
            ..ChaosConfig::default()
        });
        assert!(p.vf_down(4, SimTime(10)));
        assert!(!p.vf_down(4, SimTime(30)));
        assert!(!p.vf_down(5, SimTime(15)));
        assert_eq!(p.ctrl_restart_epoch(9, SimTime(24)), 0);
        assert_eq!(p.ctrl_restart_epoch(9, SimTime(25)), 1);
        assert_eq!(p.ctrl_restart_epoch(9, SimTime(75)), 2);
        assert_eq!(p.ctrl_restart_epoch(8, SimTime(75)), 0);
    }

    #[test]
    fn counters_publish_snapshots() {
        let mut reg = fastrak_telemetry::Registry::default();
        let c = ChaosCounters { frames_blocked: 11 };
        c.publish_into(&mut reg);
        assert_eq!(reg.counter_by_name("sim.chaos.frames_blocked"), Some(11));
    }
}
