//! The per-VM connection stack: demultiplexes packets to connections,
//! accepts incoming connections on listening ports, and multiplexes
//! transmissions fairly (round-robin) across connections — the guest-kernel
//! role in the simulated VM.

use fastrak_sim::{FxHashMap, FxHashSet};
use std::collections::VecDeque;

use fastrak_net::flow::FlowKey;
use fastrak_net::headers::{ecn, tcp_flags};
use fastrak_net::packet::{L4Meta, Packet};
use fastrak_sim::time::SimTime;

use crate::tcp::{SegmentPlan, TcpConfig, TcpConn, TcpState};

/// Identifier of a connection within one stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

/// Socket-level events the application layer consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SockEvent {
    /// An outgoing connection completed its handshake.
    Connected(ConnId),
    /// A listening port accepted a new connection.
    Accepted {
        /// The new connection.
        conn: ConnId,
        /// The listening port that accepted it.
        port: u16,
    },
    /// In-order bytes arrived on a connection.
    Delivered {
        /// The connection.
        conn: ConnId,
        /// Newly delivered byte count.
        bytes: u64,
    },
    /// The peer's FIN was consumed: no more data will arrive. The local
    /// side may keep sending (half-close) until it calls close itself.
    PeerClosed(ConnId),
    /// The connection fully left the state machine (LAST_ACK's final ACK
    /// arrived, TIME_WAIT expired, or an RST tore it down).
    Closed(ConnId),
    /// The peer reset the connection.
    Reset(ConnId),
}

/// A VM's TCP stack.
#[derive(Debug, Clone)]
pub struct TcpStack {
    cfg: TcpConfig,
    conns: Vec<TcpConn>,
    by_flow: FxHashMap<FlowKey, usize>,
    listeners: FxHashSet<u16>,
    events: VecDeque<SockEvent>,
    rr_cursor: usize,
}

impl TcpStack {
    /// An empty stack with the given TCP configuration.
    pub fn new(cfg: TcpConfig) -> TcpStack {
        TcpStack {
            cfg,
            conns: Vec::new(),
            by_flow: FxHashMap::default(),
            listeners: FxHashSet::default(),
            events: VecDeque::new(),
            rr_cursor: 0,
        }
    }

    /// Start accepting connections on `port`.
    pub fn listen(&mut self, port: u16) {
        self.listeners.insert(port);
    }

    /// Open a client connection with the given outgoing flow key. The SYN is
    /// emitted by the next [`TcpStack::poll_transmit`].
    pub fn connect(&mut self, flow: FlowKey) -> ConnId {
        debug_assert!(
            !self.by_flow.contains_key(&flow),
            "duplicate connection for {flow:?}"
        );
        let id = self.conns.len();
        self.conns.push(TcpConn::client(flow, self.cfg));
        self.by_flow.insert(flow, id);
        ConnId(id as u32)
    }

    /// Queue an application write on `conn`; false when the send buffer is
    /// full.
    pub fn app_send(&mut self, conn: ConnId, bytes: u64) -> bool {
        self.conns[conn.0 as usize].app_send(bytes)
    }

    /// Graceful close: a FIN follows any queued data. The connection keeps
    /// receiving until the peer closes too (half-close semantics).
    pub fn close(&mut self, conn: ConnId) {
        self.conns[conn.0 as usize].close();
    }

    /// Abortive close: emit an RST and discard all state immediately.
    pub fn abort(&mut self, conn: ConnId) {
        self.conns[conn.0 as usize].abort();
    }

    /// Access a connection (stats, state).
    pub fn conn(&self, id: ConnId) -> &TcpConn {
        &self.conns[id.0 as usize]
    }

    /// Mutable access (tests, fault injection).
    pub fn conn_mut(&mut self, id: ConnId) -> &mut TcpConn {
        &mut self.conns[id.0 as usize]
    }

    /// All connection ids.
    pub fn conn_ids(&self) -> impl Iterator<Item = ConnId> {
        (0..self.conns.len() as u32).map(ConnId)
    }

    /// Number of connections (open forever; no teardown in this model).
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True when no connections exist.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// The connection id owning an outgoing flow key.
    pub fn conn_by_flow(&self, flow: &FlowKey) -> Option<ConnId> {
        self.by_flow.get(flow).map(|&i| ConnId(i as u32))
    }

    /// Feed a received packet into the stack.
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet) {
        let L4Meta::Tcp { seq, ack, flags } = pkt.l4 else {
            return; // non-TCP is dropped by this stack
        };
        let is_bare_syn = flags & tcp_flags::SYN != 0 && flags & tcp_flags::ACK == 0;
        let ecn_requested = flags & tcp_flags::ECE != 0 && flags & tcp_flags::CWR != 0;
        // The sender's flow reversed is our outgoing flow key.
        let ours = pkt.flow.reverse();
        let idx = match self.by_flow.get(&ours) {
            Some(&i) => i,
            None => {
                // New inbound connection?
                if is_bare_syn && self.listeners.contains(&pkt.flow.dst_port) {
                    let id = self.conns.len();
                    let mut conn = TcpConn::server(ours, self.cfg);
                    conn.set_peer_ecn_request(ecn_requested);
                    self.conns.push(conn);
                    self.by_flow.insert(ours, id);
                    self.events.push_back(SockEvent::Accepted {
                        conn: ConnId(id as u32),
                        port: pkt.flow.dst_port,
                    });
                    return; // the SYN itself carries no data
                }
                return; // no listener: drop (RST not modelled)
            }
        };
        // TIME_WAIT / CLOSED reuse: a fresh SYN on a finished flow key
        // replaces the stale incarnation with a new accepted connection
        // (the simulated equivalent of SO_REUSEADDR + sequence validation).
        if is_bare_syn
            && matches!(
                self.conns[idx].state(),
                TcpState::TimeWait | TcpState::Closed
            )
            && self.listeners.contains(&pkt.flow.dst_port)
        {
            let mut conn = TcpConn::server(ours, self.cfg);
            conn.set_peer_ecn_request(ecn_requested);
            self.conns[idx] = conn;
            self.events.push_back(SockEvent::Accepted {
                conn: ConnId(idx as u32),
                port: pkt.flow.dst_port,
            });
            return;
        }
        let out = self.conns[idx].on_segment_full(
            now,
            seq,
            ack,
            flags,
            pkt.payload as u64,
            pkt.ecn == ecn::CE,
            pkt.sack,
        );
        if out.connected {
            self.events
                .push_back(SockEvent::Connected(ConnId(idx as u32)));
        }
        if out.delivered > 0 {
            self.events.push_back(SockEvent::Delivered {
                conn: ConnId(idx as u32),
                bytes: out.delivered,
            });
        }
        if out.peer_fin {
            self.events
                .push_back(SockEvent::PeerClosed(ConnId(idx as u32)));
        }
        if out.reset {
            self.events.push_back(SockEvent::Reset(ConnId(idx as u32)));
        }
        if out.closed {
            self.events.push_back(SockEvent::Closed(ConnId(idx as u32)));
        }
    }

    /// Produce the next segment any connection wants to send, round-robin
    /// across connections for fairness (netperf's threads share the link).
    pub fn poll_transmit(&mut self, now: SimTime, seg_limit: u32) -> Option<(ConnId, SegmentPlan)> {
        let n = self.conns.len();
        for off in 0..n {
            let idx = (self.rr_cursor + off) % n;
            if let Some(plan) = self.conns[idx].poll_transmit(now, seg_limit) {
                self.rr_cursor = (idx + 1) % n;
                return Some((ConnId(idx as u32), plan));
            }
        }
        None
    }

    /// Earliest timer deadline across all connections.
    pub fn next_timer(&self) -> Option<SimTime> {
        self.conns
            .iter()
            .filter_map(|c| c.next_timer().map(|(t, _)| t))
            .min()
    }

    /// Fire all timers due at `now`. Follow with [`TcpStack::poll_transmit`].
    pub fn on_timer(&mut self, now: SimTime) {
        for (idx, c) in self.conns.iter_mut().enumerate() {
            let was_closed = c.is_closed();
            while let Some((deadline, which)) = c.next_timer() {
                if deadline > now {
                    break;
                }
                c.on_timer(now, which);
                // on_timer may not clear the deadline if stale; guard against
                // an infinite loop by breaking when nothing changed.
                if c.next_timer().map(|(t, _)| t) == Some(deadline) {
                    break;
                }
            }
            if !was_closed && c.is_closed() {
                // TIME_WAIT expiry (2·MSL) released the connection.
                self.events.push_back(SockEvent::Closed(ConnId(idx as u32)));
            }
        }
    }

    /// Drain pending socket events.
    pub fn drain_events(&mut self) -> Vec<SockEvent> {
        self.events.drain(..).collect()
    }

    /// Are there pending socket events?
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastrak_net::addr::{Ip, TenantId};
    use fastrak_net::flow::Proto;

    fn flow(src_port: u16) -> FlowKey {
        FlowKey {
            tenant: TenantId(1),
            src_ip: Ip::new(10, 0, 0, 1),
            dst_ip: Ip::new(10, 0, 0, 2),
            proto: Proto::Tcp,
            src_port,
            dst_port: 7000,
        }
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    /// Shuttle packets between two stacks until quiescent.
    fn pump(a: &mut TcpStack, b: &mut TcpStack, now_us: &mut u64) {
        loop {
            let mut moved = false;
            while let Some((id, plan)) = a.poll_transmit(t(*now_us), 65_000) {
                let pkt = mk_pkt(a.conn(id).flow, plan);
                b.on_packet(t(*now_us + 10), &pkt);
                *now_us += 10;
                moved = true;
            }
            while let Some((id, plan)) = b.poll_transmit(t(*now_us), 65_000) {
                let pkt = mk_pkt(b.conn(id).flow, plan);
                a.on_packet(t(*now_us + 10), &pkt);
                *now_us += 10;
                moved = true;
            }
            if !moved {
                break;
            }
        }
    }

    fn mk_pkt(flow: FlowKey, plan: SegmentPlan) -> Packet {
        let mut pkt = Packet::new(
            0,
            flow,
            L4Meta::Tcp {
                seq: plan.seq,
                ack: plan.ack,
                flags: plan.flags,
            },
            plan.len,
            t(0),
        );
        pkt.ecn = plan.ecn;
        pkt.sack = plan.sack;
        pkt
    }

    #[test]
    fn listen_accept_connect_deliver() {
        let mut client = TcpStack::new(TcpConfig::default());
        let mut server = TcpStack::new(TcpConfig::default());
        server.listen(7000);
        let c = client.connect(flow(40_000));
        let mut now = 0;
        pump(&mut client, &mut server, &mut now);
        let cli_events = client.drain_events();
        assert!(cli_events.contains(&SockEvent::Connected(c)));
        let srv_events = server.drain_events();
        assert!(matches!(
            srv_events[0],
            SockEvent::Accepted { port: 7000, .. }
        ));

        // Send data and observe delivery.
        client.app_send(c, 5000);
        pump(&mut client, &mut server, &mut now);
        let delivered: u64 = server
            .drain_events()
            .iter()
            .filter_map(|e| match e {
                SockEvent::Delivered { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        assert_eq!(delivered, 5000);
    }

    #[test]
    fn syn_to_closed_port_dropped() {
        let mut client = TcpStack::new(TcpConfig::default());
        let mut server = TcpStack::new(TcpConfig::default());
        // No listener installed.
        let _c = client.connect(flow(40_001));
        let mut now = 0;
        pump(&mut client, &mut server, &mut now);
        assert!(server.is_empty());
        assert!(client.drain_events().is_empty());
    }

    #[test]
    fn two_connections_round_robin() {
        let mut client = TcpStack::new(TcpConfig::default());
        let mut server = TcpStack::new(TcpConfig::default());
        server.listen(7000);
        let c1 = client.connect(flow(40_002));
        let c2 = client.connect(flow(40_003));
        let mut now = 0;
        pump(&mut client, &mut server, &mut now);
        client.drain_events();
        client.app_send(c1, 100);
        client.app_send(c2, 100);
        let (id_a, _) = client.poll_transmit(t(now), 65_000).unwrap();
        let (id_b, _) = client.poll_transmit(t(now), 65_000).unwrap();
        assert_ne!(id_a, id_b, "round robin must alternate connections");
    }

    #[test]
    fn conn_by_flow_resolves() {
        let mut client = TcpStack::new(TcpConfig::default());
        let c = client.connect(flow(40_004));
        assert_eq!(client.conn_by_flow(&flow(40_004)), Some(c));
        assert_eq!(client.conn_by_flow(&flow(1)), None);
    }

    #[test]
    fn close_lifecycle_emits_events_and_reuses_time_wait_flow() {
        let mut client = TcpStack::new(TcpConfig::default());
        let mut server = TcpStack::new(TcpConfig::default());
        server.listen(7000);
        let c = client.connect(flow(40_010));
        let mut now = 0;
        pump(&mut client, &mut server, &mut now);
        let srv_conn = server
            .drain_events()
            .iter()
            .find_map(|e| match e {
                SockEvent::Accepted { conn, .. } => Some(*conn),
                _ => None,
            })
            .unwrap();
        client.drain_events();

        // Client closes; server sees the peer FIN.
        client.close(c);
        pump(&mut client, &mut server, &mut now);
        assert!(server
            .drain_events()
            .contains(&SockEvent::PeerClosed(srv_conn)));
        assert_eq!(server.conn(srv_conn).state(), TcpState::CloseWait);

        // Server closes too; its final ACK retires it, the client enters
        // TIME_WAIT and expires 2·MSL later.
        server.close(srv_conn);
        pump(&mut client, &mut server, &mut now);
        assert!(server.drain_events().contains(&SockEvent::Closed(srv_conn)));
        assert!(client.drain_events().contains(&SockEvent::PeerClosed(c)));
        assert_eq!(client.conn(c).state(), TcpState::TimeWait);
        let deadline = client.next_timer().unwrap();
        client.on_timer(deadline);
        assert!(client.drain_events().contains(&SockEvent::Closed(c)));
        assert!(client.conn(c).is_closed());

        // A fresh SYN on the server's finished flow key replaces the stale
        // incarnation in place (TIME_WAIT/CLOSED reuse).
        let mut client2 = TcpStack::new(TcpConfig::default());
        let c2 = client2.connect(flow(40_010));
        pump(&mut client2, &mut server, &mut now);
        let evs = server.drain_events();
        assert!(evs.contains(&SockEvent::Accepted {
            conn: srv_conn,
            port: 7000
        }));
        assert!(client2.drain_events().contains(&SockEvent::Connected(c2)));
        assert!(server.conn(srv_conn).is_established());
    }

    #[test]
    fn abort_resets_the_peer() {
        let mut client = TcpStack::new(TcpConfig::default());
        let mut server = TcpStack::new(TcpConfig::default());
        server.listen(7000);
        let c = client.connect(flow(40_011));
        let mut now = 0;
        pump(&mut client, &mut server, &mut now);
        let srv_conn = server
            .drain_events()
            .iter()
            .find_map(|e| match e {
                SockEvent::Accepted { conn, .. } => Some(*conn),
                _ => None,
            })
            .unwrap();
        client.abort(c);
        pump(&mut client, &mut server, &mut now);
        assert!(server.drain_events().contains(&SockEvent::Reset(srv_conn)));
        assert!(server.conn(srv_conn).is_closed());
        assert!(client.conn(c).is_closed());
    }

    #[test]
    fn ecn_negotiates_through_the_stack() {
        let cfg = TcpConfig {
            ecn: true,
            ..TcpConfig::default()
        };
        let mut client = TcpStack::new(cfg);
        let mut server = TcpStack::new(cfg);
        server.listen(7000);
        let c = client.connect(flow(40_012));
        let mut now = 0;
        pump(&mut client, &mut server, &mut now);
        let srv_conn = server
            .drain_events()
            .iter()
            .find_map(|e| match e {
                SockEvent::Accepted { conn, .. } => Some(*conn),
                _ => None,
            })
            .unwrap();
        assert!(client.conn(c).ecn_active());
        assert!(server.conn(srv_conn).ecn_active());

        // A non-ECN client against an ECN-capable server: not negotiated.
        let mut plain = TcpStack::new(TcpConfig::default());
        let p = plain.connect(flow(40_013));
        pump(&mut plain, &mut server, &mut now);
        assert!(!plain.conn(p).ecn_active());
    }

    #[test]
    fn stack_timer_aggregates_connections() {
        let mut client = TcpStack::new(TcpConfig::default());
        let _ = client.connect(flow(40_005));
        // SYN not yet sent: no timer.
        assert!(client.next_timer().is_none());
        let _ = client.poll_transmit(t(0), 65_000).unwrap(); // SYN out
        assert!(client.next_timer().is_some());
    }
}
